//! The shared function registry: compiled engines by id, hot-swappable,
//! each bound to an evaluation backend.
//!
//! Every serving job names its function by [`FunctionId`]. The registry
//! maps ids to engines behind an `RwLock`, and the batcher snapshots a
//! function's backend program once per flush unit — so
//! [`FunctionRegistry::publish`]ing a recompiled table takes effect
//! atomically at the next flush, without stopping traffic, and a flush
//! already in progress keeps evaluating against the table it started
//! with. One flush unit therefore never mixes coefficient tables — nor
//! backends: a unit is per-function, and a function has exactly one
//! backend binding.
//!
//! # Backend bindings
//!
//! [`FunctionRegistry::register`] binds the native SIMD backend;
//! [`FunctionRegistry::register_with_backend`] lowers the same compiled
//! table onto any [`EvalBackend`] (e.g. the bit-faithful Flex-SFU
//! emulator, [`flexsfu_backend::SfuBackend`]), and the serve worker
//! pool routes each flush unit to its function's program. Per-flush
//! [`flexsfu_backend::FlushStats`] accumulate into per-function
//! counters, readable via [`FunctionRegistry::backend_stats`].

use crate::histogram::{HistogramAccum, InputHistogramSnapshot, INPUT_HIST_BUCKETS};
use crate::server::FlushPolicy;
use flexsfu_backend::{BackendProgram, BackendProgramF32, EvalBackend, FlushStats, NativeBackend};
use flexsfu_core::{CompiledPwl, CompiledPwlF32, ParallelPwl, ParallelPwlF32, PwlFunction};
use std::sync::{Arc, Mutex, RwLock};

/// An opaque handle naming a registered function. Ids are dense (the
/// `n`-th registration gets id `n`) and never invalidated — publishing a
/// new table reuses the id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FunctionId(pub u32);

/// Accumulated backend activity of one registered function.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BackendStatsSnapshot {
    /// Flush units evaluated.
    pub flushes: u64,
    /// Elements evaluated across those flushes.
    pub elems: u64,
    /// Modelled hardware cycles (zero for backends without a cost
    /// model, like the native SIMD kernels).
    pub cycles: u64,
    /// Modelled energy in nanojoules (zero without a cost model).
    pub energy_nj: f64,
}

/// Thread-safe accumulator the evaluation workers feed after each flush.
#[derive(Default)]
pub(crate) struct StatsAccumulator(Mutex<BackendStatsSnapshot>);

impl StatsAccumulator {
    pub(crate) fn record(&self, stats: &FlushStats) {
        let mut s = self.0.lock().unwrap();
        s.flushes += 1;
        s.elems += stats.elems as u64;
        if let Some(hw) = stats.hw {
            s.cycles += hw.cycles;
            s.energy_nj += hw.energy_nj;
        }
    }

    fn snapshot(&self) -> BackendStatsSnapshot {
        *self.0.lock().unwrap()
    }
}

struct Entry {
    name: String,
    /// The native threaded engine — always available as the software
    /// reference, whatever backend serves traffic.
    engine: Arc<ParallelPwl>,
    /// The single-precision twin, compiled from the same table — the
    /// direct-eval reference for f32 jobs, always available even when
    /// the bound backend has no f32 lane.
    engine_f32: Arc<ParallelPwlF32>,
    backend: Arc<dyn EvalBackend>,
    program: Arc<dyn BackendProgram>,
    /// The backend's f32 lowering of the same table, or `None` when the
    /// backend has no f32 lane — f32 submissions then fail with
    /// [`crate::ServeError::PrecisionUnsupported`].
    program_f32: Option<Arc<dyn BackendProgramF32>>,
    policy: Option<FlushPolicy>,
    stats: Arc<StatsAccumulator>,
    /// Streaming histogram of the raw inputs this function's flushes
    /// evaluate (both precisions). Range pinned at registration to the
    /// initial table's breakpoint span; deliberately **not** swapped by
    /// [`FunctionRegistry::publish`], so drift windows before and after
    /// a hot-swap stay mergeable.
    histogram: Arc<HistogramAccum>,
}

/// The engine/program pairs of one binding, both precisions — what
/// [`bind`] produces and [`FunctionRegistry::publish`] swaps in.
struct Bound {
    engine: Arc<ParallelPwl>,
    engine_f32: Arc<ParallelPwlF32>,
    program: Arc<dyn BackendProgram>,
    program_f32: Option<Arc<dyn BackendProgramF32>>,
}

/// A concurrently readable, hot-swappable table of compiled engines with
/// per-function backend bindings and flush policies.
///
/// # Examples
///
/// ```
/// use flexsfu_core::init::uniform_pwl;
/// use flexsfu_funcs::Gelu;
/// use flexsfu_serve::FunctionRegistry;
///
/// let registry = FunctionRegistry::new();
/// let gelu = registry.register("gelu", &uniform_pwl(&Gelu, 16, (-8.0, 8.0)));
/// assert_eq!(registry.id_of("gelu"), Some(gelu));
/// assert_eq!(registry.backend_name(gelu), Some("native"));
/// let y = registry.engine(gelu).unwrap().engine().eval_one(0.5);
/// assert!(y.is_finite());
/// ```
#[derive(Default)]
pub struct FunctionRegistry {
    entries: RwLock<Vec<Entry>>,
}

/// Builds an entry's engine + program pairs (both precisions) for
/// `backend`: the programs come from the backend's own `lower` /
/// `lower_f32`, whatever the backend is — no special-casing by label,
/// so a third-party backend that happens to call itself `"native"`
/// still gets its lowering (and cost model) run. The registry's
/// reference engines are a second compile of the same table; for the
/// built-in native backend that duplicates a few hundred floats per
/// function, which is cheaper than a fragile identity check. The f32
/// twin is derived from the compiled f64 table
/// ([`CompiledPwlF32::from_compiled`]), so both precisions always
/// describe the same published function.
fn bind(backend: &Arc<dyn EvalBackend>, engine: CompiledPwl) -> Result<Bound, crate::ServeError> {
    let program = backend
        .lower(&engine)
        .map_err(crate::ServeError::LowerFailed)?;
    let engine_f32 = CompiledPwlF32::from_compiled(&engine);
    let program_f32 = backend.lower_f32(&engine_f32);
    Ok(Bound {
        engine: Arc::new(ParallelPwl::new(engine)),
        engine_f32: Arc::new(ParallelPwlF32::new(engine_f32)),
        program,
        program_f32,
    })
}

impl FunctionRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compiles `pwl` and registers it under `name` on the **native**
    /// backend, returning its id. Registering while a server is running
    /// is allowed; jobs may name the new id as soon as this returns.
    pub fn register(&self, name: impl Into<String>, pwl: &PwlFunction) -> FunctionId {
        self.register_compiled(name, CompiledPwl::from_pwl(pwl))
    }

    /// Registers an already compiled engine under `name` on the native
    /// backend.
    pub fn register_compiled(&self, name: impl Into<String>, engine: CompiledPwl) -> FunctionId {
        let backend: Arc<dyn EvalBackend> = Arc::new(NativeBackend::new());
        self.register_compiled_with_backend(name, engine, backend)
            .expect("native lowering is infallible")
    }

    /// Compiles `pwl` and registers it under `name` with an explicit
    /// backend binding: every flush of this function's jobs evaluates
    /// through (a program lowered by) `backend`.
    ///
    /// # Errors
    ///
    /// [`crate::ServeError::LowerFailed`] if the backend cannot lower
    /// the function (table too deep, quantization collapses
    /// breakpoints).
    pub fn register_with_backend(
        &self,
        name: impl Into<String>,
        pwl: &PwlFunction,
        backend: Arc<dyn EvalBackend>,
    ) -> Result<FunctionId, crate::ServeError> {
        self.register_compiled_with_backend(name, CompiledPwl::from_pwl(pwl), backend)
    }

    /// [`Self::register_with_backend`] for an already compiled engine.
    ///
    /// # Errors
    ///
    /// As for [`Self::register_with_backend`].
    pub fn register_compiled_with_backend(
        &self,
        name: impl Into<String>,
        engine: CompiledPwl,
        backend: Arc<dyn EvalBackend>,
    ) -> Result<FunctionId, crate::ServeError> {
        self.register_compiled_with_backend_and_policy(name, engine, backend, None)
    }

    /// [`Self::register_with_backend`] plus an initial [`FlushPolicy`],
    /// installed under the same registry write lock as the entry itself
    /// — so a batcher that sees the function at all sees it with its
    /// policy, never in a default-policy window. This is the bulk-bring-up
    /// entry point an auto-tuner uses: one call per function registers
    /// the tuned table, its backend binding *and* its derived flush
    /// policy atomically.
    ///
    /// # Errors
    ///
    /// As for [`Self::register_with_backend`].
    pub fn register_with_backend_and_policy(
        &self,
        name: impl Into<String>,
        pwl: &PwlFunction,
        backend: Arc<dyn EvalBackend>,
        policy: Option<FlushPolicy>,
    ) -> Result<FunctionId, crate::ServeError> {
        self.register_compiled_with_backend_and_policy(
            name,
            CompiledPwl::from_pwl(pwl),
            backend,
            policy,
        )
    }

    /// [`Self::register_with_backend_and_policy`] for an already
    /// compiled engine.
    ///
    /// # Errors
    ///
    /// As for [`Self::register_with_backend`].
    pub fn register_compiled_with_backend_and_policy(
        &self,
        name: impl Into<String>,
        engine: CompiledPwl,
        backend: Arc<dyn EvalBackend>,
        policy: Option<FlushPolicy>,
    ) -> Result<FunctionId, crate::ServeError> {
        // Pin the histogram range to the table's breakpoint span before
        // `bind` consumes the engine: the span is exactly the region the
        // tuner measured over, so live traffic outside it lands in the
        // snapshot's below/above tails.
        let bps = engine.breakpoints();
        let (hist_lo, hist_hi) = (bps[0], bps[bps.len() - 1]);
        let bound = bind(&backend, engine)?;
        let mut entries = self.entries.write().unwrap();
        let id = FunctionId(entries.len() as u32);
        entries.push(Entry {
            name: name.into(),
            engine: bound.engine,
            engine_f32: bound.engine_f32,
            backend,
            program: bound.program,
            program_f32: bound.program_f32,
            policy,
            stats: Arc::new(StatsAccumulator::default()),
            histogram: Arc::new(HistogramAccum::new(hist_lo, hist_hi, INPUT_HIST_BUCKETS)),
        });
        Ok(id)
    }

    /// Hot-swaps the engine behind `id` — the serving-side half of an
    /// `optimize()` run: recompile off-line, publish here, and traffic
    /// picks the new coefficients up at its next flush. The new table is
    /// re-lowered through the entry's **existing backend binding**; the
    /// binding, flush policy and accumulated stats survive the swap.
    /// Returns the native engine that was replaced.
    ///
    /// # Errors
    ///
    /// [`crate::ServeError::UnknownFunction`] if `id` was never
    /// registered; [`crate::ServeError::LowerFailed`] if the entry's
    /// backend rejects the new table (the old program keeps serving).
    pub fn publish(
        &self,
        id: FunctionId,
        engine: CompiledPwl,
    ) -> Result<Arc<ParallelPwl>, crate::ServeError> {
        // Snapshot the binding under a read lock and run the lowering
        // with **no lock held**: the batcher reads this registry on its
        // hot path (while holding the queue mutex), so a write lock
        // held across a potentially slow backend `lower` would stall
        // every submission — the opposite of "publish without stopping
        // traffic". The backend of an entry never changes after
        // registration, so the snapshot cannot go stale.
        let backend = self
            .entries
            .read()
            .unwrap()
            .get(id.0 as usize)
            .map(|e| Arc::clone(&e.backend))
            .ok_or(crate::ServeError::UnknownFunction(id))?;
        let bound = bind(&backend, engine)?;
        // The write lock is now held only for the pointer swaps; all
        // four fields swap under one lock, so a flush snapshot never
        // sees a torn engine/program pair — in either precision.
        let mut entries = self.entries.write().unwrap();
        let entry = entries
            .get_mut(id.0 as usize)
            .ok_or(crate::ServeError::UnknownFunction(id))?;
        entry.program = bound.program;
        entry.program_f32 = bound.program_f32;
        entry.engine_f32 = bound.engine_f32;
        Ok(std::mem::replace(&mut entry.engine, bound.engine))
    }

    /// The current native engine for `id`, or `None` if unregistered.
    /// The returned `Arc` stays valid (and unchanged) across later
    /// [`Self::publish`] calls — snapshot semantics.
    pub fn engine(&self, id: FunctionId) -> Option<Arc<ParallelPwl>> {
        self.entries
            .read()
            .unwrap()
            .get(id.0 as usize)
            .map(|e| Arc::clone(&e.engine))
    }

    /// Snapshot of the backend program, stats sink and input-histogram
    /// sink for `id` — what a flush unit carries. Like [`Self::engine`],
    /// the snapshot is unaffected by later publishes.
    #[allow(clippy::type_complexity)]
    pub(crate) fn binding(
        &self,
        id: FunctionId,
    ) -> Option<(
        Arc<dyn BackendProgram>,
        Arc<StatsAccumulator>,
        Arc<HistogramAccum>,
    )> {
        self.entries.read().unwrap().get(id.0 as usize).map(|e| {
            (
                Arc::clone(&e.program),
                Arc::clone(&e.stats),
                Arc::clone(&e.histogram),
            )
        })
    }

    /// The f32 half of [`Self::binding`]: the backend's f32 program
    /// snapshot for `id`, or `None` when `id` is unregistered *or* its
    /// backend has no f32 lane (submission already rejected the latter
    /// with [`crate::ServeError::PrecisionUnsupported`], so the batcher
    /// only sees `None` here on an unregistered id). f32 flushes feed
    /// the same per-function stats counters as f64 ones.
    #[allow(clippy::type_complexity)]
    pub(crate) fn binding_f32(
        &self,
        id: FunctionId,
    ) -> Option<(
        Arc<dyn BackendProgramF32>,
        Arc<StatsAccumulator>,
        Arc<HistogramAccum>,
    )> {
        self.entries
            .read()
            .unwrap()
            .get(id.0 as usize)
            .and_then(|e| {
                Some((
                    Arc::clone(e.program_f32.as_ref()?),
                    Arc::clone(&e.stats),
                    Arc::clone(&e.histogram),
                ))
            })
    }

    /// Whether `id`'s backend can serve f32 jobs ([`None`] if `id` is
    /// unregistered). Fixed by the backend binding at registration —
    /// publishes re-lower through the same backend, so the answer never
    /// changes over an entry's lifetime.
    pub fn supports_f32(&self, id: FunctionId) -> Option<bool> {
        self.entries
            .read()
            .unwrap()
            .get(id.0 as usize)
            .map(|e| e.program_f32.is_some())
    }

    /// The current native **f32** engine for `id` — the direct-eval
    /// reference for single-precision jobs, compiled from the same
    /// table as [`Self::engine`]. Snapshot semantics, like
    /// [`Self::engine`].
    pub fn engine_f32(&self, id: FunctionId) -> Option<Arc<ParallelPwlF32>> {
        self.entries
            .read()
            .unwrap()
            .get(id.0 as usize)
            .map(|e| Arc::clone(&e.engine_f32))
    }

    /// The bound backend's name for `id` (`"native"`, `"sfu-emu"`, …).
    pub fn backend_name(&self, id: FunctionId) -> Option<&'static str> {
        self.entries
            .read()
            .unwrap()
            .get(id.0 as usize)
            .map(|e| e.backend.name())
    }

    /// Accumulated backend activity of `id` since registration.
    pub fn backend_stats(&self, id: FunctionId) -> Option<BackendStatsSnapshot> {
        self.entries
            .read()
            .unwrap()
            .get(id.0 as usize)
            .map(|e| e.stats.snapshot())
    }

    /// Cumulative input histogram of `id` since registration (or the
    /// last [`Self::drain_input_histogram`]): every element its flushes
    /// evaluated, both precisions. The bucket range is the breakpoint
    /// span of the table `id` was *registered* with and survives
    /// [`Self::publish`], so readings stay comparable across hot-swaps.
    pub fn input_histogram(&self, id: FunctionId) -> Option<InputHistogramSnapshot> {
        self.entries
            .read()
            .unwrap()
            .get(id.0 as usize)
            .map(|e| e.histogram.snapshot())
    }

    /// Atomically snapshots **and resets** `id`'s input histogram — the
    /// windowed read a drift detector uses: each drain covers exactly
    /// the traffic since the previous one, and the windows merge back
    /// into the cumulative view ([`InputHistogramSnapshot::merge`])
    /// because counts are plain sums.
    pub fn drain_input_histogram(&self, id: FunctionId) -> Option<InputHistogramSnapshot> {
        self.entries
            .read()
            .unwrap()
            .get(id.0 as usize)
            .map(|e| e.histogram.drain())
    }

    /// Sets (or clears, with `None`) the per-function flush policy of
    /// `id`. Functions without an explicit policy use the server's
    /// [`crate::ServeConfig`] defaults. Takes effect at the batcher's
    /// next wake-up: the next submission, the next expiring deadline,
    /// or — when jobs are queued with no reachable deadline — the
    /// batcher's coarse re-check tick (~10 ms), so even tightening the
    /// deadline of an already-parked never-expiring function applies
    /// promptly.
    ///
    /// # Errors
    ///
    /// [`crate::ServeError::UnknownFunction`] if `id` was never
    /// registered.
    pub fn set_policy(
        &self,
        id: FunctionId,
        policy: Option<FlushPolicy>,
    ) -> Result<(), crate::ServeError> {
        let mut entries = self.entries.write().unwrap();
        let entry = entries
            .get_mut(id.0 as usize)
            .ok_or(crate::ServeError::UnknownFunction(id))?;
        entry.policy = policy;
        Ok(())
    }

    /// The explicit flush policy of `id`, if one was set.
    pub fn policy(&self, id: FunctionId) -> Option<FlushPolicy> {
        self.entries
            .read()
            .unwrap()
            .get(id.0 as usize)
            .and_then(|e| e.policy)
    }

    /// Whether `id` is registered — the submission hot path's validation
    /// (one read lock, no `Arc` refcount traffic; the program snapshot
    /// itself is taken later, at flush time).
    pub fn contains(&self, id: FunctionId) -> bool {
        (id.0 as usize) < self.entries.read().unwrap().len()
    }

    /// The registration name of `id` — the inverse of [`Self::id_of`]
    /// (used e.g. to label per-function metric series).
    pub fn name_of(&self, id: FunctionId) -> Option<String> {
        self.entries
            .read()
            .unwrap()
            .get(id.0 as usize)
            .map(|e| e.name.clone())
    }

    /// Looks an id up by registration name (first match).
    pub fn id_of(&self, name: &str) -> Option<FunctionId> {
        self.entries
            .read()
            .unwrap()
            .iter()
            .position(|e| e.name == name)
            .map(|i| FunctionId(i as u32))
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.entries.read().unwrap().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registered `(id, name, backend name)` rows, for reports.
    pub fn functions(&self) -> Vec<(FunctionId, String, &'static str)> {
        self.entries
            .read()
            .unwrap()
            .iter()
            .enumerate()
            .map(|(i, e)| (FunctionId(i as u32), e.name.clone(), e.backend.name()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfu_backend::SfuBackend;
    use flexsfu_core::init::uniform_pwl;
    use flexsfu_core::PwlEvaluator;
    use flexsfu_funcs::{Gelu, Tanh};
    use std::time::Duration;

    #[test]
    fn register_and_lookup() {
        let r = FunctionRegistry::new();
        assert!(r.is_empty());
        let a = r.register("gelu", &uniform_pwl(&Gelu, 8, (-8.0, 8.0)));
        let b = r.register("tanh", &uniform_pwl(&Tanh, 8, (-8.0, 8.0)));
        assert_ne!(a, b);
        assert_eq!(r.len(), 2);
        assert_eq!(r.id_of("tanh"), Some(b));
        assert_eq!(r.id_of("nope"), None);
        assert!(r.engine(b).is_some());
        assert!(r.engine(FunctionId(99)).is_none());
        assert!(r.contains(a) && r.contains(b));
        assert!(!r.contains(FunctionId(99)));
        assert_eq!(r.backend_name(a), Some("native"));
        assert_eq!(r.backend_stats(a), Some(BackendStatsSnapshot::default()));
    }

    #[test]
    fn publish_swaps_atomically_and_snapshots_persist() {
        let r = FunctionRegistry::new();
        let gelu = uniform_pwl(&Gelu, 8, (-8.0, 8.0));
        let tanh = uniform_pwl(&Tanh, 8, (-8.0, 8.0));
        let id = r.register("f", &gelu);
        let old_snapshot = r.engine(id).unwrap();
        let replaced = r.publish(id, CompiledPwl::from_pwl(&tanh)).unwrap();
        // The replaced engine is the snapshot we took.
        assert!(Arc::ptr_eq(&old_snapshot, &replaced));
        // The snapshot still evaluates the old table; the registry serves
        // the new one.
        let x = 0.37;
        assert_eq!(old_snapshot.eval_one(x).to_bits(), gelu.eval(x).to_bits());
        let fresh = r.engine(id).unwrap();
        assert_eq!(fresh.eval_one(x).to_bits(), tanh.eval(x).to_bits());
    }

    #[test]
    fn publish_unknown_id_errors() {
        let r = FunctionRegistry::new();
        let gelu = uniform_pwl(&Gelu, 8, (-8.0, 8.0));
        let err = r.publish(FunctionId(0), CompiledPwl::from_pwl(&gelu));
        assert!(matches!(
            err,
            Err(crate::ServeError::UnknownFunction(FunctionId(0)))
        ));
    }

    #[test]
    fn backend_binding_survives_publish_and_rejects_bad_tables() {
        let r = FunctionRegistry::new();
        let id = r
            .register_with_backend(
                "tanh",
                &uniform_pwl(&Tanh, 31, (-8.0, 8.0)),
                Arc::new(SfuBackend::fp16(32)),
            )
            .unwrap();
        assert_eq!(r.backend_name(id), Some("sfu-emu"));
        // A publish too deep for the bound emulator fails and keeps the
        // old program serving.
        let too_deep = uniform_pwl(&Tanh, 63, (-8.0, 8.0));
        let err = r.publish(id, CompiledPwl::from_pwl(&too_deep));
        assert!(matches!(err, Err(crate::ServeError::LowerFailed(_))));
        let (program, _, _) = r.binding(id).unwrap();
        assert_eq!(program.backend_name(), "sfu-emu");
        // A fitting publish re-lowers onto the same backend.
        r.publish(
            id,
            CompiledPwl::from_pwl(&uniform_pwl(&Tanh, 15, (-6.0, 6.0))),
        )
        .unwrap();
        assert_eq!(r.backend_name(id), Some("sfu-emu"));
    }

    #[test]
    fn register_with_policy_installs_both_atomically() {
        let r = FunctionRegistry::new();
        let policy = FlushPolicy {
            max_elems: 2048,
            deadline: Duration::from_micros(500),
        };
        let id = r
            .register_with_backend_and_policy(
                "tanh",
                &uniform_pwl(&Tanh, 15, (-8.0, 8.0)),
                Arc::new(SfuBackend::fp16(16)),
                Some(policy),
            )
            .unwrap();
        assert_eq!(r.backend_name(id), Some("sfu-emu"));
        assert_eq!(r.policy(id), Some(policy));
        // `None` keeps the server defaults, exactly like plain register.
        let plain = r
            .register_with_backend_and_policy(
                "gelu",
                &uniform_pwl(&Gelu, 8, (-8.0, 8.0)),
                Arc::new(SfuBackend::fp16(16)),
                None,
            )
            .unwrap();
        assert_eq!(r.policy(plain), None);
    }

    #[test]
    fn input_histogram_range_pinned_at_registration_and_survives_publish() {
        let r = FunctionRegistry::new();
        let id = r.register("tanh", &uniform_pwl(&Tanh, 8, (-4.0, 4.0)));
        let before = r.input_histogram(id).unwrap();
        assert_eq!((before.lo, before.hi), (-4.0, 4.0));
        assert_eq!(before.total(), 0);
        assert!(r.input_histogram(FunctionId(9)).is_none());
        // Publishing a table with a different span keeps the histogram
        // shape (and any accumulated counts).
        r.publish(
            id,
            CompiledPwl::from_pwl(&uniform_pwl(&Tanh, 8, (-8.0, 8.0))),
        )
        .unwrap();
        let after = r.input_histogram(id).unwrap();
        assert_eq!((after.lo, after.hi), (-4.0, 4.0));
        // Drain snapshots-and-resets.
        let drained = r.drain_input_histogram(id).unwrap();
        assert_eq!(drained.total(), 0);
    }

    #[test]
    fn policies_set_clear_and_error_on_unknown_ids() {
        let r = FunctionRegistry::new();
        let id = r.register("f", &uniform_pwl(&Gelu, 8, (-8.0, 8.0)));
        assert_eq!(r.policy(id), None);
        let policy = FlushPolicy {
            max_elems: 128,
            deadline: Duration::from_millis(2),
        };
        r.set_policy(id, Some(policy)).unwrap();
        assert_eq!(r.policy(id), Some(policy));
        r.set_policy(id, None).unwrap();
        assert_eq!(r.policy(id), None);
        assert!(matches!(
            r.set_policy(FunctionId(9), Some(policy)),
            Err(crate::ServeError::UnknownFunction(FunctionId(9)))
        ));
    }
}
