//! Serving-tier observability: the metric names this crate emits and
//! the pre-resolved handle bundle the batcher and workers record
//! through.
//!
//! A server started with [`crate::PwlServer::start_with_obs`] counts
//! submissions, tracks queue depth, classifies every flush by its
//! trigger, and times per-function queue wait and backend evaluation —
//! all through handles resolved **once** here, so the hot path never
//! locks the metrics registry or allocates. Sampled jobs additionally
//! carry a [`flexsfu_obs::SpanCell`] stamped at each
//! [`flexsfu_obs::Stage`] as the job moves through the pipeline.

use crate::registry::{FunctionId, FunctionRegistry};
use flexsfu_obs::{
    labeled, Counter, Gauge, LogHistogram, MetricsRegistry, MonotonicClock, SampleRate,
    SpanRecorder,
};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Jobs accepted into the queue (counter).
pub const M_SUBMITS: &str = "flexsfu_serve_submits_total";
/// Jobs currently queued (gauge).
pub const M_QUEUE_JOBS: &str = "flexsfu_serve_queue_jobs";
/// Elements currently queued (gauge) — what the backpressure bound meters.
pub const M_QUEUE_ELEMS: &str = "flexsfu_serve_queue_elems";
/// Per-function flush triggers, labelled `reason="size"|"deadline"|"pressure"|"shutdown"` (counter).
pub const M_FLUSHES: &str = "flexsfu_serve_flushes_total";
/// Flush units handed to the worker pool (counter).
pub const M_FLUSH_UNITS: &str = "flexsfu_serve_flush_units_total";
/// Elements per flush unit (histogram).
pub const M_FLUSH_ELEMS: &str = "flexsfu_serve_flush_elems";
/// Enqueue → flush-plan wait, labelled `function` (histogram, ns).
pub const M_QUEUE_WAIT_NS: &str = "flexsfu_serve_queue_wait_ns";
/// Backend evaluation time per flush unit, unlabelled for the global
/// view plus one labelled `function` series each (histogram, ns).
pub const M_EVAL_NS: &str = "flexsfu_serve_eval_ns";
/// Modelled backend cycles across all flushes (counter).
pub const M_BACKEND_CYCLES: &str = "flexsfu_backend_cycles_total";
/// Modelled backend energy, rounded to whole nanojoules (counter).
pub const M_BACKEND_ENERGY_NJ: &str = "flexsfu_backend_energy_nj_total";
/// Elements evaluated across all flushes (counter).
pub const M_BACKEND_ELEMS: &str = "flexsfu_backend_elems_total";

/// The observability bundle a server is started with: where metrics
/// land and how jobs are traced.
#[derive(Debug, Clone)]
pub struct ServeObs {
    /// Registry all serve/backend metrics resolve against.
    pub metrics: Arc<MetricsRegistry>,
    /// Sampled span ring; its clock stamps every stage.
    pub spans: Arc<SpanRecorder>,
}

impl ServeObs {
    /// Bundles an explicit recorder (use a
    /// [`flexsfu_obs::ManualClock`]-backed one for deterministic
    /// replays).
    pub fn new(metrics: Arc<MetricsRegistry>, spans: Arc<SpanRecorder>) -> Self {
        Self { metrics, spans }
    }

    /// Production defaults: monotonic clock, 1-in-16 sampling, a
    /// 4096-span ring.
    pub fn with_defaults(metrics: Arc<MetricsRegistry>) -> Self {
        let spans = Arc::new(SpanRecorder::new(
            4096,
            SampleRate::default(),
            Arc::new(MonotonicClock::new()),
        ));
        Self { metrics, spans }
    }
}

/// Per-function handle pair, resolved on the function's first flush.
pub(crate) struct FuncObs {
    pub(crate) queue_wait_ns: Arc<LogHistogram>,
    pub(crate) eval_ns: Arc<LogHistogram>,
}

/// Every handle the server's hot paths record through, resolved once at
/// start-up (global series) or on a function's first flush (labelled
/// series). After resolution, recording is lock- and allocation-free.
pub(crate) struct ObsState {
    pub(crate) spans: Arc<SpanRecorder>,
    pub(crate) submits: Arc<Counter>,
    pub(crate) queue_jobs: Arc<Gauge>,
    pub(crate) queue_elems: Arc<Gauge>,
    pub(crate) flush_size: Arc<Counter>,
    pub(crate) flush_deadline: Arc<Counter>,
    pub(crate) flush_pressure: Arc<Counter>,
    pub(crate) flush_shutdown: Arc<Counter>,
    pub(crate) flush_units: Arc<Counter>,
    pub(crate) flush_elems: Arc<LogHistogram>,
    pub(crate) eval_ns_all: Arc<LogHistogram>,
    pub(crate) cycles: Arc<Counter>,
    pub(crate) energy_nj: Arc<Counter>,
    pub(crate) backend_elems: Arc<Counter>,
    metrics: Arc<MetricsRegistry>,
    per_func: Mutex<HashMap<FunctionId, Arc<FuncObs>>>,
}

impl ObsState {
    pub(crate) fn new(obs: &ServeObs) -> Self {
        let m = &obs.metrics;
        Self {
            spans: Arc::clone(&obs.spans),
            submits: m.counter(M_SUBMITS),
            queue_jobs: m.gauge(M_QUEUE_JOBS),
            queue_elems: m.gauge(M_QUEUE_ELEMS),
            flush_size: m.counter(&labeled(M_FLUSHES, &[("reason", "size")])),
            flush_deadline: m.counter(&labeled(M_FLUSHES, &[("reason", "deadline")])),
            flush_pressure: m.counter(&labeled(M_FLUSHES, &[("reason", "pressure")])),
            flush_shutdown: m.counter(&labeled(M_FLUSHES, &[("reason", "shutdown")])),
            flush_units: m.counter(M_FLUSH_UNITS),
            flush_elems: m.histogram(M_FLUSH_ELEMS),
            eval_ns_all: m.histogram(M_EVAL_NS),
            cycles: m.counter(M_BACKEND_CYCLES),
            energy_nj: m.counter(M_BACKEND_ENERGY_NJ),
            backend_elems: m.counter(M_BACKEND_ELEMS),
            metrics: Arc::clone(m),
            per_func: Mutex::new(HashMap::new()),
        }
    }

    /// One clock read.
    #[inline]
    pub(crate) fn now_ns(&self) -> u64 {
        self.spans.now_ns()
    }

    /// The labelled handles for `func`, resolving (and allocating) only
    /// on the function's first flush — the warm path is a map hit.
    pub(crate) fn func(&self, func: FunctionId, registry: &FunctionRegistry) -> Arc<FuncObs> {
        let mut map = self.per_func.lock().unwrap();
        if let Some(f) = map.get(&func) {
            return Arc::clone(f);
        }
        let name = registry
            .name_of(func)
            .unwrap_or_else(|| format!("fn{}", func.0));
        let labels: &[(&str, &str)] = &[("function", &name)];
        let f = Arc::new(FuncObs {
            queue_wait_ns: self.metrics.histogram(&labeled(M_QUEUE_WAIT_NS, labels)),
            eval_ns: self.metrics.histogram(&labeled(M_EVAL_NS, labels)),
        });
        map.insert(func, Arc::clone(&f));
        f
    }
}
