//! # flexsfu-serve
//!
//! A request-batched serving front-end over the compiled PWL evaluation
//! engine — the software layer that keeps the paper's special-function
//! unit saturated under many small concurrent requests.
//!
//! A request-at-a-time design evaluates each caller's tensor alone, and
//! small tensors cannot fill the SIMD lane kernels
//! ([`flexsfu_core::CompiledPwl`] measures ~4.5× the scalar path only at
//! batch scale). This crate instead lets any number of clients submit
//! `(function, tensor)` jobs to a [`ServeHandle`]; a batcher thread
//! coalesces everything pending into **one contiguous buffer per
//! function** — flushing on a size threshold or a deadline tick — a
//! worker pool evaluates each buffer through the engine's slice-scatter
//! entry point ([`flexsfu_core::CompiledPwl::eval_scatter_into`]), and
//! every job's result slice travels back over its own oneshot channel.
//! Results are **bit-identical** to evaluating each tensor directly with
//! the engine ([`flexsfu_core::PwlEvaluator::eval_batch`]).
//!
//! The workspace is offline and std-only, so the executor is
//! hand-rolled: worker threads, `Mutex`/`Condvar` queues, and a minimal
//! [`oneshot`] channel whose receiver doubles as a `Future` — tickets
//! can be `.await`ed from any executor or blocked on with
//! [`JobTicket::wait`].
//!
//! Guarantees:
//!
//! * **Backpressure** — the submission queue is bounded in elements;
//!   [`ServeHandle::submit`] blocks while full,
//!   [`ServeHandle::try_submit`] returns [`ServeError::QueueFull`].
//! * **Graceful shutdown** — [`PwlServer::shutdown`] (or drop) stops
//!   admissions, drains every accepted job, and joins all threads.
//! * **Hot swap** — [`FunctionRegistry::publish`] atomically replaces a
//!   function's compiled table while traffic flows; each flush snapshots
//!   its engine, so a flush never mixes coefficient tables.
//! * **Per-backend dispatch** — every registered function carries a
//!   backend binding ([`flexsfu_backend::EvalBackend`]): the native
//!   SIMD kernels by default, or e.g. the bit-faithful Flex-SFU
//!   emulator via [`FunctionRegistry::register_with_backend`]. Flush
//!   units are per-function, so a flush never mixes backends either,
//!   and each flush's modelled cycle/energy cost accumulates into
//!   [`FunctionRegistry::backend_stats`].
//! * **Per-function flush policies** — [`FunctionRegistry::set_policy`]
//!   gives a function its own [`FlushPolicy`] (size threshold +
//!   deadline); due functions flush alone, so tight-deadline functions
//!   are not held back by throughput-oriented ones.
//! * **Drain and load hooks for the wire tier** —
//!   [`PwlServer::begin_drain`] stops admissions without blocking (the
//!   sharded deployment tier's handoff primitive — accepted jobs still
//!   complete), and [`ServeHandle::queue_depth`] reads the pending
//!   job/element counts a shard reports in health-check pongs. The
//!   [`testkit`] additionally offers deterministic fault injection
//!   ([`testkit::Faults`]: forced `QueueFull`, dropped replies, delayed
//!   flushes) via [`PwlServer::start_with_faults`], so protocol suites
//!   drive retry and backpressure paths instead of racing for them.
//! * **Streaming input histograms** — every function accumulates a
//!   fixed-bucket histogram of the raw inputs its flushes evaluate
//!   (both precisions), alongside its backend stats. Read it cumulative
//!   ([`FunctionRegistry::input_histogram`]) or windowed
//!   ([`FunctionRegistry::drain_input_histogram`], snapshot-and-reset);
//!   the bucket range is pinned at registration to the table's
//!   breakpoint span and survives publishes, so an adaptive retuner can
//!   compare live traffic against its tuning-time snapshot across
//!   hot-swaps (see the `flexsfu-traffic` crate's drift detector).
//! * **A single-precision job lane** — [`ServeHandle::submit_f32`]
//!   serves `Vec<f32>` tensors end to end in f32: the packed flush
//!   buffer, the backend's f32 program
//!   ([`flexsfu_backend::BackendProgramF32`], the eight-wide f32
//!   kernels on the native backend) and the scattered results never
//!   touch f64, and the scatter-back is bit-identical to evaluating
//!   the tensor directly with [`FunctionRegistry::engine_f32`]. Both
//!   precisions share a function's queue accounting and flush policy,
//!   but a flush unit never mixes precisions. Backends without an f32
//!   lane reject f32 jobs at admission with
//!   [`ServeError::PrecisionUnsupported`].
//!
//! # Example
//!
//! ```
//! use flexsfu_core::init::uniform_pwl;
//! use flexsfu_core::PwlEvaluator;
//! use flexsfu_funcs::Gelu;
//! use flexsfu_serve::{FunctionRegistry, PwlServer, ServeConfig};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(FunctionRegistry::new());
//! let gelu = registry.register("gelu", &uniform_pwl(&Gelu, 16, (-8.0, 8.0)));
//! let server = PwlServer::start(Arc::clone(&registry), ServeConfig::default());
//! let handle = server.handle();
//!
//! let ticket = handle.submit(gelu, vec![-1.0, 0.0, 2.0])?;
//! let ys = ticket.wait()?;
//! assert_eq!(ys.len(), 3);
//!
//! // Bit-identical to evaluating directly through the engine.
//! let direct = registry.engine(gelu).unwrap().engine().eval_batch(&[-1.0, 0.0, 2.0]);
//! assert!(ys.iter().zip(&direct).all(|(a, b)| a.to_bits() == b.to_bits()));
//! server.shutdown();
//! # Ok::<(), flexsfu_serve::ServeError>(())
//! ```
//!
//! A fuller tour — multiple clients, throughput measurement, and a
//! mid-traffic hot swap — lives in `examples/serving.rs`
//! (`cargo run --release --example serving`), whose output looks like:
//!
//! ```text
//! serving 2 functions to 8 concurrent clients (request = 96 elems)
//!   batched  : 1600 requests in 59.7 ms  (2.6 Melem/s), all bit-identical
//!   hot swap : optimized gelu table published mid-traffic (217 requests served meanwhile); MSE 6.3e-4 -> 3.6e-6
//!   cutover  : post-publish responses match the optimized table exactly
//!   shutdown : drained cleanly
//! ```
//!
//! (Numbers vary by machine; bit-identity and the clean drain do not.)

mod error;
pub mod histogram;
pub mod obs;
pub mod oneshot;
pub mod plan;
mod registry;
mod server;
pub mod testkit;

pub use error::ServeError;
pub use histogram::{InputHistogramSnapshot, INPUT_HIST_BUCKETS};
pub use obs::ServeObs;
pub use plan::{FlushPlan, GroupPlan, JobSpan};
pub use registry::{BackendStatsSnapshot, FunctionId, FunctionRegistry};
pub use server::{
    FlushPolicy, JobTicket, JobTicketF32, PwlServer, QueueDepth, ServeConfig, ServeHandle,
};
