//! Property tests for the batcher's coalescing math ([`FlushPlan`]).
//!
//! The plan is a pure function of the job shapes, so these tests get to
//! state the batching invariants directly: for arbitrary job sequences
//! the spans of each group partition that group's packed buffer exactly,
//! scatter-back is a bijection on jobs, groups never mix functions (and
//! therefore never mix coefficient tables), and pack → scatter is the
//! identity on every job's payload.

use flexsfu_serve::{FlushPlan, FunctionId};
use proptest::prelude::*;

/// Decodes one sampled word into a job shape: a function id out of a
/// small pool (forcing collisions, so grouping actually groups) and a
/// length in 0..120 with a bias toward 0 and tiny tensors.
fn decode(word: u64) -> (FunctionId, usize) {
    let func = FunctionId((word % 5) as u32);
    let len = match (word >> 3) % 4 {
        0 => 0,
        1 => ((word >> 8) % 4) as usize,
        _ => ((word >> 8) % 120) as usize,
    };
    (func, len)
}

proptest! {
    /// Within every group: offsets start at 0, ascend contiguously
    /// (offset + len = next offset), and end at the group total — the
    /// spans tile the packed buffer exactly, with no gap or overlap.
    #[test]
    fn spans_partition_each_packed_buffer(words in proptest::collection::vec(0u64..u64::MAX, 0..48)) {
        let jobs: Vec<_> = words.iter().map(|&w| decode(w)).collect();
        let plan = FlushPlan::build(&jobs);
        for group in &plan.groups {
            let mut cursor = 0usize;
            for span in &group.spans {
                prop_assert_eq!(span.offset, cursor, "gap or overlap in packed buffer");
                cursor += span.len;
            }
            prop_assert_eq!(cursor, group.total, "group total must equal the span sum");
        }
        prop_assert_eq!(
            plan.total_elements(),
            jobs.iter().map(|j| j.1).sum::<usize>()
        );
    }

    /// Scatter-back is a bijection: every submitted job appears in
    /// exactly one group exactly once, with its length preserved and its
    /// group keyed by its own function.
    #[test]
    fn scatter_back_is_a_bijection_on_jobs(words in proptest::collection::vec(0u64..u64::MAX, 0..48)) {
        let jobs: Vec<_> = words.iter().map(|&w| decode(w)).collect();
        let plan = FlushPlan::build(&jobs);
        prop_assert_eq!(plan.total_jobs(), jobs.len());
        let mut seen = vec![false; jobs.len()];
        for group in &plan.groups {
            for span in &group.spans {
                prop_assert!(span.job < jobs.len(), "span names a job that does not exist");
                prop_assert!(!seen[span.job], "job appears in two spans");
                seen[span.job] = true;
                let (func, len) = jobs[span.job];
                prop_assert_eq!(span.len, len, "span length differs from the job's");
                prop_assert_eq!(group.func, func, "group mixes functions");
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "a job was dropped from the plan");
    }

    /// Groups are keyed uniquely (one group per function, ordered by
    /// first appearance) and jobs within a group keep submission order —
    /// per-function FIFO.
    #[test]
    fn grouping_is_unique_and_fifo(words in proptest::collection::vec(0u64..u64::MAX, 0..48)) {
        let jobs: Vec<_> = words.iter().map(|&w| decode(w)).collect();
        let plan = FlushPlan::build(&jobs);
        let mut seen_funcs = Vec::new();
        for group in &plan.groups {
            prop_assert!(
                !seen_funcs.contains(&group.func),
                "two groups share a function"
            );
            seen_funcs.push(group.func);
            for pair in group.spans.windows(2) {
                prop_assert!(pair[0].job < pair[1].job, "FIFO order broken within group");
            }
        }
        // Groups appear in order of their function's first job.
        let first_appearance: Vec<FunctionId> = {
            let mut order = Vec::new();
            for &(f, _) in &jobs {
                if !order.contains(&f) {
                    order.push(f);
                }
            }
            order
        };
        prop_assert_eq!(seen_funcs, first_appearance);
    }

    /// Pack → scatter is the identity on payloads: simulating the
    /// batcher's copy-in and the worker's copy-out through the plan
    /// returns every job's own bytes.
    #[test]
    fn pack_then_scatter_roundtrips_payloads(words in proptest::collection::vec(0u64..u64::MAX, 0..48)) {
        let jobs: Vec<_> = words.iter().map(|&w| decode(w)).collect();
        // Give every job a recognizable payload: element k of job j is
        // j + k/1000.
        let payloads: Vec<Vec<f64>> = jobs
            .iter()
            .enumerate()
            .map(|(j, &(_, len))| (0..len).map(|k| j as f64 + k as f64 * 1e-3).collect())
            .collect();
        let plan = FlushPlan::build(&jobs);
        for group in &plan.groups {
            // Pack.
            let mut packed = vec![f64::NAN; group.total];
            for span in &group.spans {
                packed[span.offset..span.offset + span.len].copy_from_slice(&payloads[span.job]);
            }
            prop_assert!(
                packed.iter().all(|v| !v.is_nan()),
                "packed buffer has holes"
            );
            // Scatter back.
            for span in &group.spans {
                let slice = &packed[span.offset..span.offset + span.len];
                prop_assert_eq!(slice, payloads[span.job].as_slice(), "payload corrupted");
            }
        }
    }
}
