//! Concurrency stress battery for the serving front-end.
//!
//! This is the first layer of the workspace where correctness depends on
//! scheduling, so every test runs under a watchdog: a deadlock fails
//! with a named panic instead of hanging the suite. Schedules are driven
//! with barriers (all clients release at once) and configs chosen to
//! force the races of interest — flush-deadline vs size-threshold,
//! shutdown vs queued work, publish vs in-flight flush.

use flexsfu_backend::{BackendProgram, SfuBackend};
use flexsfu_core::init::uniform_pwl;
use flexsfu_core::{CompiledPwl, PwlEvaluator, PwlFunction};
use flexsfu_funcs::{Gelu, Sigmoid, Tanh};
use flexsfu_serve::testkit::with_watchdog;
use flexsfu_serve::{FlushPolicy, FunctionRegistry, PwlServer, ServeConfig, ServeError};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

/// A deterministic xorshift stream for sizes/values.
fn rng(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

/// Three functions covering all three engine kernels: linear-scan
/// (≤ 8 segments), bucket (deep table), search fallback (clustered).
fn test_functions() -> Vec<PwlFunction> {
    let shallow = uniform_pwl(&Gelu, 7, (-8.0, 8.0));
    let deep = uniform_pwl(&Tanh, 63, (-8.0, 8.0));
    let clustered = {
        let mut ps: Vec<f64> = (0..30).map(|i| i as f64 * 1e-8).collect();
        ps.insert(0, -500.0);
        ps.push(500.0);
        let vs: Vec<f64> = ps.iter().map(|p| (p * 0.01).cos()).collect();
        PwlFunction::new(ps, vs, 0.5, -0.25).unwrap()
    };
    vec![shallow, deep, clustered]
}

/// A request tensor mixing interior points, boundary-exact values and
/// the occasional NaN, sized `len`.
fn request_tensor(next: &mut impl FnMut() -> u64, pwl: &PwlFunction, len: usize) -> Vec<f64> {
    (0..len)
        .map(|_| {
            let r = next();
            match r % 37 {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => pwl.breakpoints()[(r >> 8) as usize % pwl.breakpoints().len()],
                _ => ((r >> 11) as f64 / (1u64 << 53) as f64) * 24.0 - 12.0,
            }
        })
        .collect()
}

/// Bitwise comparison helper (NaN-tolerant: NaN bits must equal).
fn assert_bits_eq(got: &[f64], want: &[f64], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{ctx}: element {i}");
    }
}

/// The headline stress: 8 client threads × 3 functions × random tensor
/// sizes (including 0-length), tiny flush threshold *and* tiny deadline
/// so both flush causes race, results bit-identical to direct
/// `CompiledPwl::eval_batch`.
#[test]
fn concurrent_results_bit_identical_to_direct_eval() {
    with_watchdog(
        60,
        "concurrent_results_bit_identical_to_direct_eval",
        || {
            const CLIENTS: usize = 8;
            const REQUESTS: usize = 40;
            let functions = test_functions();
            let engines: Vec<CompiledPwl> = functions.iter().map(CompiledPwl::from_pwl).collect();
            let registry = Arc::new(FunctionRegistry::new());
            let ids: Vec<_> = functions
                .iter()
                .enumerate()
                .map(|(i, f)| registry.register(format!("f{i}"), f))
                .collect();
            let server = PwlServer::start(
                Arc::clone(&registry),
                ServeConfig {
                    flush_elements: 700,
                    flush_interval: Duration::from_micros(200),
                    queue_elements: 4_000,
                    eval_workers: 2,
                },
            );
            let barrier = Arc::new(Barrier::new(CLIENTS));
            thread::scope(|scope| {
                for client in 0..CLIENTS {
                    let handle = server.handle();
                    let barrier = Arc::clone(&barrier);
                    let functions = &functions;
                    let engines = &engines;
                    let ids = &ids;
                    scope.spawn(move || {
                        let mut next = rng(client as u64 + 1);
                        barrier.wait();
                        for req in 0..REQUESTS {
                            let which = (next() as usize) % functions.len();
                            // Sizes sweep 0..~600 and force 0-length often.
                            let len = match next() % 5 {
                                0 => 0,
                                1 => (next() as usize) % 9,
                                _ => (next() as usize) % 600,
                            };
                            let data = request_tensor(&mut next, &functions[which], len);
                            let want = engines[which].eval_batch(&data);
                            let ticket = handle
                                .submit(ids[which], data)
                                .expect("submit during steady state");
                            let got = ticket.wait().expect("result during steady state");
                            assert_bits_eq(&got, &want, &format!("client {client} req {req}"));
                        }
                    });
                }
            });
            server.shutdown();
        },
    );
}

/// Deadline-only flushing: tensors too small to ever hit the size
/// threshold must still complete (and bit-match), including empty ones.
#[test]
fn deadline_flush_serves_sparse_traffic_and_empty_tensors() {
    with_watchdog(
        30,
        "deadline_flush_serves_sparse_traffic_and_empty_tensors",
        || {
            let functions = test_functions();
            let engine = CompiledPwl::from_pwl(&functions[0]);
            let registry = Arc::new(FunctionRegistry::new());
            let id = registry.register("f", &functions[0]);
            let server = PwlServer::start(
                Arc::clone(&registry),
                ServeConfig {
                    flush_elements: usize::MAX / 2, // size threshold unreachable
                    flush_interval: Duration::from_micros(100),
                    queue_elements: usize::MAX / 2,
                    eval_workers: 1,
                },
            );
            let handle = server.handle();
            let mut next = rng(99);
            for round in 0..50 {
                let len = if round % 3 == 0 {
                    0
                } else {
                    (next() as usize) % 5
                };
                let data = request_tensor(&mut next, &functions[0], len);
                let want = engine.eval_batch(&data);
                let got = handle.submit(id, data).unwrap().wait().unwrap();
                assert_bits_eq(&got, &want, &format!("round {round}"));
            }
            server.shutdown();
        },
    );
}

/// The flush-deadline vs size-threshold race: barrier-released bursts
/// land exactly as the deadline of the previous trickle expires. No
/// deadlock, nothing lost, everything bit-identical.
#[test]
fn threshold_and_deadline_race_loses_nothing() {
    with_watchdog(60, "threshold_and_deadline_race_loses_nothing", || {
        const ROUNDS: usize = 30;
        const BURST: usize = 6;
        let functions = test_functions();
        let engines: Vec<CompiledPwl> = functions.iter().map(CompiledPwl::from_pwl).collect();
        let registry = Arc::new(FunctionRegistry::new());
        let ids: Vec<_> = functions
            .iter()
            .enumerate()
            .map(|(i, f)| registry.register(format!("f{i}"), f))
            .collect();
        // Threshold equal to one burst's worth of elements, deadline in
        // the same band as the inter-round gap: both causes fire.
        let server = PwlServer::start(
            Arc::clone(&registry),
            ServeConfig {
                flush_elements: 64,
                flush_interval: Duration::from_micros(50),
                queue_elements: 1_000_000,
                eval_workers: 2,
            },
        );
        let barrier = Arc::new(Barrier::new(BURST));
        thread::scope(|scope| {
            for client in 0..BURST {
                let handle = server.handle();
                let barrier = Arc::clone(&barrier);
                let functions = &functions;
                let engines = &engines;
                let ids = &ids;
                scope.spawn(move || {
                    let mut next = rng(0xB0057 + client as u64);
                    for round in 0..ROUNDS {
                        // All clients release together: a 6×(0..=21)-element
                        // burst straddling the 64-element threshold.
                        barrier.wait();
                        let which = (client + round) % functions.len();
                        let len = (next() as usize) % 22;
                        let data = request_tensor(&mut next, &functions[which], len);
                        let want = engines[which].eval_batch(&data);
                        let got = handle.submit(ids[which], data).unwrap().wait().unwrap();
                        assert_bits_eq(&got, &want, &format!("client {client} round {round}"));
                    }
                });
            }
        });
        server.shutdown();
    });
}

/// Graceful shutdown with jobs still queued: every accepted job must
/// complete (bit-identically) even though shutdown raced the flush, and
/// submissions after shutdown must be rejected cleanly.
#[test]
fn shutdown_drains_queued_jobs_and_rejects_new_ones() {
    with_watchdog(
        30,
        "shutdown_drains_queued_jobs_and_rejects_new_ones",
        || {
            let functions = test_functions();
            let engines: Vec<CompiledPwl> = functions.iter().map(CompiledPwl::from_pwl).collect();
            let registry = Arc::new(FunctionRegistry::new());
            let ids: Vec<_> = functions
                .iter()
                .enumerate()
                .map(|(i, f)| registry.register(format!("f{i}"), f))
                .collect();
            for attempt in 0..20 {
                // Long deadline and big threshold: jobs are still queued when
                // shutdown lands, so the drain path does the work.
                let server = PwlServer::start(
                    Arc::clone(&registry),
                    ServeConfig {
                        flush_elements: usize::MAX / 2,
                        flush_interval: Duration::from_secs(3600),
                        queue_elements: usize::MAX / 2,
                        eval_workers: 2,
                    },
                );
                let handle = server.handle();
                let mut next = rng(7_000 + attempt);
                let mut pending = Vec::new();
                for k in 0..25 {
                    let which = (next() as usize) % functions.len();
                    let len = (next() as usize) % 200;
                    let data = request_tensor(&mut next, &functions[which], len);
                    let want = engines[which].eval_batch(&data);
                    let ticket = handle.submit(ids[which], data).unwrap();
                    pending.push((k, ticket, want));
                }
                server.shutdown();
                for (k, ticket, want) in pending {
                    let got = ticket
                        .wait()
                        .expect("job accepted before shutdown must complete");
                    assert_bits_eq(&got, &want, &format!("attempt {attempt} job {k}"));
                }
                assert_eq!(
                    handle.submit(ids[0], vec![1.0]).err(),
                    Some(ServeError::ShuttingDown),
                    "post-shutdown submissions must be rejected"
                );
            }
        },
    );
}

/// Backpressure: with a tiny element bound, `try_submit` reports a full
/// queue instead of blocking, the blocking `submit` waits for space, and
/// everything admitted still completes.
#[test]
fn backpressure_bounds_the_queue_without_losing_jobs() {
    with_watchdog(
        30,
        "backpressure_bounds_the_queue_without_losing_jobs",
        || {
            let functions = test_functions();
            let engine = CompiledPwl::from_pwl(&functions[1]);
            let registry = Arc::new(FunctionRegistry::new());
            let id = registry.register("deep", &functions[1]);
            // Flushing is effectively disabled, so the queue genuinely fills.
            let server = PwlServer::start(
                Arc::clone(&registry),
                ServeConfig {
                    flush_elements: usize::MAX / 2,
                    flush_interval: Duration::from_secs(3600),
                    queue_elements: 100,
                    eval_workers: 1,
                },
            );
            let handle = server.handle();
            let mut next = rng(31337);
            let mut admitted = Vec::new();
            let mut saw_full = false;
            for _ in 0..100 {
                let data = request_tensor(&mut next, &functions[1], 10);
                let want = engine.eval_batch(&data);
                match handle.try_submit(id, data) {
                    Ok(t) => admitted.push((t, want)),
                    Err(ServeError::QueueFull) => {
                        saw_full = true;
                        break;
                    }
                    Err(e) => panic!("unexpected submit error: {e}"),
                }
            }
            assert!(
                saw_full,
                "a 100-element bound must reject 10×10-element jobs"
            );
            assert_eq!(admitted.len(), 10, "exactly queue_elements/len jobs fit");
            // A blocking submit parked on the full queue is released by the
            // shutdown drain and still completes.
            let blocked = {
                let handle = handle.clone();
                let data = request_tensor(&mut rng(555), &functions[1], 10);
                let want = engine.eval_batch(&data);
                thread::spawn(move || (handle.submit(id, data), want))
            };
            // Give the blocked submitter time to actually park.
            thread::sleep(Duration::from_millis(20));
            server.shutdown();
            for (i, (t, want)) in admitted.into_iter().enumerate() {
                let got = t.wait().expect("admitted job must complete");
                assert_bits_eq(&got, &want, &format!("admitted job {i}"));
            }
            // The parked submit either got in before the drain (and must
            // complete) or observed shutdown — both are clean outcomes.
            let (result, want) = blocked.join().unwrap();
            match result {
                Ok(t) => assert_bits_eq(&t.wait().unwrap(), &want, "blocked submit"),
                Err(e) => assert_eq!(e, ServeError::ShuttingDown),
            }
        },
    );
}

/// Hot swap under traffic: publishing a recompiled table mid-stream
/// never mixes tables within a response (each result bit-matches exactly
/// one published version), and a submit *after* publish returns is
/// guaranteed the new table.
#[test]
fn hot_swap_publishes_new_tables_without_stopping_traffic() {
    with_watchdog(
        60,
        "hot_swap_publishes_new_tables_without_stopping_traffic",
        || {
            let v1 = uniform_pwl(&Gelu, 31, (-8.0, 8.0));
            let v2 = uniform_pwl(&Sigmoid, 31, (-8.0, 8.0));
            let e1 = CompiledPwl::from_pwl(&v1);
            let e2 = CompiledPwl::from_pwl(&v2);
            let registry = Arc::new(FunctionRegistry::new());
            let id = registry.register("hot", &v1);
            let server = PwlServer::start(
                Arc::clone(&registry),
                ServeConfig {
                    flush_elements: 256,
                    flush_interval: Duration::from_micros(100),
                    queue_elements: 100_000,
                    eval_workers: 2,
                },
            );
            let handle = server.handle();
            let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
            let (v1_ref, v2_ref) = (&v1, &v2);
            let (e1_ref, e2_ref) = (&e1, &e2);
            thread::scope(|scope| {
                // Traffic threads: every response must match v1 or v2 exactly
                // — never a blend.
                for client in 0..4 {
                    let handle = handle.clone();
                    let stop = Arc::clone(&stop);
                    let (e1, e2) = (e1_ref, e2_ref);
                    let v1 = v1_ref;
                    scope.spawn(move || {
                        let mut next = rng(0x40 + client);
                        while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                            let len = 1 + (next() as usize) % 64;
                            let data = request_tensor(&mut next, v1, len);
                            let want1 = e1.eval_batch(&data);
                            let want2 = e2.eval_batch(&data);
                            let got = handle.submit(id, data).unwrap().wait().unwrap();
                            let matches_v1 = got
                                .iter()
                                .zip(&want1)
                                .all(|(g, w)| g.to_bits() == w.to_bits());
                            let matches_v2 = got
                                .iter()
                                .zip(&want2)
                                .all(|(g, w)| g.to_bits() == w.to_bits());
                            assert!(
                                matches_v1 || matches_v2,
                                "client {client}: response matches neither published table \
                             (tables mixed within one flush?)"
                            );
                        }
                    });
                }
                // The publisher: flip between tables while traffic flows.
                let registry = Arc::clone(&registry);
                let stop_pub = Arc::clone(&stop);
                scope.spawn(move || {
                    for k in 0..40 {
                        let next = if k % 2 == 0 { v2_ref } else { v1_ref };
                        registry
                            .publish(id, CompiledPwl::from_pwl(next))
                            .expect("publish to live id");
                        thread::sleep(Duration::from_micros(300));
                    }
                    stop_pub.store(true, std::sync::atomic::Ordering::Relaxed);
                });
            });
            // Happens-before: publish returned, so any flush of a job
            // submitted now snapshots the just-published (v1) table.
            registry.publish(id, CompiledPwl::from_pwl(&v1)).unwrap();
            let xs: Vec<f64> = (0..200).map(|i| i as f64 * 0.05 - 5.0).collect();
            let want = e1.eval_batch(&xs);
            let got = handle.submit(id, xs).unwrap().wait().unwrap();
            assert_bits_eq(&got, &want, "post-publish submit sees the new table");
            server.shutdown();
        },
    );
}

/// Multi-backend dispatch: one function on the native SIMD kernels, one
/// on the bit-faithful SFU emulator, hammered concurrently. Every
/// response must be bit-identical to its *own* backend's reference
/// (never the other's — the two genuinely disagree in their low bits),
/// and the registry's per-function counters must show positive modelled
/// cycles for the emulated function and none for the native one.
#[test]
fn mixed_backends_route_flushes_per_function_with_per_flush_costs() {
    with_watchdog(
        60,
        "mixed_backends_route_flushes_per_function_with_per_flush_costs",
        || {
            const CLIENTS: usize = 4;
            const REQUESTS: usize = 30;
            let gelu = uniform_pwl(&Gelu, 31, (-8.0, 8.0));
            let tanh = uniform_pwl(&Tanh, 63, (-8.0, 8.0));
            let native_ref = CompiledPwl::from_pwl(&gelu);
            let tanh_native_ref = CompiledPwl::from_pwl(&tanh);
            let sfu_backend = SfuBackend::fp16(64);
            let sfu_ref = sfu_backend.lower_program(&tanh.compile()).unwrap();

            let registry = Arc::new(FunctionRegistry::new());
            let native_id = registry.register("gelu", &gelu);
            let sfu_id = registry
                .register_with_backend("tanh", &tanh, Arc::new(sfu_backend))
                .expect("64-segment tanh fits the depth-64 emulator");
            assert_eq!(registry.backend_name(native_id), Some("native"));
            assert_eq!(registry.backend_name(sfu_id), Some("sfu-emu"));

            let server = PwlServer::start(
                Arc::clone(&registry),
                ServeConfig {
                    flush_elements: 512,
                    flush_interval: Duration::from_micros(100),
                    queue_elements: 100_000,
                    eval_workers: 2,
                },
            );
            let sfu_elems = std::sync::atomic::AtomicU64::new(0);
            let sfu_disagreed_with_native = std::sync::atomic::AtomicBool::new(false);
            let barrier = Arc::new(Barrier::new(CLIENTS));
            thread::scope(|scope| {
                for client in 0..CLIENTS {
                    let handle = server.handle();
                    let barrier = Arc::clone(&barrier);
                    let (gelu, tanh) = (&gelu, &tanh);
                    let (native_ref, sfu_ref) = (&native_ref, &sfu_ref);
                    let tanh_native_ref = &tanh_native_ref;
                    let sfu_elems = &sfu_elems;
                    let sfu_disagreed = &sfu_disagreed_with_native;
                    scope.spawn(move || {
                        let mut next = rng(0xBACC + client as u64);
                        barrier.wait();
                        for req in 0..REQUESTS {
                            let len = (next() as usize) % 200;
                            if (client + req) % 2 == 0 {
                                let data = request_tensor(&mut next, gelu, len);
                                let want = native_ref.eval_batch(&data);
                                let got = handle.submit(native_id, data).unwrap().wait().unwrap();
                                assert_bits_eq(
                                    &got,
                                    &want,
                                    &format!("native client {client} req {req}"),
                                );
                            } else {
                                let data = request_tensor(&mut next, tanh, len);
                                let (want, _) = sfu_ref.eval_batch(&data);
                                let native_would = tanh_native_ref.eval_batch(&data);
                                sfu_elems.fetch_add(
                                    data.len() as u64,
                                    std::sync::atomic::Ordering::Relaxed,
                                );
                                let got = handle.submit(sfu_id, data).unwrap().wait().unwrap();
                                assert_bits_eq(
                                    &got,
                                    &want,
                                    &format!("sfu client {client} req {req}"),
                                );
                                if got
                                    .iter()
                                    .zip(&native_would)
                                    .any(|(g, n)| g.to_bits() != n.to_bits())
                                {
                                    sfu_disagreed.store(true, std::sync::atomic::Ordering::Relaxed);
                                }
                            }
                        }
                    });
                }
            });
            server.shutdown();

            // The emulated path really ran: it disagrees with the native
            // kernels somewhere (fp16 quantization), so bit-matching its
            // reference proves routing.
            assert!(
                sfu_disagreed_with_native.load(std::sync::atomic::Ordering::Relaxed),
                "sfu-emu responses never differed from native — routing untested"
            );
            let sfu_stats = registry.backend_stats(sfu_id).unwrap();
            assert!(sfu_stats.flushes > 0, "sfu function never flushed");
            assert_eq!(
                sfu_stats.elems,
                sfu_elems.load(std::sync::atomic::Ordering::Relaxed),
                "every sfu element must be accounted to its backend"
            );
            assert!(sfu_stats.cycles > 0, "per-flush cycle estimates must land");
            assert!(sfu_stats.energy_nj > 0.0);
            let native_stats = registry.backend_stats(native_id).unwrap();
            assert!(native_stats.flushes > 0);
            assert_eq!(
                native_stats.cycles, 0,
                "the native backend has no cost model"
            );
        },
    );
}

/// Per-function flush policies: a tight-deadline function must flush on
/// its own clock while a long-deadline function's jobs stay queued —
/// the slow function cannot hold the fast one hostage, and vice versa
/// the fast function's flushes must not sweep the slow one's jobs out
/// early.
#[test]
fn per_function_flush_policies_fire_independently() {
    with_watchdog(30, "per_function_flush_policies_fire_independently", || {
        use flexsfu_serve::testkit::noop_waker;
        use std::future::Future;
        use std::pin::Pin;
        use std::task::{Context, Poll};

        let functions = test_functions();
        let engine_fast = CompiledPwl::from_pwl(&functions[0]);
        let engine_slow = CompiledPwl::from_pwl(&functions[1]);
        let registry = Arc::new(FunctionRegistry::new());
        let fast = registry.register("fast", &functions[0]);
        let slow = registry.register("slow", &functions[1]);
        registry
            .set_policy(
                fast,
                Some(FlushPolicy {
                    max_elems: usize::MAX / 2,
                    deadline: Duration::from_millis(5),
                }),
            )
            .unwrap();
        registry
            .set_policy(
                slow,
                Some(FlushPolicy {
                    max_elems: usize::MAX / 2,
                    // "Never deadline-flush" — also proves an
                    // Instant-overflowing deadline saturates instead of
                    // panicking the batcher.
                    deadline: Duration::MAX,
                }),
            )
            .unwrap();
        // Server defaults are unreachable, so only the explicit
        // policies can trigger flushes.
        let server = PwlServer::start(
            Arc::clone(&registry),
            ServeConfig {
                flush_elements: usize::MAX / 2,
                flush_interval: Duration::from_secs(3600),
                queue_elements: usize::MAX / 2,
                eval_workers: 1,
            },
        );
        let handle = server.handle();
        let mut next = rng(0xDEAD11);

        // Slow first, fast second: a global deadline anchored at the
        // oldest job would flush both together; per-function deadlines
        // must release only the fast one.
        let slow_data = request_tensor(&mut next, &functions[1], 40);
        let slow_want = engine_slow.eval_batch(&slow_data);
        let mut slow_ticket = handle.submit(slow, slow_data).unwrap();
        let fast_data = request_tensor(&mut next, &functions[0], 40);
        let fast_want = engine_fast.eval_batch(&fast_data);
        let t0 = Instant::now();
        let fast_ticket = handle.submit(fast, fast_data).unwrap();

        let got_fast = fast_ticket.wait().unwrap();
        let fast_latency = t0.elapsed();
        assert_bits_eq(&got_fast, &fast_want, "fast function");
        assert!(
            fast_latency < Duration::from_secs(5),
            "5 ms deadline took {fast_latency:?} — the slow function's \
             never-expiring deadline held it hostage"
        );

        // The slow function's job must still be queued (its only
        // triggers are an unreachable size threshold, queue pressure,
        // or shutdown).
        let waker = noop_waker();
        let mut cx = Context::from_waker(&waker);
        assert!(
            matches!(Pin::new(&mut slow_ticket).poll(&mut cx), Poll::Pending),
            "slow function flushed early — policies are not independent"
        );

        // Shutdown drains it, completing the job bit-identically.
        server.shutdown();
        let got_slow = slow_ticket.wait().unwrap();
        assert_bits_eq(&got_slow, &slow_want, "slow function after drain");
    });
}

/// Flush policies must never starve admissions: a long-deadline
/// function filling the shared element bound would otherwise block
/// every other function's `submit` for its whole deadline. A parked
/// submitter forces a pressure flush of everything pending.
#[test]
fn queue_pressure_overrides_flush_policies() {
    with_watchdog(30, "queue_pressure_overrides_flush_policies", || {
        let functions = test_functions();
        let engine_slow = CompiledPwl::from_pwl(&functions[1]);
        let engine_fast = CompiledPwl::from_pwl(&functions[0]);
        let registry = Arc::new(FunctionRegistry::new());
        let slow = registry.register("slow", &functions[1]);
        let fast = registry.register("fast", &functions[0]);
        registry
            .set_policy(
                slow,
                Some(FlushPolicy {
                    max_elems: usize::MAX / 2,
                    deadline: Duration::MAX, // only pressure/shutdown flush it
                }),
            )
            .unwrap();
        registry
            .set_policy(
                fast,
                Some(FlushPolicy {
                    max_elems: usize::MAX / 2,
                    deadline: Duration::from_millis(5),
                }),
            )
            .unwrap();
        let server = PwlServer::start(
            Arc::clone(&registry),
            ServeConfig {
                flush_elements: usize::MAX / 2,
                flush_interval: Duration::from_secs(3600),
                queue_elements: 1_000,
                eval_workers: 1,
            },
        );
        let handle = server.handle();
        let mut next = rng(0x9E55);

        // Saturate the bound with the never-flushing function.
        let mut slow_pending = Vec::new();
        for _ in 0..10 {
            let data = request_tensor(&mut next, &functions[1], 100);
            let want = engine_slow.eval_batch(&data);
            slow_pending.push((handle.submit(slow, data).unwrap(), want));
        }

        // This submit parks on the full queue; the resulting pressure
        // flush must drain the slow function (despite its policy),
        // admit this job, and the fast function's own 5 ms deadline
        // completes it — all well within the watchdog.
        let data = request_tensor(&mut next, &functions[0], 100);
        let want = engine_fast.eval_batch(&data);
        let t0 = Instant::now();
        let got = handle.submit(fast, data).unwrap().wait().unwrap();
        assert_bits_eq(&got, &want, "fast job under queue pressure");
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "pressure flush failed to unblock admissions"
        );
        for (i, (ticket, want)) in slow_pending.into_iter().enumerate() {
            let got = ticket.wait().unwrap();
            assert_bits_eq(&got, &want, &format!("pressure-flushed slow job {i}"));
        }
        server.shutdown();
    });
}

/// Non-blocking producers must not starve either: `try_submit` never
/// parks (so it never raises the waiter count), but bouncing off the
/// full queue still has to force a drain — retries eventually succeed
/// even against a never-deadline function holding the bound.
#[test]
fn try_submit_rejection_forces_a_pressure_flush() {
    with_watchdog(30, "try_submit_rejection_forces_a_pressure_flush", || {
        let functions = test_functions();
        let engine = CompiledPwl::from_pwl(&functions[1]);
        let registry = Arc::new(FunctionRegistry::new());
        let id = registry.register("slow", &functions[1]);
        registry
            .set_policy(
                id,
                Some(FlushPolicy {
                    max_elems: usize::MAX / 2,
                    deadline: Duration::MAX,
                }),
            )
            .unwrap();
        let server = PwlServer::start(
            Arc::clone(&registry),
            ServeConfig {
                flush_elements: usize::MAX / 2,
                flush_interval: Duration::from_secs(3600),
                queue_elements: 500,
                eval_workers: 1,
            },
        );
        let handle = server.handle();
        let mut next = rng(0x7F11);
        let mut tickets = Vec::new();
        let mut saw_full = false;
        // Pure try_submit producer: fill the bound, observe QueueFull,
        // keep retrying — the rejection-triggered pressure flush must
        // open space again (without it, every retry fails until
        // shutdown).
        let mut accepted = 0usize;
        while accepted < 20 {
            let data = request_tensor(&mut next, &functions[1], 100);
            let want = engine.eval_batch(&data);
            match handle.try_submit(id, data) {
                Ok(t) => {
                    tickets.push((t, want));
                    accepted += 1;
                }
                Err(ServeError::QueueFull) => {
                    saw_full = true;
                    thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
        assert!(saw_full, "a 500-element bound must reject 20×100 upfront");
        // The first tranche was pressure-flushed, so its ticket
        // completes *without* shutdown — poll it to readiness (bounded
        // by the watchdog; the worker may still be evaluating).
        {
            use flexsfu_serve::testkit::noop_waker;
            use std::future::Future;
            use std::pin::Pin;
            use std::task::{Context, Poll};
            let waker = noop_waker();
            let mut cx = Context::from_waker(&waker);
            let (first, want) = &mut tickets[0];
            let got = loop {
                match Pin::new(&mut *first).poll(&mut cx) {
                    Poll::Ready(r) => break r.unwrap(),
                    Poll::Pending => thread::sleep(Duration::from_micros(200)),
                }
            };
            assert_bits_eq(&got, want, "first pressure-flushed job");
        }
        // The tail tranche never saw pressure again; the shutdown drain
        // completes it (and everything else) bit-identically.
        server.shutdown();
        for (i, (t, want)) in tickets.into_iter().skip(1).enumerate() {
            let got = t.wait().expect("accepted job completes");
            assert_bits_eq(&got, &want, &format!("try_submit job {i}"));
        }
    });
}

/// Submitting an unregistered id fails fast without touching the queue,
/// and tickets are usable as plain `Future`s.
#[test]
fn unknown_function_and_future_interface() {
    with_watchdog(30, "unknown_function_and_future_interface", || {
        use flexsfu_serve::testkit::noop_waker;
        use flexsfu_serve::FunctionId;
        use std::future::Future;
        use std::pin::Pin;
        use std::task::{Context, Poll};

        let functions = test_functions();
        let registry = Arc::new(FunctionRegistry::new());
        let id = registry.register("f", &functions[0]);
        let engine = CompiledPwl::from_pwl(&functions[0]);
        let server = PwlServer::start(Arc::clone(&registry), ServeConfig::default());
        let handle = server.handle();
        assert_eq!(
            handle.submit(FunctionId(42), vec![0.0]).err(),
            Some(ServeError::UnknownFunction(FunctionId(42)))
        );

        // Drive the ticket as a Future by hand (busy poll — the deadline
        // flush completes it in ≤ flush_interval).
        let xs = vec![-2.0, 0.5, f64::NAN, 3.0];
        let want = engine.eval_batch(&xs);
        let mut ticket = handle.submit(id, xs).unwrap();
        let waker = noop_waker();
        let mut cx = Context::from_waker(&waker);
        let got = loop {
            match Pin::new(&mut ticket).poll(&mut cx) {
                Poll::Ready(r) => break r.unwrap(),
                Poll::Pending => thread::sleep(Duration::from_micros(50)),
            }
        };
        assert_bits_eq(&got, &want, "future-polled ticket");
        server.shutdown();
    });
}
