//! The single-precision job lane, under the same scheduling pressure as
//! the f64 battery: concurrent clients, tiny flush windows, mixed
//! precisions in one queue, hot swaps mid-traffic. Everything runs
//! under a watchdog; the headline contract is the tentpole's — an f32
//! job's scatter-back is **bit-identical** to evaluating the tensor
//! directly with the registry's f32 engine, because the request never
//! touches f64 anywhere in the pipeline.

use flexsfu_backend::SfuBackend;
use flexsfu_core::init::uniform_pwl;
use flexsfu_core::{CompiledPwl, CompiledPwlF32, PwlFunction};
use flexsfu_funcs::{Gelu, Tanh};
use flexsfu_serve::testkit::with_watchdog;
use flexsfu_serve::{FunctionRegistry, PwlServer, ServeConfig, ServeError};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

/// A deterministic xorshift stream for sizes/values.
fn rng(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

/// Three functions covering all three f32 engine kernels: linear-scan
/// (≤ 8 segments), bucket line (deep table), search fallback
/// (clustered breakpoints that collapse the bucket window).
fn test_functions() -> Vec<PwlFunction> {
    let shallow = uniform_pwl(&Gelu, 7, (-8.0, 8.0));
    let deep = uniform_pwl(&Tanh, 63, (-8.0, 8.0));
    let clustered = {
        let mut ps: Vec<f64> = (0..30).map(|i| i as f64 * 1e-3).collect();
        ps.insert(0, -500.0);
        ps.push(500.0);
        let vs: Vec<f64> = ps.iter().map(|p| (p * 0.01).cos()).collect();
        PwlFunction::new(ps, vs, 0.5, -0.25).unwrap()
    };
    vec![shallow, deep, clustered]
}

/// A request tensor mixing interior points, breakpoint-exact values and
/// the occasional non-finite, sized `len` — all f32 from birth.
fn request_tensor_f32(next: &mut impl FnMut() -> u64, pwl: &PwlFunction, len: usize) -> Vec<f32> {
    (0..len)
        .map(|_| {
            let r = next();
            match r % 37 {
                0 => f32::NAN,
                1 => f32::INFINITY,
                2 => f32::NEG_INFINITY,
                3 => pwl.breakpoints()[(r >> 8) as usize % pwl.breakpoints().len()] as f32,
                _ => ((r >> 11) as f32 / (1u64 << 53) as f32) * 24.0 - 12.0,
            }
        })
        .collect()
}

/// Bitwise comparison helper (NaN-tolerant: NaN bits must equal).
fn assert_bits_eq_f32(got: &[f32], want: &[f32], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{ctx}: element {i}");
    }
}

/// The headline: 6 client threads × 3 functions × random f32 tensor
/// sizes (including 0-length), tiny flush threshold and deadline so
/// both flush causes race, every result bit-identical to direct
/// `CompiledPwlF32::eval_batch` on the same tensor.
#[test]
fn f32_results_bit_identical_to_direct_f32_eval() {
    with_watchdog(60, "f32_results_bit_identical_to_direct_f32_eval", || {
        let functions = test_functions();
        let registry = Arc::new(FunctionRegistry::new());
        let ids: Vec<_> = functions
            .iter()
            .enumerate()
            .map(|(i, f)| registry.register(format!("f{i}"), f))
            .collect();
        let engines: Vec<CompiledPwlF32> = functions
            .iter()
            .map(|f| CompiledPwlF32::from_compiled(&CompiledPwl::from_pwl(f)))
            .collect();
        for (&id, engine) in ids.iter().zip(&engines) {
            assert_eq!(registry.supports_f32(id), Some(true));
            // The registry's f32 reference is the same table we compiled.
            assert_eq!(
                registry.engine_f32(id).unwrap().engine().eval_one(0.37),
                engine.eval_one(0.37)
            );
        }
        let server = PwlServer::start(
            Arc::clone(&registry),
            ServeConfig {
                flush_elements: 48,
                flush_interval: Duration::from_micros(100),
                ..ServeConfig::default()
            },
        );
        let handle = server.handle();

        let clients = 6;
        let requests = 120;
        let barrier = Arc::new(Barrier::new(clients));
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                let handle = handle.clone();
                let functions = functions.clone();
                let engines = engines.clone();
                let ids = ids.clone();
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || {
                    let mut next = rng(c as u64 + 1);
                    barrier.wait();
                    for r in 0..requests {
                        let which = (c + r) % ids.len();
                        let len = (next() % 70) as usize; // includes 0
                        let xs = request_tensor_f32(&mut next, &functions[which], len);
                        let want = engines[which].eval_batch(&xs);
                        let got = handle.submit_f32(ids[which], xs).unwrap().wait().unwrap();
                        assert_bits_eq_f32(&got, &want, &format!("client {c} request {r}"));
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        server.shutdown();
    });
}

/// f64 and f32 jobs of the *same* function share its queue accounting
/// and flush policy but flush in separate units: interleaved
/// submissions of both precisions each come back bit-identical to
/// their own precision's direct eval, and the function's stats counter
/// sees every element of both.
#[test]
fn mixed_precision_traffic_stays_per_precision_exact() {
    with_watchdog(
        60,
        "mixed_precision_traffic_stays_per_precision_exact",
        || {
            let pwl = uniform_pwl(&Gelu, 31, (-8.0, 8.0));
            let engine64 = CompiledPwl::from_pwl(&pwl);
            let engine32 = CompiledPwlF32::from_compiled(&engine64);
            let registry = Arc::new(FunctionRegistry::new());
            let id = registry.register("gelu", &pwl);
            let server = PwlServer::start(
                Arc::clone(&registry),
                ServeConfig {
                    flush_elements: 64,
                    flush_interval: Duration::from_micros(100),
                    ..ServeConfig::default()
                },
            );
            let handle = server.handle();

            let mut next = rng(7);
            let mut total_elems = 0u64;
            let mut tickets64 = Vec::new();
            let mut tickets32 = Vec::new();
            for r in 0..200 {
                let len = (next() % 40) as usize;
                total_elems += len as u64;
                if r % 2 == 0 {
                    let xs: Vec<f64> = (0..len)
                        .map(|_| ((next() >> 11) as f64 / (1u64 << 53) as f64) * 16.0 - 8.0)
                        .collect();
                    let want: Vec<f64> = {
                        use flexsfu_core::PwlEvaluator;
                        engine64.eval_batch(&xs)
                    };
                    tickets64.push((handle.submit(id, xs).unwrap(), want));
                } else {
                    let xs = request_tensor_f32(&mut next, &pwl, len);
                    let want = engine32.eval_batch(&xs);
                    tickets32.push((handle.submit_f32(id, xs).unwrap(), want));
                }
            }
            for (i, (t, want)) in tickets64.into_iter().enumerate() {
                let got = t.wait().unwrap();
                assert_eq!(got.len(), want.len(), "f64 request {i}: length");
                for (j, (g, w)) in got.iter().zip(&want).enumerate() {
                    assert_eq!(g.to_bits(), w.to_bits(), "f64 request {i} element {j}");
                }
            }
            for (i, (t, want)) in tickets32.into_iter().enumerate() {
                let got = t.wait().unwrap();
                assert_bits_eq_f32(&got, &want, &format!("f32 request {i}"));
            }
            server.shutdown();
            // Both precisions' flushes land in one per-function counter.
            let stats = registry.backend_stats(id).unwrap();
            assert_eq!(stats.elems, total_elems, "stats count both precisions");
        },
    );
}

/// A backend without an f32 lane rejects f32 jobs **at admission** with
/// `PrecisionUnsupported` — blocking and non-blocking submits alike —
/// while its f64 service is untouched.
#[test]
fn backend_without_f32_lane_rejects_at_admission() {
    with_watchdog(30, "backend_without_f32_lane_rejects_at_admission", || {
        let registry = Arc::new(FunctionRegistry::new());
        let id = registry
            .register_with_backend(
                "tanh",
                &uniform_pwl(&Tanh, 15, (-8.0, 8.0)),
                Arc::new(SfuBackend::fp16(16)),
            )
            .unwrap();
        assert_eq!(registry.supports_f32(id), Some(false));
        assert_eq!(registry.supports_f32(flexsfu_serve::FunctionId(9)), None);
        let server = PwlServer::start(Arc::clone(&registry), ServeConfig::default());
        let handle = server.handle();
        assert_eq!(
            handle.submit_f32(id, vec![0.5f32]).err(),
            Some(ServeError::PrecisionUnsupported(id))
        );
        assert_eq!(
            handle.try_submit_f32(id, vec![0.5f32]).err(),
            Some(ServeError::PrecisionUnsupported(id))
        );
        // An unknown id still reports UnknownFunction, not precision.
        assert_eq!(
            handle
                .submit_f32(flexsfu_serve::FunctionId(9), vec![0.5f32])
                .err(),
            Some(ServeError::UnknownFunction(flexsfu_serve::FunctionId(9)))
        );
        // The f64 lane is unaffected.
        let ys = handle.submit(id, vec![0.5f64]).unwrap().wait().unwrap();
        assert_eq!(ys.len(), 1);
        server.shutdown();
    });
}

/// Publishing a new table swaps **both** precisions atomically: after
/// the publish returns, a fresh f32 submission evaluates the new
/// table's f32 form; an `engine_f32` snapshot taken before keeps
/// evaluating the old one.
#[test]
fn publish_swaps_the_f32_engine_with_the_f64_one() {
    with_watchdog(30, "publish_swaps_the_f32_engine_with_the_f64_one", || {
        let gelu = uniform_pwl(&Gelu, 15, (-8.0, 8.0));
        let tanh = uniform_pwl(&Tanh, 15, (-8.0, 8.0));
        let registry = Arc::new(FunctionRegistry::new());
        let id = registry.register("f", &gelu);
        let server = PwlServer::start(Arc::clone(&registry), ServeConfig::default());
        let handle = server.handle();

        let old32 = registry.engine_f32(id).unwrap();
        let xs: Vec<f32> = (0..64).map(|i| i as f32 * 0.2 - 6.0).collect();
        let want_old = CompiledPwlF32::from_compiled(&CompiledPwl::from_pwl(&gelu)).eval_batch(&xs);
        let got = handle.submit_f32(id, xs.clone()).unwrap().wait().unwrap();
        assert_bits_eq_f32(&got, &want_old, "pre-publish");

        registry.publish(id, CompiledPwl::from_pwl(&tanh)).unwrap();
        let want_new = CompiledPwlF32::from_compiled(&CompiledPwl::from_pwl(&tanh)).eval_batch(&xs);
        let got = handle.submit_f32(id, xs.clone()).unwrap().wait().unwrap();
        assert_bits_eq_f32(&got, &want_new, "post-publish");
        // The pre-publish snapshot still evaluates the old table.
        assert_bits_eq_f32(&old32.eval_batch(&xs), &want_old, "snapshot");
        server.shutdown();
    });
}

/// The f32 ticket is a Future too, and shutdown drains queued f32 jobs
/// instead of discarding them.
#[test]
fn f32_future_interface_and_shutdown_drain() {
    with_watchdog(30, "f32_future_interface_and_shutdown_drain", || {
        use flexsfu_serve::testkit::noop_waker;
        use std::future::Future;
        use std::pin::Pin;
        use std::task::{Context, Poll};

        let pwl = uniform_pwl(&Gelu, 7, (-8.0, 8.0));
        let engine = CompiledPwlF32::from_compiled(&CompiledPwl::from_pwl(&pwl));
        let registry = Arc::new(FunctionRegistry::new());
        let id = registry.register("gelu", &pwl);
        let server = PwlServer::start(Arc::clone(&registry), ServeConfig::default());
        let handle = server.handle();

        let xs = vec![-2.0f32, 0.5, f32::NAN, 3.0];
        let want = engine.eval_batch(&xs);
        let mut ticket = handle.submit_f32(id, xs).unwrap();
        let waker = noop_waker();
        let mut cx = Context::from_waker(&waker);
        let got = loop {
            match Pin::new(&mut ticket).poll(&mut cx) {
                Poll::Ready(r) => break r.unwrap(),
                Poll::Pending => thread::sleep(Duration::from_micros(50)),
            }
        };
        assert_bits_eq_f32(&got, &want, "future-polled f32 ticket");

        // Park a job behind a never-expiring deadline, then shut down:
        // the final drain must still complete it.
        registry
            .set_policy(
                id,
                Some(flexsfu_serve::FlushPolicy {
                    max_elems: usize::MAX,
                    deadline: Duration::MAX,
                }),
            )
            .unwrap();
        let xs = vec![1.0f32, -1.0];
        let want = engine.eval_batch(&xs);
        let ticket = handle.submit_f32(id, xs).unwrap();
        server.shutdown();
        assert_bits_eq_f32(&ticket.wait().unwrap(), &want, "drained at shutdown");
        assert_eq!(
            handle.submit_f32(id, vec![0.0f32]).err(),
            Some(ServeError::ShuttingDown)
        );
    });
}
