//! Property battery for the workload simulator and the trace codec.
//!
//! The contracts under test are the ones the adaptive-retuning loop
//! leans on:
//!
//! * a [`WorkloadSpec`] is a pure function of its seed — two runs
//!   encode to bit-identical bytes,
//! * record → replay is the identity: `decode(encode(t)) == t`, down
//!   to payload bit patterns, and re-encoding reproduces the bytes,
//! * **every** strict prefix of a valid trace is rejected with the
//!   typed [`TraceError::Truncated`] — no partial parse ever
//!   succeeds,
//! * arbitrary and single-byte-corrupted inputs never panic the
//!   decoder: they decode, or they fail with a typed error.

use flexsfu_traffic::arrival::ArrivalProcess;
use flexsfu_traffic::sampler::InputSampler;
use flexsfu_traffic::sim::{simulate, FunctionLoad, SamplerShift, WorkloadSpec};
use flexsfu_traffic::trace::{Trace, TraceError, TRACE_MAGIC, TRACE_VERSION};
use proptest::prelude::*;

/// Decodes two sampled words into a small-but-varied workload spec:
/// `sel` picks the arrival process and whether a mid-run shift exists,
/// `seed` drives everything else. Requests stay tiny so a 128-case run
/// finishes fast.
fn spec_from(seed: u64, sel: u8) -> WorkloadSpec {
    let arrivals = match sel % 3 {
        0 => ArrivalProcess::Poisson { rate_hz: 2e5 },
        1 => ArrivalProcess::OnOff {
            rate_hz: 4e5,
            mean_on_s: 0.0005,
            mean_off_s: 0.001,
            pareto_alpha: 1.4,
        },
        _ => ArrivalProcess::Diurnal {
            base_hz: 5e4,
            peak_hz: 4e5,
            period_s: 0.002,
        },
    };
    let shifts = if sel & 4 != 0 {
        vec![SamplerShift {
            at_ns: 400_000,
            function: "gelu".into(),
            sampler: InputSampler::Uniform { lo: 5.0, hi: 8.0 },
        }]
    } else {
        vec![]
    };
    WorkloadSpec {
        seed,
        arrivals,
        functions: vec![
            FunctionLoad {
                name: "gelu".into(),
                weight: 2.0,
                elems: (1, 12),
                sampler: InputSampler::Gaussian {
                    mean: 0.0,
                    std: 2.5,
                    clamp: (-8.0, 8.0),
                },
            },
            FunctionLoad {
                name: "exp".into(),
                weight: 1.0,
                elems: (4, 8),
                sampler: InputSampler::SoftmaxLogits {
                    temp: 3.0,
                    floor: -10.0,
                },
            },
        ],
        shifts,
    }
}

const HORIZON_NS: u64 = 1_000_000;
const MAX_EVENTS: usize = 48;

proptest! {
    /// Same spec, same bytes: the simulator consults nothing but its
    /// seeded RNG, so two runs are bit-identical through the codec.
    #[test]
    fn same_seed_produces_bit_identical_traces(seed in 0u64..u64::MAX, sel in 0u8..8) {
        let a = simulate(&spec_from(seed, sel), HORIZON_NS, MAX_EVENTS);
        let b = simulate(&spec_from(seed, sel), HORIZON_NS, MAX_EVENTS);
        prop_assert_eq!(a.encode(), b.encode());
    }

    /// Record → replay is the identity, and the encoding is canonical:
    /// decoding and re-encoding reproduces the bytes exactly.
    #[test]
    fn encode_decode_round_trip_is_identity(seed in 0u64..u64::MAX, sel in 0u8..8) {
        let t = simulate(&spec_from(seed, sel), HORIZON_NS, MAX_EVENTS);
        let bytes = t.encode();
        let back = Trace::decode(&bytes).expect("own encoding must decode");
        prop_assert_eq!(&back, &t);
        // Payload bits, not just values.
        for (ea, eb) in back.events.iter().zip(&t.events) {
            for (a, b) in ea.payload.iter().zip(&eb.payload) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        prop_assert_eq!(back.encode(), bytes);
    }

    /// Every strict prefix of a valid trace fails typed — the header
    /// carries explicit counts, so a cut anywhere is detectable and
    /// reported as `Truncated`, never a panic, never a partial success.
    #[test]
    fn every_strict_prefix_is_rejected_as_truncated(seed in 0u64..u64::MAX, sel in 0u8..8) {
        let bytes = simulate(&spec_from(seed, sel), HORIZON_NS, 16).encode();
        for cut in 0..bytes.len() {
            match Trace::decode(&bytes[..cut]) {
                Err(TraceError::Truncated { needed, have }) => {
                    prop_assert!(have < needed, "cut {cut}: have {have} >= needed {needed}");
                }
                other => prop_assert!(false, "cut {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    /// The decoder is total on arbitrary bytes: anything either decodes
    /// or returns a typed error. (The interesting paths start after a
    /// valid magic+version, so half the cases get that prefix grafted
    /// on.)
    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(
        raw in proptest::collection::vec(0u8..=255, 0..192),
        graft in 0u8..2,
    ) {
        let bytes = if graft == 1 {
            let mut b = TRACE_MAGIC.to_vec();
            b.extend_from_slice(&TRACE_VERSION.to_le_bytes());
            b.extend_from_slice(&raw);
            b
        } else {
            raw
        };
        // Returning at all is the property; both outcomes are legal.
        let _ = Trace::decode(&bytes);
    }

    /// Single-byte corruption never panics, and when the decoder does
    /// accept the mutated bytes, the canonical re-encoding reproduces
    /// them exactly (the flip landed in payload bits, which the format
    /// preserves verbatim).
    #[test]
    fn single_byte_corruption_is_decoded_or_rejected_typed(
        seed in 0u64..u64::MAX,
        sel in 0u8..8,
        pos_frac in 0u32..10_000,
        flip in 1u8..=255,
    ) {
        let mut bytes = simulate(&spec_from(seed, sel), HORIZON_NS, 16).encode();
        let pos = (pos_frac as usize * bytes.len()) / 10_000;
        bytes[pos] ^= flip;
        // Typed rejection is equally fine; acceptance must round-trip.
        if let Ok(t) = Trace::decode(&bytes) {
            prop_assert_eq!(t.encode(), bytes);
        }
    }
}
