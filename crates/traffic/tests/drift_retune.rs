//! Drift-injection battery: the detect → retune → hot-swap loop under
//! live serving traffic, pinned deterministic.
//!
//! Three escalating scenarios, all under the serve testkit watchdog:
//!
//! 1. a **stable** workload never spuriously retunes — the engine
//!    pointer is untouched end to end,
//! 2. an injected **step change** fires the detector within a bounded
//!    number of round-flushes, a weighted retune publishes, and the
//!    post-swap serving results are bit-identical to a freshly tuned
//!    engine built from the same observed window,
//! 3. the **end-to-end acceptance** run: a recorded trace with a
//!    mid-run shift drives the whole loop with zero lost jobs, and
//!    replaying the encoded trace into a fresh deployment reproduces
//!    the identical decision sequence — scores, winners, checksums —
//!    bit for bit.

use flexsfu_core::init::uniform_pwl;
use flexsfu_core::PwlEvaluator;
use flexsfu_obs::{
    labeled, AssembledTrace, Clock, ManualClock, MemorySink, MetricsRegistry, SampleRate, Span,
    SpanRecorder, Stage, TelemetryBatch, TelemetryExporter,
};
use flexsfu_serve::testkit::with_watchdog;
use flexsfu_serve::{
    FunctionId, FunctionRegistry, InputHistogramSnapshot, PwlServer, ServeConfig, ServeObs,
    INPUT_HIST_BUCKETS,
};
use flexsfu_shard::{RouterConfig, ShardRouter};
use flexsfu_traffic::arrival::ArrivalProcess;
use flexsfu_traffic::retune::{
    AdaptiveRetuner, RetuneEvent, RetunePolicy, M_DRIFT_SCORE, M_RETUNES, M_RETUNE_FAILURES,
};
use flexsfu_traffic::sampler::InputSampler;
use flexsfu_traffic::sim::{replay_rounds, simulate, FunctionLoad, SamplerShift, WorkloadSpec};
use flexsfu_traffic::trace::Trace;
use flexsfu_traffic::ReplayReport;
use flexsfu_tune::{tune_named_weighted, GridWeights, TuneBudget};
use std::sync::Arc;

/// An always-feasible policy over the quick sweep: the retune itself
/// can never fail on budget grounds, so every `Failed` event in these
/// tests is a real defect.
fn policy() -> RetunePolicy {
    RetunePolicy {
        budget: TuneBudget::max_error(f64::INFINITY),
        min_samples: 1024,
        ..RetunePolicy::quick(TuneBudget::max_error(f64::INFINITY))
    }
}

/// Registry + server with `tanh` and `gelu` on plain native tables
/// whose breakpoint span (and therefore histogram range) is `[-8, 8]`.
fn deployment() -> (Arc<FunctionRegistry>, PwlServer) {
    let registry = Arc::new(FunctionRegistry::new());
    registry.register(
        "tanh",
        &uniform_pwl(
            flexsfu_funcs::by_name("tanh").unwrap().as_ref(),
            31,
            (-8.0, 8.0),
        ),
    );
    registry.register(
        "gelu",
        &uniform_pwl(
            flexsfu_funcs::by_name("gelu").unwrap().as_ref(),
            31,
            (-8.0, 8.0),
        ),
    );
    let server = PwlServer::start(Arc::clone(&registry), ServeConfig::default());
    (registry, server)
}

fn centered_tanh_load() -> FunctionLoad {
    FunctionLoad {
        name: "tanh".into(),
        weight: 1.0,
        elems: (8, 16),
        sampler: InputSampler::Gaussian {
            mean: 0.0,
            std: 1.5,
            clamp: (-8.0, 8.0),
        },
    }
}

/// The injected step change: traffic jumps into tanh's saturated tail.
fn tail_shift(at_ns: u64) -> SamplerShift {
    SamplerShift {
        at_ns,
        function: "tanh".into(),
        sampler: InputSampler::Uniform { lo: 5.5, hi: 7.8 },
    }
}

#[test]
fn stable_workload_never_spuriously_retunes() {
    with_watchdog(120, "stable_workload_never_spuriously_retunes", || {
        let (registry, server) = deployment();
        let id = registry.id_of("tanh").unwrap();
        let handle = server.handle();
        let engine_before = registry.engine(id).unwrap();

        let spec = WorkloadSpec {
            seed: 11,
            arrivals: ArrivalProcess::Poisson { rate_hz: 1e5 },
            functions: vec![centered_tanh_load()],
            shifts: vec![],
        };
        let trace = simulate(&spec, u64::MAX, 1600);
        assert_eq!(trace.events.len(), 1600);

        let mut retuner = AdaptiveRetuner::new(Arc::clone(&registry), policy());
        let mut decisions = Vec::new();
        let report = replay_rounds(
            &trace,
            &handle,
            &|name| registry.id_of(name),
            200,
            |round| {
                if round == 0 {
                    // The warm-up round's traffic becomes the reference.
                    retuner.watch_current("tanh").unwrap();
                } else {
                    decisions.extend(retuner.poll());
                }
            },
        )
        .unwrap();

        assert_eq!(report.submitted, 1600);
        assert_eq!(report.completed, 1600);
        assert!(!decisions.is_empty());
        for d in &decisions {
            assert!(
                matches!(
                    d,
                    RetuneEvent::Stable { .. } | RetuneEvent::Insufficient { .. }
                ),
                "spurious action on stable traffic: {d:?}"
            );
        }
        // The engine was never swapped.
        let engine_after = registry.engine(id).unwrap();
        assert!(Arc::ptr_eq(&engine_before, &engine_after));
        server.shutdown();
    });
}

#[test]
fn step_change_fires_bounded_and_swaps_to_the_freshly_tuned_engine() {
    with_watchdog(120, "step_change_fires_bounded_and_swaps", || {
        let (registry, server) = deployment();
        let id = registry.id_of("tanh").unwrap();
        let handle = server.handle();
        let engine_before = registry.engine(id).unwrap();

        // Shift at 6 ms virtual: with Poisson 1e5 Hz that is ~600
        // events in — past the warm-up round, with plenty after.
        let spec = WorkloadSpec {
            seed: 23,
            arrivals: ArrivalProcess::Poisson { rate_hz: 1e5 },
            functions: vec![centered_tanh_load()],
            shifts: vec![tail_shift(6_000_000)],
        };
        let trace = simulate(&spec, u64::MAX, 2400);
        let shift_round = trace
            .events
            .iter()
            .position(|e| e.at_ns >= 6_000_000)
            .expect("shift inside the trace")
            / 200;

        let mut retuner = AdaptiveRetuner::new(Arc::clone(&registry), policy());
        let mut decisions: Vec<(usize, RetuneEvent)> = Vec::new();
        let report = replay_rounds(
            &trace,
            &handle,
            &|name| registry.id_of(name),
            200,
            |round| {
                if round == 0 {
                    retuner.watch_current("tanh").unwrap();
                } else {
                    decisions.extend(retuner.poll().into_iter().map(|e| (round, e)));
                }
            },
        )
        .unwrap();
        assert_eq!(report.submitted, report.completed);

        // No action before the shift could have been observed (the
        // shift round's own drain already contains post-shift mass, so
        // the clean guarantee only covers rounds strictly before it)...
        for (round, d) in decisions.iter().filter(|(r, _)| *r < shift_round) {
            assert!(
                matches!(
                    d,
                    RetuneEvent::Stable { .. } | RetuneEvent::Insufficient { .. }
                ),
                "round {round}: premature {d:?}"
            );
        }
        // ...and the detector fires within a bounded number of rounds
        // after it: the shifted mass needs at most a few round-flushes
        // to dominate the window.
        let fired = decisions
            .iter()
            .find(|(_, d)| matches!(d, RetuneEvent::Retuned { .. }))
            .expect("step change never triggered a retune");
        assert!(
            fired.0 <= shift_round + 4,
            "detection too slow: shift in round {shift_round}, fired in round {}",
            fired.0
        );
        assert!(
            !decisions
                .iter()
                .any(|(_, d)| matches!(d, RetuneEvent::Failed { .. })),
            "retune failed under an unbounded budget"
        );

        // The hot swap happened.
        let engine_after = registry.engine(id).unwrap();
        assert!(!Arc::ptr_eq(&engine_before, &engine_after));

        // Bit-identity with a freshly tuned engine: rebuild the exact
        // observed window from the trace (everything after the watch
        // point up to the firing round — the round barrier guarantees
        // that is precisely what the serving histogram held), re-run
        // the weighted tuner, and compare served results against the
        // fresh table.
        let (fired_round, fired_event) = fired;
        let RetuneEvent::Retuned {
            breakpoints,
            backend,
            ..
        } = fired_event
        else {
            unreachable!()
        };
        let mut window = InputHistogramSnapshot::empty(-8.0, 8.0, INPUT_HIST_BUCKETS);
        for e in &trace.events[200..(fired_round + 1) * 200] {
            window.record_slice(&e.payload);
        }
        let weights = GridWeights::from_histogram(&window);
        let p = policy();
        let fresh = tune_named_weighted("tanh", &p.budget, &p.opts, &weights).unwrap();
        assert_eq!(fresh.winner().config.breakpoints, *breakpoints);
        assert_eq!(
            fresh.winner().config.backend.backend_label(),
            backend.as_str()
        );

        let fresh_engine = fresh.table.compile();
        let probe: Vec<f64> = (0..257).map(|i| -8.0 + 16.0 * i as f64 / 256.0).collect();
        let served = handle.submit(id, probe.clone()).unwrap().wait().unwrap();
        let direct = fresh_engine.eval_batch(&probe);
        for (s, d) in served.iter().zip(&direct) {
            assert_eq!(
                s.to_bits(),
                d.to_bits(),
                "post-swap result differs from fresh tune"
            );
        }
        server.shutdown();
    });
}

/// One full deployment run: build everything from the trace bytes,
/// replay in rounds with the steppable retuner polled at every round
/// barrier, and return the complete observable behaviour.
fn run_deployment(trace_bytes: &[u8]) -> (Vec<RetuneEvent>, ReplayReport, bool) {
    let trace = Trace::decode(trace_bytes).expect("valid trace bytes");
    let (registry, server) = deployment();
    let handle = server.handle();
    let tanh_id = registry.id_of("tanh").unwrap();
    let engine_before = registry.engine(tanh_id).unwrap();
    let mut retuner = AdaptiveRetuner::new(Arc::clone(&registry), policy());
    let mut decisions = Vec::new();
    let report = replay_rounds(
        &trace,
        &handle,
        &|name| registry.id_of(name),
        200,
        |round| {
            if round == 0 {
                retuner.watch_current("tanh").unwrap();
                retuner.watch_current("gelu").unwrap();
            } else {
                decisions.extend(retuner.poll());
            }
        },
    )
    .unwrap();
    let swapped = !Arc::ptr_eq(&engine_before, &registry.engine(tanh_id).unwrap());
    server.shutdown();
    (decisions, report, swapped)
}

#[test]
fn replaying_the_recorded_trace_reproduces_the_decision_sequence() {
    with_watchdog(240, "replaying_reproduces_decision_sequence", || {
        // A two-function workload: gelu stays stable throughout, tanh
        // steps into its saturated tail at 12 ms virtual.
        let spec = WorkloadSpec {
            seed: 4242,
            arrivals: ArrivalProcess::Poisson { rate_hz: 1e5 },
            functions: vec![
                centered_tanh_load(),
                FunctionLoad {
                    name: "gelu".into(),
                    weight: 1.0,
                    elems: (8, 16),
                    sampler: InputSampler::Gaussian {
                        mean: 0.0,
                        std: 2.0,
                        clamp: (-8.0, 8.0),
                    },
                },
            ],
            shifts: vec![tail_shift(12_000_000)],
        };
        let trace = simulate(&spec, u64::MAX, 3200);
        let bytes = trace.encode();

        // Record once, replay twice into fresh deployments.
        let (decisions_a, report_a, swapped_a) = run_deployment(&bytes);
        let (decisions_b, report_b, swapped_b) = run_deployment(&bytes);

        // Zero lost jobs, both runs.
        assert_eq!(report_a.submitted, 3200);
        assert_eq!(report_a.completed, 3200);
        assert_eq!(report_b.submitted, 3200);
        assert_eq!(report_b.completed, 3200);

        // The scenario is non-trivial: the step change retuned tanh...
        assert!(
            decisions_a.iter().any(|d| matches!(
                d,
                RetuneEvent::Retuned { function, .. } if function == "tanh"
            )),
            "acceptance scenario never retuned: {decisions_a:?}"
        );
        assert!(swapped_a, "retune event without a published swap");
        // ...while stable gelu was never touched.
        assert!(decisions_a.iter().all(|d| !matches!(
            d,
            RetuneEvent::Retuned { function, .. } | RetuneEvent::Failed { function, .. }
                if function == "gelu"
        )));

        // The acceptance pin: the full decision sequence — verdict
        // kinds, score bits, winning configurations — and the result
        // checksum replay identically.
        assert_eq!(decisions_a, decisions_b);
        assert_eq!(report_a, report_b);
        assert_eq!(swapped_a, swapped_b);
    });
}

/// One fully observed deployment run on a virtual span clock: a fresh
/// serve stack whose [`SpanRecorder`] stamps from a [`ManualClock`]
/// advanced exactly once per round barrier, with the retuner's
/// decisions metered into the same registry.
#[allow(clippy::type_complexity)]
fn observed_run(
    trace_bytes: &[u8],
) -> (
    Vec<Span>,
    Vec<RetuneEvent>,
    ReplayReport,
    flexsfu_obs::MetricsSnapshot,
) {
    let trace = Trace::decode(trace_bytes).expect("valid trace bytes");
    let registry = Arc::new(FunctionRegistry::new());
    registry.register(
        "tanh",
        &uniform_pwl(
            flexsfu_funcs::by_name("tanh").unwrap().as_ref(),
            31,
            (-8.0, 8.0),
        ),
    );
    registry.register(
        "gelu",
        &uniform_pwl(
            flexsfu_funcs::by_name("gelu").unwrap().as_ref(),
            31,
            (-8.0, 8.0),
        ),
    );
    let metrics = Arc::new(MetricsRegistry::new());
    let clock = Arc::new(ManualClock::new());
    let spans = Arc::new(SpanRecorder::new(
        1024,
        SampleRate(4),
        Arc::clone(&clock) as Arc<dyn Clock>,
    ));
    let server = PwlServer::start_with_obs(
        Arc::clone(&registry),
        ServeConfig::default(),
        ServeObs::new(Arc::clone(&metrics), Arc::clone(&spans)),
    );
    let handle = server.handle();
    let mut retuner =
        AdaptiveRetuner::new(Arc::clone(&registry), policy()).with_metrics(Arc::clone(&metrics));
    let mut decisions = Vec::new();
    let report = replay_rounds(
        &trace,
        &handle,
        &|name| registry.id_of(name),
        200,
        |round| {
            // Every stamp of round k reads k ms of virtual time; the
            // round barrier guarantees all of round k's stamps landed
            // before this advance.
            clock.advance(1_000_000);
            if round == 0 {
                retuner.watch_current("tanh").unwrap();
            } else {
                decisions.extend(retuner.poll());
            }
        },
    )
    .unwrap();
    let mut dump = spans.dump();
    dump.sort_by_key(|s| s.job);
    let snap = metrics.snapshot();
    server.shutdown();
    (dump, decisions, report, snap)
}

#[test]
fn span_stamps_replay_bit_identically_on_a_virtual_clock() {
    with_watchdog(240, "span_stamps_replay_bit_identically", || {
        // The step-change scenario: drift fires mid-trace, so the run
        // exercises retune accounting alongside the span pipeline.
        let spec = WorkloadSpec {
            seed: 23,
            arrivals: ArrivalProcess::Poisson { rate_hz: 1e5 },
            functions: vec![centered_tanh_load()],
            shifts: vec![tail_shift(6_000_000)],
        };
        let bytes = simulate(&spec, u64::MAX, 2400).encode();

        let (spans_a, decisions_a, report_a, snap_a) = observed_run(&bytes);
        let (spans_b, decisions_b, report_b, snap_b) = observed_run(&bytes);

        // Zero lost jobs and the decision sequence replays, as before —
        // now under full observability.
        assert_eq!(report_a.submitted, 2400);
        assert_eq!(report_a.completed, 2400);
        assert_eq!(report_a, report_b);
        assert_eq!(decisions_a, decisions_b);

        // The acceptance pin: every sampled span — job id, function,
        // and all stage stamps — is bit-identical across two fresh
        // deployments of the same trace.
        assert_eq!(spans_a.len(), 2400 / 4, "1-in-4 sampling of the trace");
        assert_eq!(spans_a, spans_b);

        // The stamps really come from the virtual clock: in-process
        // serving runs submit → scatter-back within one frozen round,
        // never reaching the wire, and later rounds stamp later values.
        for s in &spans_a {
            let submit = s.stage(Stage::Submit).expect("submit stamped");
            assert_eq!(submit % 1_000_000, 0, "stamp off the round grid");
            assert_eq!(s.stage(Stage::Enqueue), Some(submit));
            assert_eq!(s.stage(Stage::FlushPlan), Some(submit));
            assert_eq!(s.stage(Stage::BackendEval), Some(submit));
            assert_eq!(s.stage(Stage::ScatterBack), Some(submit));
            assert_eq!(s.stage(Stage::WireWrite), None);
        }
        let first = spans_a.first().unwrap().stage(Stage::Submit).unwrap();
        let last = spans_a.last().unwrap().stage(Stage::Submit).unwrap();
        assert!(last > first, "virtual time never advanced across rounds");

        // The retuner's decisions surfaced as metrics, identically in
        // both runs: the step change retuned (never failed), and the
        // gauge holds the exact score bits of the last scored verdict.
        assert!(snap_a.counter(M_RETUNES).unwrap_or(0) >= 1);
        assert_eq!(snap_a.counter(M_RETUNE_FAILURES).unwrap_or(0), 0);
        assert_eq!(snap_a.counter(M_RETUNES), snap_b.counter(M_RETUNES));
        let gauge_key = labeled(M_DRIFT_SCORE, &[("function", "tanh")]);
        let last_score = decisions_a
            .iter()
            .rev()
            .find_map(|d| match d {
                RetuneEvent::Stable { score, .. }
                | RetuneEvent::Retuned { score, .. }
                | RetuneEvent::Failed { score, .. } => Some(*score),
                RetuneEvent::Insufficient { .. } => None,
            })
            .expect("at least one scored verdict");
        assert_eq!(
            snap_a.gauge(&gauge_key).map(f64::to_bits),
            Some(last_score.to_bits())
        );
        assert_eq!(
            snap_a.gauge(&gauge_key).map(f64::to_bits),
            snap_b.gauge(&gauge_key).map(f64::to_bits)
        );
    });
}

/// One sharded deployment run of a recorded trace: every event routed
/// through an observed [`ShardRouter`] in rounds on a shared
/// [`ManualClock`] frozen within each round, with a steppable
/// [`TelemetryExporter`] on the router's registry ticked into a
/// [`MemorySink`] at every round barrier. Returns the assembled
/// cross-process traces, the pushed batches, and the result checksum.
fn sharded_replay(trace_bytes: &[u8]) -> (Vec<AssembledTrace>, Vec<TelemetryBatch>, u64) {
    let trace = flexsfu_traffic::Trace::decode(trace_bytes).expect("valid trace bytes");
    let clock = Arc::new(ManualClock::new());
    let config = RouterConfig {
        health_interval: std::time::Duration::ZERO,
        observability: true,
        clock: Some(Arc::clone(&clock) as Arc<dyn Clock>),
        trace_sample: SampleRate::ALL,
        overrides: [(FunctionId(0), 0usize), (FunctionId(1), 1usize)].into(),
        ..RouterConfig::default()
    };
    // Registration order pins the ids: tanh = 0 on shard 0, gelu = 1 on
    // shard 1 via the overrides above — both shards serve every run.
    let router = ShardRouter::deploy(2, config, |r| {
        r.register(
            "tanh",
            &uniform_pwl(
                flexsfu_funcs::by_name("tanh").unwrap().as_ref(),
                31,
                (-8.0, 8.0),
            ),
        );
        r.register(
            "gelu",
            &uniform_pwl(
                flexsfu_funcs::by_name("gelu").unwrap().as_ref(),
                31,
                (-8.0, 8.0),
            ),
        );
    })
    .expect("deploy");
    let ids: Vec<FunctionId> = trace
        .functions
        .iter()
        .map(|name| match name.as_str() {
            "tanh" => FunctionId(0),
            "gelu" => FunctionId(1),
            other => panic!("unregistered trace function {other}"),
        })
        .collect();

    let sink = MemorySink::new();
    let store = sink.store();
    let mut exporter = TelemetryExporter::new(
        "router",
        router.router_metrics().expect("observed"),
        Box::new(sink),
    )
    .with_spans(router.router_spans().expect("observed"));

    // Spins until every originated trace carries the serving shard's
    // `WireWrite` stamp — the wire pump stamps it after writing the
    // result frame, so it races the client's result receipt.
    let settle = |expected: usize| {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let traces = router.assemble_traces();
            let done = traces.len() == expected
                && traces.iter().all(|t| {
                    t.spans.len() >= 2
                        && t.spans
                            .iter()
                            .any(|m| m.span.stage(Stage::WireWrite).is_some())
                });
            if done {
                return;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "traces never settled: {} of {expected}",
                traces.len()
            );
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    };

    let mut checksum = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    let mut routed = 0usize;
    for (round, chunk) in trace.events.chunks(12).enumerate() {
        clock.set(1_000_000 * (round as u64 + 1));
        for e in chunk {
            let ys = router
                .eval_f64(ids[e.func as usize], &e.payload)
                .expect("routed replay lost a job");
            for y in ys {
                checksum ^= y.to_bits();
                checksum = checksum.wrapping_mul(0x0000_0100_0000_01b3);
            }
            routed += 1;
        }
        settle(routed);
        exporter.tick();
    }
    assert_eq!(routed, trace.events.len(), "every event must route");

    let traces = router.assemble_traces();
    let batches = store.lock().unwrap().clone();
    router.shutdown();
    (traces, batches, checksum)
}

/// The cross-process extension of the span-determinism pin above: two
/// fresh **sharded** deployments replaying the same recorded trace on
/// the same manual-clock schedule assemble bit-identical distributed
/// traces — router stages and shard stages joined — and their push-mode
/// telemetry batches replay bit-for-bit too.
#[test]
fn sharded_replay_assembles_bit_identical_cross_process_traces() {
    with_watchdog(240, "sharded_replay_bit_identical_traces", || {
        let spec = WorkloadSpec {
            seed: 97,
            arrivals: ArrivalProcess::Poisson { rate_hz: 1e5 },
            functions: vec![
                centered_tanh_load(),
                FunctionLoad {
                    name: "gelu".into(),
                    weight: 1.0,
                    elems: (4, 12),
                    sampler: InputSampler::Gaussian {
                        mean: 0.0,
                        std: 2.0,
                        clamp: (-8.0, 8.0),
                    },
                },
            ],
            shifts: vec![],
        };
        let bytes = simulate(&spec, u64::MAX, 48).encode();

        let (traces_a, batches_a, sum_a) = sharded_replay(&bytes);
        let (traces_b, batches_b, sum_b) = sharded_replay(&bytes);

        // Zero lost jobs and bit-identical serving results.
        assert_eq!(sum_a, sum_b, "replayed results diverged");

        // Every routed event produced one assembled cross-process trace
        // with the router's root span joined to the serving shard's.
        assert_eq!(traces_a.len(), 48);
        for t in &traces_a {
            assert_eq!(t.spans.len(), 2, "trace {} span count", t.trace_id);
            assert_eq!(t.spans[0].origin, "router");
            assert!(
                t.spans[1].origin.starts_with("shard"),
                "second span must come from a shard"
            );
            assert!(t.is_consistent(), "trace {} stepped backwards", t.trace_id);
        }
        assert!(traces_a.iter().any(|t| t.spans[1].origin == "shard0"));
        assert!(traces_a.iter().any(|t| t.spans[1].origin == "shard1"));

        // The acceptance pin: the *assembled* traces — ids, origins,
        // every stage stamp — replay bit-identically, not just the
        // per-process span sequences.
        assert_eq!(traces_a, traces_b, "assembled traces diverged");

        // And so does the pushed telemetry: one batch per round barrier,
        // monotone sequence numbers, every router span exported exactly
        // once across the watermark-partitioned batches.
        assert_eq!(batches_a.len(), 4, "one batch per round");
        for (i, b) in batches_a.iter().enumerate() {
            assert_eq!(b.origin, "router");
            assert_eq!(b.seq, i as u64);
        }
        let exported: usize = batches_a.iter().map(|b| b.spans.len()).sum();
        assert_eq!(exported, 48, "every router span ships exactly once");
        assert_eq!(batches_a, batches_b, "telemetry batches diverged");
    });
}

#[test]
fn background_retuner_converges_without_losing_jobs() {
    with_watchdog(240, "background_retuner_converges", || {
        let (registry, server) = deployment();
        let id = registry.id_of("tanh").unwrap();
        let handle = server.handle();

        // Warm up the reference window, then hand the loop to a
        // background thread while shifted traffic flows.
        let warm = simulate(
            &WorkloadSpec {
                seed: 7,
                arrivals: ArrivalProcess::Poisson { rate_hz: 1e5 },
                functions: vec![centered_tanh_load()],
                shifts: vec![],
            },
            u64::MAX,
            400,
        );
        let report = replay_rounds(&warm, &handle, &|n| registry.id_of(n), 400, |_| {}).unwrap();
        assert_eq!(report.completed, 400);

        let mut retuner = AdaptiveRetuner::new(Arc::clone(&registry), policy());
        retuner.watch_current("tanh").unwrap();
        let bg = retuner.spawn(std::time::Duration::from_millis(5));

        // Shifted traffic, submitted in rounds while the background
        // loop polls on its own schedule.
        let shifted = simulate(
            &WorkloadSpec {
                seed: 8,
                arrivals: ArrivalProcess::Poisson { rate_hz: 1e5 },
                functions: vec![FunctionLoad {
                    sampler: InputSampler::Uniform { lo: 5.5, hi: 7.8 },
                    ..centered_tanh_load()
                }],
                shifts: vec![],
            },
            u64::MAX,
            2000,
        );
        let engine_before = registry.engine(id).unwrap();
        let report = replay_rounds(&shifted, &handle, &|n| registry.id_of(n), 200, |_| {
            // Give the background thread real time to observe between
            // rounds; the loop itself decides when to act.
            std::thread::sleep(std::time::Duration::from_millis(10));
        })
        .unwrap();
        assert_eq!(report.submitted, 2000);
        assert_eq!(report.completed, 2000);

        // Wait (bounded by the watchdog) for the background loop to
        // have published, then stop it and inspect the log.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        while bg
            .events()
            .iter()
            .all(|e| !matches!(e, RetuneEvent::Retuned { .. }))
        {
            assert!(
                std::time::Instant::now() < deadline,
                "background loop never retuned; events: {:?}",
                bg.events()
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let events = bg.stop();
        assert!(events
            .iter()
            .any(|e| matches!(e, RetuneEvent::Retuned { .. })));
        assert!(!events
            .iter()
            .any(|e| matches!(e, RetuneEvent::Failed { .. })));
        assert!(!Arc::ptr_eq(&engine_before, &registry.engine(id).unwrap()));

        // Post-swap traffic still completes and round-trips cleanly.
        let probe: Vec<f64> = (0..64).map(|i| 5.5 + 0.03 * i as f64).collect();
        let ys = handle.submit(id, probe.clone()).unwrap().wait().unwrap();
        let direct = registry.engine(id).unwrap().engine().eval_batch(&probe);
        for (a, b) in ys.iter().zip(&direct) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        server.shutdown();
    });
}
