//! Seeded arrival processes on the virtual clock.
//!
//! Three request-interarrival models cover the serving regimes the
//! adaptive loop has to survive:
//!
//! * [`ArrivalProcess::Poisson`] — memoryless steady state, the
//!   throughput-benchmark baseline,
//! * [`ArrivalProcess::OnOff`] — bursty, self-similar-ish traffic:
//!   Pareto-distributed on/off phases (heavy-tailed, the classic
//!   source of long-range dependence) with Poisson arrivals inside on
//!   phases,
//! * [`ArrivalProcess::Diurnal`] — a smooth load ramp between a base
//!   and a peak rate, sampled by Lewis–Shedler thinning.
//!
//! All sampling runs on the caller's seeded [`StdRng`], so a given
//! `(process, seed)` pair produces the same arrival instants forever.

use crate::clock::{secs_to_ns, VirtualNs};
use rand::rngs::StdRng;
use rand::Rng;

/// An interarrival model. All rates are in requests per *virtual*
/// second.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant rate.
    Poisson {
        /// Mean arrival rate (requests/s), must be positive and finite.
        rate_hz: f64,
    },
    /// Heavy-tailed on/off bursts: during an *on* phase arrivals are
    /// Poisson at `rate_hz`; phase durations are Pareto with shape
    /// `pareto_alpha` (heavier tails as `alpha → 1`).
    OnOff {
        /// Arrival rate during on phases (requests/s).
        rate_hz: f64,
        /// Mean on-phase duration, seconds.
        mean_on_s: f64,
        /// Mean off-phase duration, seconds.
        mean_off_s: f64,
        /// Pareto shape parameter, must be `> 1` so the mean exists.
        pareto_alpha: f64,
    },
    /// A sinusoidal rate ramp from `base_hz` up to `peak_hz` and back
    /// every `period_s` seconds, starting at the trough.
    Diurnal {
        /// Trough arrival rate (requests/s).
        base_hz: f64,
        /// Peak arrival rate (requests/s), `>= base_hz`.
        peak_hz: f64,
        /// Cycle length, seconds.
        period_s: f64,
    },
}

impl ArrivalProcess {
    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics on non-positive/non-finite rates or durations, or a
    /// Pareto shape `<= 1`.
    pub fn validate(&self) {
        let pos = |v: f64, what: &str| {
            assert!(v > 0.0 && v.is_finite(), "{what} must be positive, got {v}");
        };
        match *self {
            ArrivalProcess::Poisson { rate_hz } => pos(rate_hz, "rate_hz"),
            ArrivalProcess::OnOff {
                rate_hz,
                mean_on_s,
                mean_off_s,
                pareto_alpha,
            } => {
                pos(rate_hz, "rate_hz");
                pos(mean_on_s, "mean_on_s");
                pos(mean_off_s, "mean_off_s");
                assert!(
                    pareto_alpha > 1.0 && pareto_alpha.is_finite(),
                    "pareto_alpha must exceed 1 for a finite mean, got {pareto_alpha}"
                );
            }
            ArrivalProcess::Diurnal {
                base_hz,
                peak_hz,
                period_s,
            } => {
                pos(base_hz, "base_hz");
                pos(peak_hz, "peak_hz");
                pos(period_s, "period_s");
                assert!(
                    peak_hz >= base_hz,
                    "peak_hz {peak_hz} below base_hz {base_hz}"
                );
            }
        }
    }
}

/// Stateful arrival generator: owns the phase bookkeeping an
/// [`ArrivalProcess`] needs between draws.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    /// On/off bookkeeping: current phase end, and whether it is an on
    /// phase. `None` until the first draw.
    phase: Option<(VirtualNs, bool)>,
}

/// Exponential interarrival sample, seconds.
fn sample_exp(rng: &mut StdRng, rate_hz: f64) -> f64 {
    // u ∈ [0, 1) so 1 − u ∈ (0, 1]: ln never sees zero.
    let u: f64 = rng.gen_range(0.0..1.0);
    -(1.0 - u).ln() / rate_hz
}

/// Pareto duration sample with the given mean, seconds.
fn sample_pareto(rng: &mut StdRng, mean_s: f64, alpha: f64) -> f64 {
    // mean = scale · α/(α−1)  ⇒  scale = mean · (α−1)/α.
    let scale = mean_s * (alpha - 1.0) / alpha;
    let u: f64 = rng.gen_range(0.0..1.0);
    scale * (1.0 - u).powf(-1.0 / alpha)
}

impl ArrivalGen {
    /// Starts a generator for `process`.
    ///
    /// # Panics
    ///
    /// Panics if the process parameters are invalid
    /// ([`ArrivalProcess::validate`]).
    pub fn new(process: ArrivalProcess) -> Self {
        process.validate();
        Self {
            process,
            phase: None,
        }
    }

    /// The next arrival instant strictly after `now`. Draws from `rng`
    /// only — same `(process, rng state, now)` always yields the same
    /// instant.
    pub fn next_after(&mut self, now: VirtualNs, rng: &mut StdRng) -> VirtualNs {
        match self.process {
            ArrivalProcess::Poisson { rate_hz } => {
                now.saturating_add(secs_to_ns(sample_exp(rng, rate_hz)))
            }
            ArrivalProcess::OnOff {
                rate_hz,
                mean_on_s,
                mean_off_s,
                pareto_alpha,
            } => {
                let mut t = now;
                let (mut phase_end, mut on) = self.phase.unwrap_or((0, false));
                loop {
                    if !on {
                        // Skip the remainder of the off phase, then open
                        // an on phase.
                        t = t.max(phase_end);
                        phase_end = t.saturating_add(secs_to_ns(sample_pareto(
                            rng,
                            mean_on_s,
                            pareto_alpha,
                        )));
                        on = true;
                    }
                    let candidate = t.saturating_add(secs_to_ns(sample_exp(rng, rate_hz)));
                    if candidate < phase_end {
                        self.phase = Some((phase_end, on));
                        return candidate;
                    }
                    // The on phase ended before the next arrival: go
                    // dark for a Pareto off phase and retry.
                    t = phase_end;
                    phase_end =
                        t.saturating_add(secs_to_ns(sample_pareto(rng, mean_off_s, pareto_alpha)));
                    on = false;
                }
            }
            ArrivalProcess::Diurnal {
                base_hz,
                peak_hz,
                period_s,
            } => {
                // Lewis–Shedler thinning against the peak rate.
                let mut t = now;
                loop {
                    t = t.saturating_add(secs_to_ns(sample_exp(rng, peak_hz)));
                    let phase = (t as f64 / 1e9) / period_s;
                    let rate = base_hz
                        + (peak_hz - base_hz)
                            * 0.5
                            * (1.0 - (2.0 * std::f64::consts::PI * phase).cos());
                    let u: f64 = rng.gen_range(0.0..1.0);
                    if u < rate / peak_hz {
                        return t;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn arrivals(process: ArrivalProcess, seed: u64, n: usize) -> Vec<VirtualNs> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gen = ArrivalGen::new(process);
        let mut t = 0;
        (0..n)
            .map(|_| {
                t = gen.next_after(t, &mut rng);
                t
            })
            .collect()
    }

    #[test]
    fn all_processes_are_strictly_increasing_and_seed_deterministic() {
        for p in [
            ArrivalProcess::Poisson { rate_hz: 1e4 },
            ArrivalProcess::OnOff {
                rate_hz: 1e4,
                mean_on_s: 0.01,
                mean_off_s: 0.02,
                pareto_alpha: 1.5,
            },
            ArrivalProcess::Diurnal {
                base_hz: 1e3,
                peak_hz: 1e4,
                period_s: 0.5,
            },
        ] {
            let a = arrivals(p.clone(), 42, 500);
            assert!(a.windows(2).all(|w| w[0] < w[1]), "{p:?} not increasing");
            assert_eq!(a, arrivals(p.clone(), 42, 500), "{p:?} not deterministic");
            assert_ne!(a, arrivals(p, 43, 500), "seed ignored");
        }
    }

    #[test]
    fn poisson_mean_rate_is_roughly_right() {
        let a = arrivals(ArrivalProcess::Poisson { rate_hz: 1e5 }, 7, 20_000);
        let span_s = *a.last().unwrap() as f64 / 1e9;
        let rate = a.len() as f64 / span_s;
        assert!(
            (rate - 1e5).abs() / 1e5 < 0.05,
            "empirical rate {rate} far from 1e5"
        );
    }

    #[test]
    fn onoff_produces_bursts() {
        // Burstiness signature: the interarrival coefficient of
        // variation well above the Poisson value of 1.
        let a = arrivals(
            ArrivalProcess::OnOff {
                rate_hz: 1e5,
                mean_on_s: 0.001,
                mean_off_s: 0.01,
                pareto_alpha: 1.3,
            },
            11,
            20_000,
        );
        let gaps: Vec<f64> = a.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv > 2.0, "on/off traffic not bursty: cv {cv}");
    }

    #[test]
    #[should_panic(expected = "pareto_alpha")]
    fn heavy_tail_without_a_mean_is_rejected() {
        ArrivalGen::new(ArrivalProcess::OnOff {
            rate_hz: 1.0,
            mean_on_s: 1.0,
            mean_off_s: 1.0,
            pareto_alpha: 1.0,
        });
    }
}
