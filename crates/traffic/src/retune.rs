//! The online adaptive retuning loop.
//!
//! An [`AdaptiveRetuner`] watches functions in a live
//! [`FunctionRegistry`]. Each [`AdaptiveRetuner::poll`]:
//!
//! 1. drains the function's windowed input histogram
//!    ([`FunctionRegistry::drain_input_histogram`]) and folds it into a
//!    running live window,
//! 2. scores the window against the tuning-time reference with the
//!    [`DriftDetector`],
//! 3. on a [`DriftVerdict::Drifted`] verdict, re-runs the tuner with
//!    error **weighted by the observed histogram**
//!    ([`flexsfu_tune::tune_named_weighted`]) and publishes the winner
//!    through the registry's race-pinned hot swap
//!    ([`FunctionRegistry::publish`]) — traffic keeps flowing, the next
//!    flush picks up the new table,
//! 4. rebases the detector on the drifted window and starts a fresh
//!    one.
//!
//! `poll()` is deliberately **steppable**: it takes no time, reads no
//! clock, and its emitted [`RetuneEvent`] sequence is a pure function
//! of the histogram states it observed — which is exactly what the
//! deterministic-replay battery pins down. [`AdaptiveRetuner::spawn`]
//! wraps the same loop in a background thread for production use.

use crate::drift::{DriftDetector, DriftThreshold, DriftVerdict};
use flexsfu_obs::{labeled, Counter, Gauge, MetricsRegistry};
use flexsfu_serve::{FunctionId, FunctionRegistry, InputHistogramSnapshot};
use flexsfu_tune::{tune_named_weighted, GridWeights, TuneBudget, TuneOptions};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Gauge (per watched function, `function` label): the most recent
/// drift score — the same bits the emitted [`RetuneEvent`] carries.
pub const M_DRIFT_SCORE: &str = "flexsfu_adaptive_drift_score";
/// Counter: retunes that published a new table.
pub const M_RETUNES: &str = "flexsfu_adaptive_retunes_total";
/// Counter: drift-triggered retunes that failed (tune or publish).
pub const M_RETUNE_FAILURES: &str = "flexsfu_adaptive_retune_failures_total";

/// How the retuner reacts to drift.
#[derive(Debug, Clone)]
pub struct RetunePolicy {
    /// Drift score above which a retune fires.
    pub threshold: DriftThreshold,
    /// Minimum live samples before a verdict is attempted.
    pub min_samples: u64,
    /// Budget for the weighted re-tune.
    pub budget: TuneBudget,
    /// Sweep configuration for the weighted re-tune.
    pub opts: TuneOptions,
}

impl RetunePolicy {
    /// Default thresholds over a quick sweep with the given budget.
    pub fn quick(budget: TuneBudget) -> Self {
        Self {
            threshold: DriftThreshold::default(),
            min_samples: 1024,
            budget,
            opts: TuneOptions::quick(),
        }
    }
}

/// One decision the retuner took for one watched function during a
/// poll. The sequence of these is the loop's observable behaviour —
/// the replay battery asserts it reproduces bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub enum RetuneEvent {
    /// Not enough evidence accumulated yet.
    Insufficient {
        /// Function name.
        function: String,
        /// Live samples so far.
        samples: u64,
    },
    /// Live traffic still matches the tuning-time distribution.
    Stable {
        /// Function name.
        function: String,
        /// Drift score.
        score: f64,
    },
    /// Drift detected; a weighted retune ran and its winner was
    /// published.
    Retuned {
        /// Function name.
        function: String,
        /// Drift score that triggered the retune.
        score: f64,
        /// The published winner's breakpoint count.
        breakpoints: usize,
        /// The published winner's backend label.
        backend: String,
    },
    /// Drift detected but the retune or the publish failed; the old
    /// table keeps serving and the window keeps accumulating.
    Failed {
        /// Function name.
        function: String,
        /// Drift score that triggered the attempt.
        score: f64,
        /// What went wrong.
        error: String,
    },
}

/// Errors installing a watch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetuneError {
    /// The registry has no function by that name.
    UnknownFunction(String),
    /// The function is already being watched.
    AlreadyWatched(String),
}

impl std::fmt::Display for RetuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetuneError::UnknownFunction(n) => write!(f, "unknown function {n:?}"),
            RetuneError::AlreadyWatched(n) => write!(f, "{n:?} is already watched"),
        }
    }
}

impl std::error::Error for RetuneError {}

struct Watched {
    id: FunctionId,
    name: String,
    detector: DriftDetector,
    /// Live window accumulated since the last retune (or watch start).
    window: InputHistogramSnapshot,
    /// Published drift score, when the loop is metered.
    score: Option<Arc<Gauge>>,
}

struct RetunerObs {
    metrics: Arc<MetricsRegistry>,
    retunes: Arc<Counter>,
    failures: Arc<Counter>,
}

/// The adaptive retuning loop. See the module docs for the lifecycle.
pub struct AdaptiveRetuner {
    registry: Arc<FunctionRegistry>,
    policy: RetunePolicy,
    watched: Vec<Watched>,
    obs: Option<RetunerObs>,
}

impl AdaptiveRetuner {
    /// A retuner over `registry` with `policy`.
    pub fn new(registry: Arc<FunctionRegistry>, policy: RetunePolicy) -> Self {
        Self {
            registry,
            policy,
            watched: Vec::new(),
            obs: None,
        }
    }

    /// Publishes the loop's decisions into `metrics`: every poll writes
    /// each watched function's drift score to the
    /// [`M_DRIFT_SCORE`]`{function=…}` gauge, and every retune outcome
    /// bumps [`M_RETUNES`] or [`M_RETUNE_FAILURES`]. Pass the registry a
    /// deployment already scrapes (a shard's own registry, say) and the
    /// adaptive loop shows up in the same exposition for free.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        let obs = RetunerObs {
            retunes: metrics.counter(M_RETUNES),
            failures: metrics.counter(M_RETUNE_FAILURES),
            metrics,
        };
        for w in &mut self.watched {
            w.score = Some(score_gauge(&obs.metrics, &w.name));
        }
        self.obs = Some(obs);
        self
    }

    /// Watches `name`, pinning `reference` as the tuning-time input
    /// distribution its live traffic is compared against. The live
    /// window starts empty; any histogram mass the registry already
    /// accumulated is drained away so the watch starts clean.
    ///
    /// # Errors
    ///
    /// [`RetuneError::UnknownFunction`] if the registry does not know
    /// `name`; [`RetuneError::AlreadyWatched`] on a duplicate watch.
    pub fn watch(
        &mut self,
        name: &str,
        reference: InputHistogramSnapshot,
    ) -> Result<(), RetuneError> {
        let id = self
            .registry
            .id_of(name)
            .ok_or_else(|| RetuneError::UnknownFunction(name.to_string()))?;
        if self.watched.iter().any(|w| w.name == name) {
            return Err(RetuneError::AlreadyWatched(name.to_string()));
        }
        let drained = self
            .registry
            .drain_input_histogram(id)
            .expect("id came from this registry");
        let mut window = drained;
        window.clear();
        self.watched.push(Watched {
            id,
            name: name.to_string(),
            detector: DriftDetector::new(reference, self.policy.threshold, self.policy.min_samples),
            window,
            score: self.obs.as_ref().map(|o| score_gauge(&o.metrics, name)),
        });
        Ok(())
    }

    /// Watches `name` against whatever input distribution the registry
    /// has accumulated *right now* — the "trust the warmup traffic"
    /// variant of [`Self::watch`]: the drained histogram becomes the
    /// reference and the live window starts empty.
    ///
    /// # Errors
    ///
    /// As for [`Self::watch`].
    pub fn watch_current(&mut self, name: &str) -> Result<(), RetuneError> {
        let id = self
            .registry
            .id_of(name)
            .ok_or_else(|| RetuneError::UnknownFunction(name.to_string()))?;
        let reference = self
            .registry
            .drain_input_histogram(id)
            .expect("id came from this registry");
        if self.watched.iter().any(|w| w.name == name) {
            return Err(RetuneError::AlreadyWatched(name.to_string()));
        }
        let mut window = reference.clone();
        window.clear();
        self.watched.push(Watched {
            id,
            name: name.to_string(),
            detector: DriftDetector::new(reference, self.policy.threshold, self.policy.min_samples),
            window,
            score: self.obs.as_ref().map(|o| score_gauge(&o.metrics, name)),
        });
        Ok(())
    }

    /// Names currently under watch, in watch order.
    pub fn watched(&self) -> Vec<&str> {
        self.watched.iter().map(|w| w.name.as_str()).collect()
    }

    /// One steppable pass over every watched function: drain, score,
    /// and — on drift — retune and publish. Returns one event per
    /// watched function, in watch order.
    ///
    /// Determinism contract: given the same registry histogram states,
    /// the same events come out (scores bit-equal, winners identical),
    /// because the tuner itself is deterministic.
    pub fn poll(&mut self) -> Vec<RetuneEvent> {
        let mut events = Vec::with_capacity(self.watched.len());
        for w in &mut self.watched {
            if let Some(drained) = self.registry.drain_input_histogram(w.id) {
                w.window.merge(&drained);
            }
            let event = match w.detector.observe(&w.window) {
                DriftVerdict::Insufficient { samples, .. } => RetuneEvent::Insufficient {
                    function: w.name.clone(),
                    samples,
                },
                DriftVerdict::Stable { score } => {
                    if let Some(g) = &w.score {
                        g.set(score);
                    }
                    RetuneEvent::Stable {
                        function: w.name.clone(),
                        score,
                    }
                }
                DriftVerdict::Drifted { score } => {
                    if let Some(g) = &w.score {
                        g.set(score);
                    }
                    let weights = GridWeights::from_histogram(&w.window);
                    let outcome = tune_named_weighted(
                        &w.name,
                        &self.policy.budget,
                        &self.policy.opts,
                        &weights,
                    )
                    .map_err(|e| e.to_string())
                    .and_then(|plan| {
                        self.registry
                            .publish(w.id, plan.table.compile())
                            .map(|_| plan)
                            .map_err(|e| e.to_string())
                    });
                    match outcome {
                        Ok(plan) => {
                            // The drifted window is the new normal.
                            w.detector.rebase(w.window.clone());
                            w.window.clear();
                            if let Some(o) = &self.obs {
                                o.retunes.inc();
                            }
                            RetuneEvent::Retuned {
                                function: w.name.clone(),
                                score,
                                breakpoints: plan.winner().config.breakpoints,
                                backend: plan.winner().config.backend.backend_label().to_string(),
                            }
                        }
                        Err(error) => {
                            if let Some(o) = &self.obs {
                                o.failures.inc();
                            }
                            RetuneEvent::Failed {
                                function: w.name.clone(),
                                score,
                                error,
                            }
                        }
                    }
                }
            };
            events.push(event);
        }
        events
    }

    /// Runs the loop on a background thread, polling every `interval`.
    /// The returned handle collects every emitted event;
    /// [`RetunerHandle::stop`] joins the thread and hands them back.
    pub fn spawn(self, interval: Duration) -> RetunerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let events: Arc<Mutex<Vec<RetuneEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let thread_stop = Arc::clone(&stop);
        let thread_events = Arc::clone(&events);
        let join = std::thread::Builder::new()
            .name("flexsfu-retuner".into())
            .spawn(move || {
                let mut retuner = self;
                while !thread_stop.load(Ordering::Acquire) {
                    let batch = retuner.poll();
                    thread_events
                        .lock()
                        .expect("event log poisoned")
                        .extend(batch);
                    std::thread::park_timeout(interval);
                }
            })
            .expect("spawn retuner thread");
        RetunerHandle { stop, events, join }
    }
}

fn score_gauge(metrics: &MetricsRegistry, name: &str) -> Arc<Gauge> {
    metrics.gauge(&labeled(M_DRIFT_SCORE, &[("function", name)]))
}

/// Handle to a spawned background retuner.
pub struct RetunerHandle {
    stop: Arc<AtomicBool>,
    events: Arc<Mutex<Vec<RetuneEvent>>>,
    join: std::thread::JoinHandle<()>,
}

impl RetunerHandle {
    /// Snapshot of the events emitted so far.
    pub fn events(&self) -> Vec<RetuneEvent> {
        self.events.lock().expect("event log poisoned").clone()
    }

    /// Stops the loop, joins the thread, and returns the full event
    /// log.
    pub fn stop(self) -> Vec<RetuneEvent> {
        self.stop.store(true, Ordering::Release);
        self.join.thread().unpark();
        self.join.join().expect("retuner thread panicked");
        Arc::try_unwrap(self.events)
            .map(|m| m.into_inner().expect("event log poisoned"))
            .unwrap_or_else(|arc| arc.lock().expect("event log poisoned").clone())
    }
}
