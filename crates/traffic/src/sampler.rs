//! Per-function input samplers.
//!
//! A workload is only as realistic as its payloads: softmax `exp`
//! inputs are shifted logits in `(-∞, 0]`, layer-norm `rsqrt`
//! arguments are small positive variances, GELU pre-activations are
//! roughly centred bell shapes. These samplers produce those shapes
//! (parametrically, or empirically by inverting a measured histogram —
//! e.g. one from `flexsfu_nn::stats` or a serving registry's
//! [`flexsfu_serve::InputHistogramSnapshot`]) from the caller's seeded
//! RNG, so payload streams are bit-reproducible.

use rand::rngs::StdRng;
use rand::Rng;

/// A seeded request-payload distribution.
#[derive(Debug, Clone, PartialEq)]
pub enum InputSampler {
    /// Uniform over `[lo, hi)`.
    Uniform {
        /// Lower edge.
        lo: f64,
        /// Upper edge, `> lo`.
        hi: f64,
    },
    /// Gaussian via Box–Muller, clamped into `[clamp.0, clamp.1]` so
    /// payloads stay inside a table's breakpoint span.
    Gaussian {
        /// Mean.
        mean: f64,
        /// Standard deviation, `> 0`.
        std: f64,
        /// Hard clamp applied after sampling.
        clamp: (f64, f64),
    },
    /// Shifted softmax logits: each request draws `len` raw logits
    /// `N(0, temp²)` and subtracts their max, landing every value in
    /// `(-∞, 0]` with exactly one zero per request — the distribution
    /// the attention probe measures.
    SoftmaxLogits {
        /// Raw logit spread (higher ⇒ colder softmax, wider tail).
        temp: f64,
        /// Clamp floor (values below are clamped up), keeps payloads
        /// inside the `exp` table's range.
        floor: f64,
    },
    /// Log-normal positives: `exp(N(mean_log, sigma_log²))`, the shape
    /// of layer-norm variances feeding `rsqrt`, clamped to `[lo, hi]`.
    RsqrtVariance {
        /// Mean of the underlying normal (log-space).
        mean_log: f64,
        /// Std-dev of the underlying normal (log-space), `> 0`.
        sigma_log: f64,
        /// Hard clamp applied after sampling.
        clamp: (f64, f64),
    },
    /// Inverse-CDF sampling from a measured fixed-bucket histogram over
    /// `[lo, hi)`: pick a bucket by mass, then uniform within it.
    Empirical {
        /// Histogram lower edge.
        lo: f64,
        /// Histogram upper edge, `> lo`.
        hi: f64,
        /// Cumulative bucket mass, strictly positive total, last entry
        /// equals the total. Built by [`InputSampler::empirical`].
        cdf: Vec<u64>,
    },
}

/// One standard-normal draw (Box–Muller, two uniforms — fixed RNG
/// consumption per call keeps streams aligned across platforms).
fn sample_standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(0.0..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    // 1 − u1 ∈ (0, 1]: ln never sees zero.
    (-2.0 * (1.0 - u1).ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

impl InputSampler {
    /// Builds an [`InputSampler::Empirical`] from per-bucket counts
    /// over `[lo, hi)`. An all-zero (or empty) histogram carries no
    /// information and degrades to [`InputSampler::Uniform`].
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either edge is non-finite.
    pub fn empirical(lo: f64, hi: f64, counts: &[u64]) -> Self {
        assert!(
            lo < hi && lo.is_finite() && hi.is_finite(),
            "bad empirical range [{lo}, {hi})"
        );
        let mut acc = 0u64;
        let cdf: Vec<u64> = counts
            .iter()
            .map(|&c| {
                acc = acc.checked_add(c).expect("histogram mass overflows u64");
                acc
            })
            .collect();
        if acc == 0 {
            return InputSampler::Uniform { lo, hi };
        }
        InputSampler::Empirical { lo, hi, cdf }
    }

    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics on empty ranges, non-positive spreads, or a malformed
    /// empirical CDF.
    pub fn validate(&self) {
        match self {
            InputSampler::Uniform { lo, hi } => {
                assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad range");
            }
            InputSampler::Gaussian { std, clamp, .. } => {
                assert!(*std > 0.0 && std.is_finite(), "bad std {std}");
                assert!(clamp.0 < clamp.1, "bad clamp {clamp:?}");
            }
            InputSampler::SoftmaxLogits { temp, floor } => {
                assert!(*temp > 0.0 && temp.is_finite(), "bad temp {temp}");
                assert!(*floor < 0.0, "floor must be negative, got {floor}");
            }
            InputSampler::RsqrtVariance {
                sigma_log, clamp, ..
            } => {
                assert!(*sigma_log > 0.0 && sigma_log.is_finite(), "bad sigma");
                assert!(clamp.0 < clamp.1 && clamp.0 > 0.0, "bad clamp {clamp:?}");
            }
            InputSampler::Empirical { lo, hi, cdf } => {
                assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad range");
                assert!(!cdf.is_empty(), "empty empirical cdf");
                assert!(cdf.windows(2).all(|w| w[0] <= w[1]), "cdf not monotone");
                assert!(*cdf.last().unwrap() > 0, "zero-mass empirical cdf");
            }
        }
    }

    /// Draws one request payload of `len` elements. Every value is
    /// finite. Consumes `rng` sequentially, so equal seeds give equal
    /// payload streams.
    pub fn sample(&self, rng: &mut StdRng, len: usize) -> Vec<f64> {
        match self {
            InputSampler::Uniform { lo, hi } => (0..len).map(|_| rng.gen_range(*lo..*hi)).collect(),
            InputSampler::Gaussian { mean, std, clamp } => (0..len)
                .map(|_| (mean + std * sample_standard_normal(rng)).clamp(clamp.0, clamp.1))
                .collect(),
            InputSampler::SoftmaxLogits { temp, floor } => {
                let raw: Vec<f64> = (0..len)
                    .map(|_| temp * sample_standard_normal(rng))
                    .collect();
                let max = raw.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                if !max.is_finite() {
                    return vec![0.0; len];
                }
                raw.iter().map(|&v| (v - max).max(*floor)).collect()
            }
            InputSampler::RsqrtVariance {
                mean_log,
                sigma_log,
                clamp,
            } => (0..len)
                .map(|_| {
                    (mean_log + sigma_log * sample_standard_normal(rng))
                        .exp()
                        .clamp(clamp.0, clamp.1)
                })
                .collect(),
            InputSampler::Empirical { lo, hi, cdf } => {
                let total = *cdf.last().expect("validated non-empty");
                let width = (hi - lo) / cdf.len() as f64;
                (0..len)
                    .map(|_| {
                        let u: u64 = rng.gen_range(0..total);
                        // First bucket whose cumulative mass exceeds u.
                        let b = cdf.partition_point(|&c| c <= u);
                        let frac: f64 = rng.gen_range(0.0..1.0);
                        lo + (b as f64 + frac) * width
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn draws(s: &InputSampler, seed: u64, n: usize) -> Vec<f64> {
        s.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        s.sample(&mut rng, n)
    }

    #[test]
    fn every_sampler_is_finite_and_seed_deterministic() {
        let samplers = [
            InputSampler::Uniform { lo: -8.0, hi: 8.0 },
            InputSampler::Gaussian {
                mean: 0.5,
                std: 2.0,
                clamp: (-8.0, 8.0),
            },
            InputSampler::SoftmaxLogits {
                temp: 3.0,
                floor: -10.0,
            },
            InputSampler::RsqrtVariance {
                mean_log: -1.0,
                sigma_log: 0.8,
                clamp: (1e-6, 16.0),
            },
            InputSampler::empirical(-8.0, 8.0, &[0, 5, 10, 5, 0, 0, 0, 1]),
        ];
        for s in &samplers {
            let a = draws(s, 9, 4096);
            assert!(a.iter().all(|v| v.is_finite()), "{s:?} non-finite");
            assert_eq!(a, draws(s, 9, 4096), "{s:?} not deterministic");
            assert_ne!(a, draws(s, 10, 4096), "{s:?} ignores seed");
        }
    }

    #[test]
    fn softmax_logits_are_nonpositive_with_one_zero_per_request() {
        let s = InputSampler::SoftmaxLogits {
            temp: 2.0,
            floor: -10.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let req = s.sample(&mut rng, 16);
            assert!(req.iter().all(|&v| (-10.0..=0.0).contains(&v)));
            assert_eq!(req.iter().filter(|&&v| v == 0.0).count(), 1);
        }
    }

    #[test]
    fn rsqrt_variances_are_positive() {
        let s = InputSampler::RsqrtVariance {
            mean_log: -2.0,
            sigma_log: 1.0,
            clamp: (1e-6, 16.0),
        };
        assert!(draws(&s, 5, 4096).iter().all(|&v| v >= 1e-6));
    }

    #[test]
    fn empirical_sampling_respects_bucket_mass() {
        // All mass in the top quarter of [-8, 8): samples land in [4, 8).
        let mut counts = vec![0u64; 8];
        counts[6] = 10;
        counts[7] = 30;
        let s = InputSampler::empirical(-8.0, 8.0, &counts);
        let a = draws(&s, 21, 8192);
        assert!(a.iter().all(|&v| (4.0..8.0).contains(&v)));
        // ~3:1 split between the two hot buckets.
        let top = a.iter().filter(|&&v| v >= 6.0).count() as f64 / a.len() as f64;
        assert!((top - 0.75).abs() < 0.05, "top-bucket share {top}");
    }

    #[test]
    fn empty_empirical_degrades_to_uniform() {
        assert_eq!(
            InputSampler::empirical(-1.0, 1.0, &[0, 0, 0]),
            InputSampler::Uniform { lo: -1.0, hi: 1.0 }
        );
    }
}
