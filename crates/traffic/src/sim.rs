//! The workload simulator and the trace→server replay driver.
//!
//! [`simulate`] turns a declarative [`WorkloadSpec`] into a [`Trace`]:
//! one seeded RNG drives arrivals, function choice, request sizing and
//! payload sampling **sequentially**, so a spec is a pure function of
//! its seed — same spec, same trace, bit for bit. Mid-run distribution
//! shifts ([`SamplerShift`]) swap a function's sampler at a virtual
//! instant, which is how the drift-injection batteries create their
//! step changes.
//!
//! [`replay_rounds`] then drives a recorded trace into a live
//! [`flexsfu_serve::ServeHandle`] in deterministic *rounds*: submit a
//! chunk, wait for every ticket, report the round. Because the serving
//! tier records input histograms before a ticket completes, the
//! histogram state at each round boundary is a pure function of the
//! trace prefix — the property that lets an adaptive retuner's decision
//! sequence replay exactly.

use crate::arrival::{ArrivalGen, ArrivalProcess};
use crate::clock::{VirtualClock, VirtualNs};
use crate::sampler::InputSampler;
use crate::trace::{Trace, TraceEvent, MAX_EVENT_ELEMS};
use flexsfu_serve::{FunctionId, ServeError, ServeHandle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One function's share of a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionLoad {
    /// Registry name of the target function.
    pub name: String,
    /// Relative traffic share (any positive scale).
    pub weight: f64,
    /// Inclusive request-length range in elements.
    pub elems: (u32, u32),
    /// Payload distribution.
    pub sampler: InputSampler,
}

/// A scheduled sampler swap: from `at_ns` on, `function`'s payloads
/// come from `sampler` instead.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplerShift {
    /// Virtual instant the shift takes effect.
    pub at_ns: VirtualNs,
    /// Which [`FunctionLoad::name`] shifts.
    pub function: String,
    /// The replacement distribution.
    pub sampler: InputSampler,
}

/// A complete declarative workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Master seed: the only source of randomness in [`simulate`].
    pub seed: u64,
    /// Interarrival model shared by all functions.
    pub arrivals: ArrivalProcess,
    /// The traffic mix.
    pub functions: Vec<FunctionLoad>,
    /// Scheduled distribution shifts, any order.
    pub shifts: Vec<SamplerShift>,
}

impl WorkloadSpec {
    /// Validates the spec.
    ///
    /// # Panics
    ///
    /// Panics on an empty mix, non-positive weights, empty or oversized
    /// length ranges, invalid samplers, or a shift naming an unknown
    /// function.
    pub fn validate(&self) {
        self.arrivals.validate();
        assert!(!self.functions.is_empty(), "workload needs >= 1 function");
        for f in &self.functions {
            assert!(
                f.weight > 0.0 && f.weight.is_finite(),
                "{}: weight must be positive",
                f.name
            );
            assert!(
                f.elems.0 >= 1 && f.elems.0 <= f.elems.1,
                "{}: bad length range {:?}",
                f.name,
                f.elems
            );
            assert!(
                f.elems.1 <= MAX_EVENT_ELEMS,
                "{}: requests above the trace payload cap",
                f.name
            );
            f.sampler.validate();
        }
        for s in &self.shifts {
            assert!(
                self.functions.iter().any(|f| f.name == s.function),
                "shift at {} ns targets unknown function {:?}",
                s.at_ns,
                s.function
            );
            s.sampler.validate();
        }
    }
}

/// Runs the simulator until `horizon_ns` of virtual time has elapsed or
/// `max_events` requests were generated, whichever is first.
///
/// Determinism contract: the returned [`Trace`] is a pure function of
/// `spec` — one sequential RNG seeded from [`WorkloadSpec::seed`]
/// drives every draw in arrival order.
///
/// # Panics
///
/// Panics if the spec fails [`WorkloadSpec::validate`].
pub fn simulate(spec: &WorkloadSpec, horizon_ns: VirtualNs, max_events: usize) -> Trace {
    spec.validate();
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut arrivals = ArrivalGen::new(spec.arrivals.clone());
    let mut clock = VirtualClock::new();

    // Active sampler per function; shifts are applied in time order.
    let mut active: Vec<InputSampler> = spec.functions.iter().map(|f| f.sampler.clone()).collect();
    let mut shifts: Vec<&SamplerShift> = spec.shifts.iter().collect();
    shifts.sort_by_key(|s| s.at_ns);
    let mut next_shift = 0usize;

    let total_weight: f64 = spec.functions.iter().map(|f| f.weight).sum();
    let mut events = Vec::new();
    while events.len() < max_events {
        let t = arrivals.next_after(clock.now(), &mut rng);
        if t > horizon_ns {
            break;
        }
        clock.advance_to(t);
        while next_shift < shifts.len() && shifts[next_shift].at_ns <= t {
            let s = shifts[next_shift];
            let idx = spec
                .functions
                .iter()
                .position(|f| f.name == s.function)
                .expect("validated");
            active[idx] = s.sampler.clone();
            next_shift += 1;
        }
        // Weighted function pick, then length, then payload — a fixed
        // draw order so the stream stays aligned.
        let mut u: f64 = rng.gen_range(0.0..total_weight);
        let mut pick = spec.functions.len() - 1;
        for (i, f) in spec.functions.iter().enumerate() {
            if u < f.weight {
                pick = i;
                break;
            }
            u -= f.weight;
        }
        let f = &spec.functions[pick];
        let len = rng.gen_range(f.elems.0..=f.elems.1) as usize;
        let payload = active[pick].sample(&mut rng, len);
        events.push(TraceEvent {
            at_ns: t,
            func: pick as u32,
            payload,
        });
    }
    Trace {
        functions: spec.functions.iter().map(|f| f.name.clone()).collect(),
        events,
    }
}

/// What [`replay_rounds`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// Requests submitted.
    pub submitted: usize,
    /// Requests whose results came back (always equals `submitted` on
    /// `Ok` — a lost job is an error, not a statistic).
    pub completed: usize,
    /// FNV-1a over every result's bit pattern, in event order — two
    /// replays produced identical outputs iff their checksums match.
    pub checksum: u64,
}

/// Replays `trace` into a serving handle in deterministic rounds of
/// `round` requests: submit the round, wait for **every** ticket, call
/// `on_round`, continue. `resolve` maps trace function names to live
/// [`FunctionId`]s.
///
/// The round barrier is what makes downstream decisions replayable:
/// when `on_round` runs, the serving tier has recorded exactly the
/// payloads of the trace prefix into its input histograms — no more, no
/// less — so anything `on_round` computes from them (drift scores,
/// retune decisions) is a pure function of the trace.
///
/// # Errors
///
/// [`ServeError::UnknownFunction`] if `resolve` returns `None` for a
/// trace function, plus any submission or completion error from the
/// serving tier. Jobs never go silently missing: every submitted
/// ticket is waited on.
pub fn replay_rounds(
    trace: &Trace,
    handle: &ServeHandle,
    resolve: &dyn Fn(&str) -> Option<FunctionId>,
    round: usize,
    mut on_round: impl FnMut(usize),
) -> Result<ReplayReport, ServeError> {
    assert!(round > 0, "round size must be positive");
    let ids: Vec<FunctionId> = trace
        .functions
        .iter()
        .map(|name| resolve(name).ok_or(ServeError::UnknownFunction(FunctionId(u32::MAX))))
        .collect::<Result<_, _>>()?;

    let mut report = ReplayReport {
        submitted: 0,
        completed: 0,
        checksum: 0xcbf2_9ce4_8422_2325, // FNV-1a offset basis
    };
    for (round_idx, chunk) in trace.events.chunks(round).enumerate() {
        let mut tickets = Vec::with_capacity(chunk.len());
        for e in chunk {
            tickets.push(handle.submit(ids[e.func as usize], e.payload.clone())?);
            report.submitted += 1;
        }
        for ticket in tickets {
            let ys = ticket.wait()?;
            report.completed += 1;
            for y in ys {
                report.checksum ^= y.to_bits();
                report.checksum = report.checksum.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        on_round(round_idx);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            seed: 1234,
            arrivals: ArrivalProcess::Poisson { rate_hz: 1e5 },
            functions: vec![
                FunctionLoad {
                    name: "gelu".into(),
                    weight: 3.0,
                    elems: (4, 64),
                    sampler: InputSampler::Gaussian {
                        mean: 0.0,
                        std: 2.0,
                        clamp: (-8.0, 8.0),
                    },
                },
                FunctionLoad {
                    name: "exp".into(),
                    weight: 1.0,
                    elems: (8, 8),
                    sampler: InputSampler::SoftmaxLogits {
                        temp: 3.0,
                        floor: -10.0,
                    },
                },
            ],
            shifts: vec![SamplerShift {
                at_ns: 5_000_000,
                function: "gelu".into(),
                sampler: InputSampler::Uniform { lo: 6.0, hi: 8.0 },
            }],
        }
    }

    #[test]
    fn simulation_is_a_pure_function_of_the_spec() {
        let a = simulate(&spec(), 10_000_000, 10_000);
        let b = simulate(&spec(), 10_000_000, 10_000);
        assert_eq!(a, b);
        assert!(!a.events.is_empty());
        // Different seed, different trace.
        let mut other = spec();
        other.seed = 77;
        assert_ne!(simulate(&other, 10_000_000, 10_000), a);
    }

    #[test]
    fn shifts_take_effect_at_their_instant() {
        let t = simulate(&spec(), 10_000_000, 100_000);
        let gelu = 0u32;
        for e in &t.events {
            if e.func == gelu && e.at_ns >= 5_000_000 {
                assert!(
                    e.payload.iter().all(|&v| (6.0..8.0).contains(&v)),
                    "post-shift gelu payload escaped [6, 8) at {} ns",
                    e.at_ns
                );
            }
        }
        // The shift actually fired (traffic exists on both sides).
        assert!(t
            .events
            .iter()
            .any(|e| e.func == gelu && e.at_ns < 5_000_000));
        assert!(t
            .events
            .iter()
            .any(|e| e.func == gelu && e.at_ns >= 5_000_000));
    }

    #[test]
    fn traffic_mix_follows_weights() {
        let t = simulate(&spec(), 50_000_000, 100_000);
        let gelu = t.events.iter().filter(|e| e.func == 0).count() as f64;
        let share = gelu / t.events.len() as f64;
        assert!((share - 0.75).abs() < 0.03, "gelu share {share}");
    }

    #[test]
    fn horizon_and_event_caps_bound_the_run() {
        let by_events = simulate(&spec(), u64::MAX, 100);
        assert_eq!(by_events.events.len(), 100);
        let by_horizon = simulate(&spec(), 1_000_000, usize::MAX);
        assert!(by_horizon.events.iter().all(|e| e.at_ns <= 1_000_000));
    }

    #[test]
    #[should_panic(expected = "unknown function")]
    fn shift_on_unknown_function_is_rejected() {
        let mut s = spec();
        s.shifts[0].function = "nope".into();
        simulate(&s, 1, 1);
    }
}
