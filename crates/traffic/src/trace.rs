//! Compact binary trace format: record once, replay bit-for-bit.
//!
//! A [`Trace`] is the full workload — every request's virtual arrival
//! time, target function and payload, with payload values stored as raw
//! `f64` bit patterns so a decoded trace is *bitwise* identical to the
//! recorded one. The layout (all integers little-endian):
//!
//! ```text
//! magic "FXTR" | version u16 | nfuncs u32
//! nfuncs × { name_len u16 | name bytes (utf-8) }
//! nevents u64
//! nevents × { at_ns u64 | func u32 | len u32 | len × f64-bits u64 }
//! ```
//!
//! Decoding is strict and total: every malformed input — truncated at
//! any byte, wrong magic, unknown version, oversized payload,
//! out-of-range function index, time running backwards, or trailing
//! garbage — yields a typed [`TraceError`], never a panic.

use crate::clock::VirtualNs;

/// File magic, `b"FXTR"`.
pub const TRACE_MAGIC: [u8; 4] = *b"FXTR";
/// Current (and only) format version.
pub const TRACE_VERSION: u16 = 1;
/// Hard cap on a single event's payload length — rejects absurd
/// allocations from corrupt length fields before any allocation
/// happens.
pub const MAX_EVENT_ELEMS: u32 = 1 << 20;

/// One recorded request.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Virtual arrival instant.
    pub at_ns: VirtualNs,
    /// Index into [`Trace::functions`].
    pub func: u32,
    /// Request payload, preserved bit-for-bit.
    pub payload: Vec<f64>,
}

/// A recorded workload.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Function names, indexed by [`TraceEvent::func`].
    pub functions: Vec<String>,
    /// Events in non-decreasing virtual-time order.
    pub events: Vec<TraceEvent>,
}

/// Everything that can be wrong with trace bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The first four bytes are not [`TRACE_MAGIC`].
    BadMagic([u8; 4]),
    /// A version this decoder does not speak.
    UnsupportedVersion(u16),
    /// The input ended before a declared field.
    Truncated {
        /// Bytes the next field needed.
        needed: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// An event declared a payload above [`MAX_EVENT_ELEMS`].
    OversizedPayload {
        /// Event index.
        index: usize,
        /// Declared element count.
        elems: u32,
    },
    /// An event referenced a function index outside the name table.
    BadFunctionIndex {
        /// Event index.
        index: usize,
        /// The out-of-range function index.
        func: u32,
        /// Number of declared functions.
        functions: u32,
    },
    /// Virtual time ran backwards between consecutive events.
    NonMonotoneTime {
        /// Index of the offending event.
        index: usize,
        /// The previous event's timestamp.
        prev: VirtualNs,
        /// The offending timestamp.
        now: VirtualNs,
    },
    /// A function name was not valid UTF-8.
    BadFunctionName {
        /// Index in the name table.
        index: usize,
    },
    /// Bytes remained after the last declared event.
    TrailingBytes(usize),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic(m) => write!(f, "bad trace magic {m:02x?}"),
            TraceError::UnsupportedVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::Truncated { needed, have } => {
                write!(f, "trace truncated: needed {needed} bytes, have {have}")
            }
            TraceError::OversizedPayload { index, elems } => write!(
                f,
                "event {index} declares {elems} elements (cap {MAX_EVENT_ELEMS})"
            ),
            TraceError::BadFunctionIndex {
                index,
                func,
                functions,
            } => write!(f, "event {index} references function {func} of {functions}"),
            TraceError::NonMonotoneTime { index, prev, now } => {
                write!(f, "event {index} at {now} ns precedes {prev} ns")
            }
            TraceError::BadFunctionName { index } => {
                write!(f, "function name {index} is not valid UTF-8")
            }
            TraceError::TrailingBytes(n) => write!(f, "{n} trailing bytes after last event"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Bounds-checked little-endian reader.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        let have = self.buf.len() - self.pos;
        if have < n {
            return Err(TraceError::Truncated { needed: n, have });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, TraceError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, TraceError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, TraceError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

impl Trace {
    /// Serializes to the binary format. Deterministic: equal traces
    /// encode to equal bytes.
    pub fn encode(&self) -> Vec<u8> {
        let payload_bytes: usize = self.events.iter().map(|e| 16 + 8 * e.payload.len()).sum();
        let mut out = Vec::with_capacity(4 + 2 + 4 + 8 + payload_bytes);
        out.extend_from_slice(&TRACE_MAGIC);
        out.extend_from_slice(&TRACE_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.functions.len() as u32).to_le_bytes());
        for name in &self.functions {
            let bytes = name.as_bytes();
            assert!(bytes.len() <= u16::MAX as usize, "function name too long");
            out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
            out.extend_from_slice(bytes);
        }
        out.extend_from_slice(&(self.events.len() as u64).to_le_bytes());
        for e in &self.events {
            assert!(
                e.payload.len() <= MAX_EVENT_ELEMS as usize,
                "payload exceeds the format cap"
            );
            out.extend_from_slice(&e.at_ns.to_le_bytes());
            out.extend_from_slice(&e.func.to_le_bytes());
            out.extend_from_slice(&(e.payload.len() as u32).to_le_bytes());
            for &v in &e.payload {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        out
    }

    /// Decodes trace bytes, validating everything the format promises.
    ///
    /// # Errors
    ///
    /// A [`TraceError`] describing the first defect found. Arbitrary
    /// input never panics and never allocates more than the declared,
    /// capped sizes.
    pub fn decode(bytes: &[u8]) -> Result<Self, TraceError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        let magic: [u8; 4] = r.take(4)?.try_into().unwrap();
        if magic != TRACE_MAGIC {
            return Err(TraceError::BadMagic(magic));
        }
        let version = r.u16()?;
        if version != TRACE_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let nfuncs = r.u32()?;
        let mut functions = Vec::new();
        for index in 0..nfuncs as usize {
            let len = r.u16()? as usize;
            let raw = r.take(len)?;
            let name =
                std::str::from_utf8(raw).map_err(|_| TraceError::BadFunctionName { index })?;
            functions.push(name.to_string());
        }
        let nevents = r.u64()?;
        let mut events = Vec::new();
        let mut prev = 0u64;
        for index in 0..nevents as usize {
            let at_ns = r.u64()?;
            if at_ns < prev {
                return Err(TraceError::NonMonotoneTime {
                    index,
                    prev,
                    now: at_ns,
                });
            }
            prev = at_ns;
            let func = r.u32()?;
            if func >= nfuncs {
                return Err(TraceError::BadFunctionIndex {
                    index,
                    func,
                    functions: nfuncs,
                });
            }
            let len = r.u32()?;
            if len > MAX_EVENT_ELEMS {
                return Err(TraceError::OversizedPayload { index, elems: len });
            }
            let raw = r.take(8 * len as usize)?;
            let payload: Vec<f64> = raw
                .chunks_exact(8)
                .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
                .collect();
            events.push(TraceEvent {
                at_ns,
                func,
                payload,
            });
        }
        if r.pos != bytes.len() {
            return Err(TraceError::TrailingBytes(bytes.len() - r.pos));
        }
        Ok(Self { functions, events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace {
            functions: vec!["gelu".into(), "exp".into()],
            events: vec![
                TraceEvent {
                    at_ns: 10,
                    func: 0,
                    payload: vec![0.5, -1.25, f64::MIN_POSITIVE],
                },
                TraceEvent {
                    at_ns: 10, // equal timestamps are legal
                    func: 1,
                    payload: vec![-3.0],
                },
                TraceEvent {
                    at_ns: 99,
                    func: 0,
                    payload: vec![],
                },
            ],
        }
    }

    #[test]
    fn round_trip_is_bitwise_identity() {
        let t = sample_trace();
        let bytes = t.encode();
        let back = Trace::decode(&bytes).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn every_strict_prefix_is_rejected_typed() {
        let bytes = sample_trace().encode();
        for n in 0..bytes.len() {
            let err = Trace::decode(&bytes[..n]).unwrap_err();
            assert!(
                matches!(err, TraceError::Truncated { .. }),
                "prefix {n}: {err:?}"
            );
        }
    }

    #[test]
    fn header_defects_are_named() {
        let good = sample_trace().encode();

        let mut bad = good.clone();
        bad[0] = b'Z';
        assert!(matches!(
            Trace::decode(&bad).unwrap_err(),
            TraceError::BadMagic(_)
        ));

        let mut bad = good.clone();
        bad[4] = 0xFF;
        assert!(matches!(
            Trace::decode(&bad).unwrap_err(),
            TraceError::UnsupportedVersion(_)
        ));

        let mut bad = good.clone();
        bad.push(0);
        assert_eq!(
            Trace::decode(&bad).unwrap_err(),
            TraceError::TrailingBytes(1)
        );
    }

    #[test]
    fn corrupt_bodies_are_named() {
        // Function index beyond the table.
        let mut t = sample_trace();
        t.events[1].func = 7;
        let bytes = t.encode();
        assert!(matches!(
            Trace::decode(&bytes).unwrap_err(),
            TraceError::BadFunctionIndex {
                index: 1,
                func: 7,
                ..
            }
        ));

        // Time running backwards.
        let mut t = sample_trace();
        t.events[2].at_ns = 3;
        assert!(matches!(
            Trace::decode(&t.encode()).unwrap_err(),
            TraceError::NonMonotoneTime { index: 2, .. }
        ));

        // An absurd length field must be rejected *before* allocation:
        // craft bytes by hand with len = u32::MAX.
        let mut bytes = sample_trace().encode();
        // Last event has an empty payload; its len field is the final
        // 4 bytes.
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Trace::decode(&bytes).unwrap_err(),
            TraceError::OversizedPayload { index: 2, .. }
        ));
    }

    #[test]
    fn payload_bits_survive_exactly() {
        let t = Trace {
            functions: vec!["f".into()],
            events: vec![TraceEvent {
                at_ns: 0,
                func: 0,
                payload: vec![
                    -0.0,
                    f64::MAX,
                    1e-300,
                    f64::from_bits(0x0000_0000_0000_0001),
                ],
            }],
        };
        let back = Trace::decode(&t.encode()).unwrap();
        for (a, b) in back.events[0].payload.iter().zip(&t.events[0].payload) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
