//! Input-distribution drift detection.
//!
//! The serving tier streams every evaluated payload into a per-function
//! [`InputHistogramSnapshot`]. The retuner's question is "does live
//! traffic still look like the distribution the current table was tuned
//! for?" — answered here with a **population-stability-style score**
//! ([`population_stability`]): the symmetrized KL-shaped sum
//! `Σ (qᵢ − pᵢ)·ln(qᵢ/pᵢ)` over smoothed bucket densities. Zero for
//! identical distributions, growing without bound as mass moves;
//! conventional credit-risk practice reads `< 0.1` as stable and
//! `> 0.25` as a real shift, which is where
//! [`DriftThreshold::default`] sits.

use flexsfu_serve::InputHistogramSnapshot;

/// Smoothing floor added to every bucket density so empty buckets do
/// not blow the logarithm up to infinity.
pub const PSI_EPSILON: f64 = 1e-6;

/// A typed drift threshold on the population-stability score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftThreshold(f64);

impl DriftThreshold {
    /// Wraps a threshold.
    ///
    /// # Panics
    ///
    /// Panics unless `score > 0` and finite.
    pub fn new(score: f64) -> Self {
        assert!(score > 0.0 && score.is_finite(), "bad threshold {score}");
        Self(score)
    }

    /// The wrapped score.
    pub fn score(&self) -> f64 {
        self.0
    }
}

impl Default for DriftThreshold {
    /// The conventional "significant shift" PSI level, 0.25.
    fn default() -> Self {
        Self(0.25)
    }
}

/// Population-stability score between a reference and a live histogram.
/// Symmetric, zero iff the (smoothed, clamped) densities agree,
/// unbounded above. Out-of-range mass is folded into the edge buckets
/// ([`InputHistogramSnapshot::clamped_counts`]) so escaping the range
/// counts as drift rather than vanishing.
///
/// # Panics
///
/// Panics if the histograms have different ranges or bucket counts —
/// scores across shapes are meaningless.
pub fn population_stability(
    reference: &InputHistogramSnapshot,
    live: &InputHistogramSnapshot,
) -> f64 {
    assert!(
        reference.lo == live.lo
            && reference.hi == live.hi
            && reference.counts.len() == live.counts.len(),
        "histogram shapes differ: [{}, {}) x{} vs [{}, {}) x{}",
        reference.lo,
        reference.hi,
        reference.counts.len(),
        live.lo,
        live.hi,
        live.counts.len(),
    );
    let p_counts = reference.clamped_counts();
    let q_counts = live.clamped_counts();
    let p_total: u64 = p_counts.iter().sum();
    let q_total: u64 = q_counts.iter().sum();
    if p_total == 0 || q_total == 0 {
        // No evidence on one side: indistinguishable by construction.
        return 0.0;
    }
    let mut score = 0.0;
    for (&pc, &qc) in p_counts.iter().zip(&q_counts) {
        let p = pc as f64 / p_total as f64 + PSI_EPSILON;
        let q = qc as f64 / q_total as f64 + PSI_EPSILON;
        score += (q - p) * (q / p).ln();
    }
    score
}

/// What one drift check concluded.
#[derive(Debug, Clone, PartialEq)]
pub enum DriftVerdict {
    /// Not enough live samples to say anything yet.
    Insufficient {
        /// Samples seen so far.
        samples: u64,
        /// Samples required.
        needed: u64,
    },
    /// Live traffic matches the reference within the threshold.
    Stable {
        /// The measured score.
        score: f64,
    },
    /// Live traffic has shifted past the threshold.
    Drifted {
        /// The measured score.
        score: f64,
    },
}

/// A drift detector: a pinned reference distribution, a typed
/// threshold, and a minimum-evidence gate.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    reference: InputHistogramSnapshot,
    threshold: DriftThreshold,
    min_samples: u64,
}

impl DriftDetector {
    /// Pins `reference` (the tuning-time input distribution) as the
    /// baseline.
    pub fn new(
        reference: InputHistogramSnapshot,
        threshold: DriftThreshold,
        min_samples: u64,
    ) -> Self {
        Self {
            reference,
            threshold,
            min_samples,
        }
    }

    /// The pinned baseline.
    pub fn reference(&self) -> &InputHistogramSnapshot {
        &self.reference
    }

    /// Scores `live` against the baseline. Deterministic: same
    /// histograms, same verdict (including the score's bits).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, as [`population_stability`] does.
    pub fn observe(&self, live: &InputHistogramSnapshot) -> DriftVerdict {
        let samples = live.total();
        if samples < self.min_samples {
            return DriftVerdict::Insufficient {
                samples,
                needed: self.min_samples,
            };
        }
        let score = population_stability(&self.reference, live);
        if score > self.threshold.score() {
            DriftVerdict::Drifted { score }
        } else {
            DriftVerdict::Stable { score }
        }
    }

    /// Re-pins the baseline — called after a retune publishes, so the
    /// next comparison is against the distribution the *new* table was
    /// tuned for.
    pub fn rebase(&mut self, reference: InputHistogramSnapshot) {
        self.reference = reference;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(counts: &[u64]) -> InputHistogramSnapshot {
        let mut h = InputHistogramSnapshot::empty(-8.0, 8.0, counts.len());
        h.counts.copy_from_slice(counts);
        h
    }

    #[test]
    fn identical_distributions_score_zero() {
        let h = hist(&[10, 20, 30, 40]);
        assert_eq!(population_stability(&h, &h), 0.0);
        // Scale invariance: same shape, 10x the mass.
        let big = hist(&[100, 200, 300, 400]);
        assert!(population_stability(&h, &big).abs() < 1e-9);
    }

    #[test]
    fn score_grows_with_separation() {
        let reference = hist(&[100, 100, 0, 0]);
        let nudged = hist(&[90, 110, 0, 0]);
        let flipped = hist(&[0, 0, 100, 100]);
        let small = population_stability(&reference, &nudged);
        let large = population_stability(&reference, &flipped);
        assert!(small > 0.0 && small < 0.1, "nudge scored {small}");
        assert!(large > 1.0, "flip scored {large}");
        // Symmetric.
        assert_eq!(large, population_stability(&flipped, &reference));
    }

    #[test]
    fn out_of_range_mass_counts_as_drift() {
        let reference = hist(&[50, 50, 50, 50]);
        let mut live = hist(&[50, 50, 50, 50]);
        live.above = 500; // most traffic escaped the table's range
        assert!(population_stability(&reference, &live) > 0.25);
    }

    #[test]
    fn detector_gates_on_evidence_then_thresholds() {
        let reference = hist(&[100, 100, 100, 100]);
        let detector = DriftDetector::new(reference, DriftThreshold::default(), 64);
        assert_eq!(
            detector.observe(&hist(&[1, 0, 0, 0])),
            DriftVerdict::Insufficient {
                samples: 1,
                needed: 64
            }
        );
        assert!(matches!(
            detector.observe(&hist(&[25, 25, 25, 25])),
            DriftVerdict::Stable { .. }
        ));
        assert!(matches!(
            detector.observe(&hist(&[100, 0, 0, 0])),
            DriftVerdict::Drifted { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "shapes differ")]
    fn shape_mismatch_is_refused() {
        population_stability(&hist(&[1, 2]), &hist(&[1, 2, 3]));
    }

    #[test]
    fn empty_sides_are_inconclusive_not_drifted() {
        let empty = hist(&[0, 0, 0, 0]);
        let busy = hist(&[10, 10, 10, 10]);
        assert_eq!(population_stability(&empty, &busy), 0.0);
        assert_eq!(population_stability(&busy, &empty), 0.0);
    }
}
