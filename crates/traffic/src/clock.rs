//! The simulator's virtual timeline.
//!
//! Everything in the workload simulator is stamped in **virtual
//! nanoseconds** — a `u64` counter that only the simulation advances,
//! never the wall clock. That is what makes a recorded trace replay
//! bit-for-bit: the "when" of every event is data, not a measurement.

/// A point on the virtual timeline, in nanoseconds since simulation
/// start.
pub type VirtualNs = u64;

/// Monotone virtual clock.
///
/// # Examples
///
/// ```
/// use flexsfu_traffic::clock::VirtualClock;
///
/// let mut clock = VirtualClock::new();
/// clock.advance_to(1_000);
/// clock.advance_by(500);
/// assert_eq!(clock.now(), 1_500);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VirtualClock {
    now: VirtualNs,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> VirtualNs {
        self.now
    }

    /// Jumps forward to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past — virtual time never runs backwards.
    pub fn advance_to(&mut self, t: VirtualNs) {
        assert!(
            t >= self.now,
            "virtual clock moved backwards: {} -> {t}",
            self.now
        );
        self.now = t;
    }

    /// Advances by `dt` nanoseconds (saturating at the end of time).
    pub fn advance_by(&mut self, dt: VirtualNs) {
        self.now = self.now.saturating_add(dt);
    }
}

/// Converts a duration in (fractional) seconds to virtual nanoseconds,
/// rounding up and clamping to at least 1 ns — two events never collapse
/// onto the same instant just because a sampled gap rounded to zero.
pub fn secs_to_ns(dt_s: f64) -> VirtualNs {
    debug_assert!(dt_s >= 0.0 && dt_s.is_finite(), "bad duration {dt_s}");
    let ns = (dt_s * 1e9).ceil();
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        (ns as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let mut c = VirtualClock::new();
        c.advance_to(10);
        c.advance_by(u64::MAX); // saturates, no overflow
        assert_eq!(c.now(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn clock_rejects_time_travel() {
        let mut c = VirtualClock::new();
        c.advance_to(10);
        c.advance_to(9);
    }

    #[test]
    fn conversion_rounds_up_and_floors_at_one() {
        assert_eq!(secs_to_ns(0.0), 1);
        assert_eq!(secs_to_ns(1e-12), 1); // sub-ns gap still advances
        assert_eq!(secs_to_ns(1.0), 1_000_000_000);
        assert_eq!(secs_to_ns(1e30), u64::MAX); // saturates
    }
}
