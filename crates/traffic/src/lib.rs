//! # flexsfu-traffic
//!
//! Trace-driven workload simulation and online adaptive retuning for
//! the serving tier — the closed loop the static tuner
//! (`flexsfu-tune`) was missing: tables are tuned for a distribution,
//! live traffic drifts, and someone has to notice and re-tune without
//! stopping the server.
//!
//! ## The simulator
//!
//! A [`WorkloadSpec`] declares a workload: a seeded
//! [arrival process](arrival::ArrivalProcess) (Poisson steady state,
//! heavy-tailed on/off bursts, or a diurnal ramp) on a
//! [virtual clock](clock::VirtualClock), a traffic mix of functions
//! each with its own [input sampler](sampler::InputSampler) — shifted
//! softmax logits, log-normal rsqrt variances, Gaussian GELU
//! pre-activations, or an empirical histogram inverted by CDF — and
//! optional mid-run [distribution shifts](sim::SamplerShift).
//! [`sim::simulate`] turns the spec into a [`trace::Trace`] — a pure
//! function of the seed, reproducible bit for bit — and
//! [`trace::Trace::encode`]/[`decode`](trace::Trace::decode) give it a
//! compact binary form whose decoder rejects every malformed input with
//! a typed [`trace::TraceError`], never a panic.
//!
//! ## The adaptive loop
//!
//! The serving registry streams every evaluated payload into
//! per-function input histograms
//! ([`flexsfu_serve::FunctionRegistry::drain_input_histogram`]). The
//! [`drift::DriftDetector`] scores a live window against the
//! tuning-time reference with a population-stability-style score under
//! a typed [`drift::DriftThreshold`]; on drift, the
//! [`retune::AdaptiveRetuner`] re-runs the tuner with error weighted
//! by the observed histogram ([`flexsfu_tune::tune_named_weighted`])
//! and publishes the winner through the registry's race-pinned hot
//! swap — zero lost jobs, and the whole decision sequence is steppable
//! ([`retune::AdaptiveRetuner::poll`]) and hence replayable from a
//! recorded trace.
//!
//! # Example
//!
//! ```
//! use flexsfu_traffic::arrival::ArrivalProcess;
//! use flexsfu_traffic::sampler::InputSampler;
//! use flexsfu_traffic::sim::{simulate, FunctionLoad, WorkloadSpec};
//! use flexsfu_traffic::trace::Trace;
//!
//! let spec = WorkloadSpec {
//!     seed: 42,
//!     arrivals: ArrivalProcess::Poisson { rate_hz: 1e5 },
//!     functions: vec![FunctionLoad {
//!         name: "gelu".into(),
//!         weight: 1.0,
//!         elems: (8, 64),
//!         sampler: InputSampler::Gaussian { mean: 0.0, std: 2.0, clamp: (-8.0, 8.0) },
//!     }],
//!     shifts: vec![],
//! };
//! let trace = simulate(&spec, 1_000_000, 1_000);
//! // Record → replay is bitwise identity.
//! assert_eq!(Trace::decode(&trace.encode()).unwrap(), trace);
//! // Same seed, same trace.
//! assert_eq!(simulate(&spec, 1_000_000, 1_000), trace);
//! ```

pub mod arrival;
pub mod clock;
pub mod drift;
pub mod retune;
pub mod sampler;
pub mod sim;
pub mod trace;

pub use arrival::ArrivalProcess;
pub use clock::VirtualClock;
pub use drift::{population_stability, DriftDetector, DriftThreshold, DriftVerdict};
pub use retune::{
    AdaptiveRetuner, RetuneError, RetuneEvent, RetunePolicy, RetunerHandle, M_DRIFT_SCORE,
    M_RETUNES, M_RETUNE_FAILURES,
};
pub use sampler::InputSampler;
pub use sim::{replay_rounds, simulate, FunctionLoad, ReplayReport, SamplerShift, WorkloadSpec};
pub use trace::{Trace, TraceError, TraceEvent};
