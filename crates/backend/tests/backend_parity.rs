//! Backend parity battery: the SFU emulation backend against the scalar
//! f64 reference, for every built-in activation and across number
//! formats.
//!
//! Three layers of pinning:
//!
//! 1. **Declared ULP budgets** — for every function in the
//!    `flexsfu-funcs` registry, the FP16 emulator's error against scalar
//!    f64 `PwlFunction::eval` stays within a per-function budget
//!    declared in [`FP16_ULP_BUDGETS`] (units: FP16 ULPs at base 1, the
//!    paper's Figure 5 yardstick). The program's *computed* sound bound
//!    ([`SfuProgram::abs_error_bound`]) must also sit under the declared
//!    budget, so the budget documents a guarantee, not a measurement.
//! 2. **Bit-faithful fixed-point lowering** — a proptest drives random
//!    functions (saturating breakpoints, denormal-range slopes) and
//!    adversarial inputs (NaN, ±∞, saturating magnitudes, exact
//!    breakpoints) through the emulator and demands **bit equality**
//!    with an independent reference built only from `flexsfu-formats`
//!    rounding primitives (encode/decode/compare-key), i.e. the
//!    datapath spec rather than the `hw` crate's implementation.
//! 3. **Cost-model sanity** — every flush reports cycles > 0 and
//!    positive energy.

use flexsfu_backend::{BackendProgram, LowerError, SfuBackend};
use flexsfu_core::init::uniform_pwl;
use flexsfu_core::PwlFunction;
use flexsfu_formats::ulp::{self, F16_ULP_AT_1};
use flexsfu_formats::FloatFormat;
use flexsfu_formats::{DataFormat, FixedFormat};
use flexsfu_funcs::all_standard;
use flexsfu_hw::FlexSfuConfig;
use proptest::prelude::*;

/// Breakpoints per function: 31 → 32 segments, the paper's deep-table
/// configuration.
const BREAKPOINTS: usize = 31;

/// Declared FP16 error budgets per registry function, in **FP16 ULPs at
/// base 1** (`2⁻¹⁰`): the emulated datapath — input, breakpoint and
/// coefficient quantization plus one output rounding — stays within this
/// of scalar f64 evaluation of the same table over the function's
/// default range. The numbers cover the *computed sound bound*, not just
/// what a grid measured, so they hold for every input in range.
const FP16_ULP_BUDGETS: &[(&str, f64)] = &[
    ("relu", 32.0),
    ("leaky_relu", 32.0),
    ("elu", 34.0),
    ("sigmoid", 9.0),
    ("tanh", 29.0),
    ("softplus", 34.0),
    ("gelu", 39.0),
    ("silu", 38.0),
    ("mish", 37.0),
    ("hardswish", 44.0),
    ("hardsigmoid", 6.0),
    ("relu6", 34.0),
];

fn declared_budget(name: &str) -> f64 {
    FP16_ULP_BUDGETS
        .iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("no declared budget for {name}"))
        .1
}

/// Dense grid over `[lo, hi]` plus every breakpoint exactly and a step
/// on either side of each.
fn parity_inputs(pwl: &PwlFunction, lo: f64, hi: f64) -> Vec<f64> {
    let mut xs: Vec<f64> = (0..4001)
        .map(|k| lo + (hi - lo) * k as f64 / 4000.0)
        .collect();
    for &p in pwl.breakpoints() {
        xs.extend([p, p - 1e-4, p + 1e-4]);
    }
    xs
}

#[test]
fn every_registry_function_within_declared_fp16_ulp_budget() {
    let backend = SfuBackend::fp16(32);
    for f in all_standard() {
        let (lo, hi) = f.default_range();
        let pwl = uniform_pwl(f.as_ref(), BREAKPOINTS, (lo, hi));
        let program = backend
            .lower_program(&pwl.compile())
            .unwrap_or_else(|e| panic!("{}: lowering failed: {e}", f.name()));

        // The declared budget covers the computed sound bound.
        let bound = program.abs_error_bound(lo, hi);
        let budget = declared_budget(f.name());
        assert!(
            bound <= budget * F16_ULP_AT_1,
            "{}: computed bound {:.2} ulp@1 exceeds declared budget {budget}",
            f.name(),
            bound / F16_ULP_AT_1
        );

        // And the measured error respects both on a dense grid.
        let xs = parity_inputs(&pwl, lo, hi);
        let (ys, stats) = program.eval_batch(&xs);
        let hw = stats.hw.expect("sfu backend reports hardware costs");
        assert!(hw.cycles > 0 && hw.energy_nj > 0.0, "{}", f.name());
        let mut max_ulps = 0.0f64;
        for (&x, &y) in xs.iter().zip(&ys) {
            let exact = pwl.eval(x);
            let err = (y - exact).abs();
            assert!(
                err <= bound,
                "{} at {x}: err {err:.3e} above sound bound {bound:.3e}",
                f.name()
            );
            max_ulps = max_ulps.max(ulp::error_in_ulps_at(y, exact, FloatFormat::FP16, 1.0));
        }
        assert!(
            max_ulps <= budget,
            "{}: measured {max_ulps:.2} ulp@1 above budget {budget}",
            f.name()
        );
        println!(
            "{:12}  bound {:6.2} ulp@1   measured {:6.2} ulp@1   budget {budget}",
            f.name(),
            bound / F16_ULP_AT_1,
            max_ulps
        );
    }
}

#[test]
fn fixed_point_backend_stays_within_its_own_bound_for_every_function() {
    // Q6.9: enough integer headroom for every registry function's
    // intercepts (|q| ≤ |v| + |m|·|p| ≲ 20 on the default ranges).
    let fmt = DataFormat::Fixed(FixedFormat::new(16, 9));
    let backend = SfuBackend::new(FlexSfuConfig::new(32, 1), fmt);
    for f in all_standard() {
        let (lo, hi) = f.default_range();
        let pwl = uniform_pwl(f.as_ref(), BREAKPOINTS, (lo, hi));
        let program = backend
            .lower_program(&pwl.compile())
            .unwrap_or_else(|e| panic!("{}: lowering failed: {e}", f.name()));
        let bound = program.abs_error_bound(lo, hi);
        for x in parity_inputs(&pwl, lo, hi) {
            let err = (program.eval_one(x) - pwl.eval(x)).abs();
            assert!(
                err <= bound,
                "{} at {x}: err {err:.3e} above bound {bound:.3e}",
                f.name()
            );
        }
    }
}

/// The datapath reference built from `flexsfu-formats` primitives only:
/// quantized breakpoints padded with the format maximum, LTC rows
/// (quantized on load, last row replicated), ADU comparison on monotone
/// keys, MADD on dequantized operands, one output rounding.
struct FormatsReference {
    fmt: DataFormat,
    /// Quantized breakpoints padded to `depth − 1` entries.
    qbps_padded: Vec<f64>,
    /// Quantized `(m, q)` rows replicated to `depth` entries.
    rows: Vec<(f64, f64)>,
}

impl FormatsReference {
    fn build(pwl: &PwlFunction, fmt: DataFormat, depth: usize) -> Self {
        let table = pwl.compile().to_coeff_table();
        let mut qbps_padded: Vec<f64> =
            pwl.breakpoints().iter().map(|&p| fmt.quantize(p)).collect();
        while qbps_padded.len() < depth - 1 {
            qbps_padded.push(fmt.max_value());
        }
        let rows: Vec<(f64, f64)> = (0..depth)
            .map(|row| {
                let src = row.min(table.len() - 1);
                (
                    fmt.quantize(table.slopes()[src]),
                    fmt.quantize(table.intercepts()[src]),
                )
            })
            .collect();
        Self {
            fmt,
            qbps_padded,
            rows,
        }
    }

    fn eval(&self, x: f64) -> f64 {
        let xpat = self.fmt.encode(x);
        let key = self.fmt.compare_key(xpat);
        let mut address = 0usize;
        for &b in &self.qbps_padded {
            if key > self.fmt.compare_key(self.fmt.encode(b)) {
                address += 1;
            }
        }
        let (m, q) = self.rows[address];
        let xq = self.fmt.decode(xpat);
        self.fmt.quantize(m * xq + q)
    }
}

/// Adversarial inputs for the bit-equality sweep.
fn adversarial_inputs(pwl: &PwlFunction, fmt: DataFormat) -> Vec<f64> {
    let mut xs = vec![
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        0.0,
        -0.0,
        fmt.max_value(),
        fmt.min_value(),
        fmt.max_value() * 4.0, // saturates
        fmt.min_value() * 4.0,
    ];
    for &p in pwl.breakpoints() {
        xs.extend([p, p * (1.0 + 1e-9), p * (1.0 - 1e-9)]);
    }
    xs
}

proptest! {
    /// Fixed-point lowering edge cases: breakpoints pushed to (and past)
    /// the format's saturation point, slopes down in the denormal range
    /// of magnitudes, NaN and ±∞ inputs. Whenever lowering succeeds the
    /// emulator must be **bit-identical** to the formats-only reference;
    /// when it reports a breakpoint collision, the reference rounding
    /// must actually collide.
    #[test]
    fn prop_fixed_lowering_matches_formats_reference(
        seed in 0u64..1u64 << 48,
        frac in 1u8..15,
        bp_exp in -18i32..7,
        val_exp in -40i32..4,
        nbp in 2usize..8,
    ) {
        let fixed = FixedFormat::new(16, frac);
        let fmt = DataFormat::Fixed(fixed);
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        // Strictly increasing breakpoints at magnitude 2^bp_exp —
        // saturating past the format's range for large exponents,
        // collapsing below its resolution for small ones.
        let step = (bp_exp as f64).exp2();
        let mut p = Vec::with_capacity(nbp);
        let mut acc = -(nbp as f64) / 2.0 * step;
        for _ in 0..nbp {
            acc += step * (1.0 + (next() % 8) as f64 / 4.0);
            p.push(acc);
        }
        // Values at magnitude 2^val_exp: denormal-range slopes when tiny.
        let vstep = (val_exp as f64).exp2();
        let v: Vec<f64> = (0..nbp)
            .map(|_| ((next() % 2001) as f64 / 1000.0 - 1.0) * vstep)
            .collect();
        let ml = ((next() % 2001) as f64 / 1000.0 - 1.0) * vstep;
        let mr = ((next() % 2001) as f64 / 1000.0 - 1.0) * vstep;
        let Ok(pwl) = PwlFunction::new(p.clone(), v, ml, mr) else {
            // Accumulated float steps can collapse; not the case under test.
            prop_assume!(false);
            unreachable!()
        };

        let backend = SfuBackend::new(FlexSfuConfig::new(8, 1), fmt);
        match backend.lower_program(&pwl.compile()) {
            Err(LowerError::BreakpointCollision) => {
                let qb: Vec<f64> = p.iter().map(|&b| fmt.quantize(b)).collect();
                prop_assert!(
                    qb.windows(2).any(|w| w[0] >= w[1]),
                    "collision reported but reference rounding keeps breakpoints distinct"
                );
            }
            Err(e) => panic!("unexpected lowering failure: {e}"),
            Ok(program) => {
                let reference = FormatsReference::build(&pwl, fmt, 8);
                for x in adversarial_inputs(&pwl, fmt) {
                    prop_assert_eq!(
                        program.eval_one(x).to_bits(),
                        reference.eval(x).to_bits(),
                        "input {} (bp_exp {}, val_exp {}, frac {})",
                        x, bp_exp, val_exp, frac
                    );
                }
                // A handful of random in-and-out-of-range points too.
                for _ in 0..16 {
                    let x = ((next() % 4001) as f64 / 1000.0 - 2.0)
                        * fixed.max_value();
                    prop_assert_eq!(
                        program.eval_one(x).to_bits(),
                        reference.eval(x).to_bits(),
                        "random input {}", x
                    );
                }
            }
        }
    }
}

#[test]
fn nan_and_saturation_semantics_match_the_format_family() {
    let pwl = uniform_pwl(all_standard()[6].as_ref(), 15, (-8.0, 8.0)); // gelu
    let engine = pwl.compile();

    // Float family: NaN propagates through the whole datapath.
    let fp16 = SfuBackend::fp16(16).lower_program(&engine).unwrap();
    assert!(fp16.eval_one(f64::NAN).is_nan(), "fp16 NaN must propagate");

    // Fixed family: NaN encodes to code 0 (the quantizer's convention),
    // so it evaluates like quantized zero — deterministic, not NaN.
    let fmt = DataFormat::Fixed(FixedFormat::new(16, 9));
    let fixed = SfuBackend::new(FlexSfuConfig::new(16, 1), fmt)
        .lower_program(&engine)
        .unwrap();
    let at_nan = fixed.eval_one(f64::NAN);
    let at_zero = fixed.eval_one(0.0);
    assert!(!at_nan.is_nan());
    assert_eq!(at_nan.to_bits(), at_zero.to_bits());

    // Saturating inputs clamp to the format edge and land in the outer
    // segments, matching the reference.
    let reference = FormatsReference::build(&pwl, fmt, 16);
    for x in [1e9, -1e9, fmt.max_value() * 2.0, fmt.min_value() * 2.0] {
        assert_eq!(fixed.eval_one(x).to_bits(), reference.eval(x).to_bits());
    }
}
