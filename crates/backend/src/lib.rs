//! # flexsfu-backend
//!
//! Pluggable evaluation backends over the compiled PWL engine — the
//! paper's core claim made executable: **one coefficient table serves
//! both a software evaluator and the Flex-SFU hardware datapath**.
//!
//! A backend takes a [`CompiledPwl`] (the engine's SoA form: sorted
//! breakpoints plus per-segment slope/intercept) and *lowers* it into a
//! backend-resident program; the program then batch-evaluates packed
//! buffers through the same slice-scatter entry-point shape the serving
//! layer already uses ([`CompiledPwl::eval_scatter_into`]), so a flush
//! unit can be routed to any backend without repacking. Two backends
//! ship:
//!
//! * [`NativeBackend`] — the identity lowering onto the existing SIMD
//!   lane kernels ([`flexsfu_core::ParallelPwl`]). Results are
//!   bit-identical to scalar f64 [`flexsfu_core::PwlFunction::eval`];
//!   no hardware cost model applies.
//! * [`SfuBackend`] — a **bit-faithful emulation** of the paper's
//!   Flex-SFU unit: breakpoints, slopes and intercepts are quantized
//!   through a [`flexsfu_formats::DataFormat`] and loaded into the `hw`
//!   crate's ADU binary-search tree and LTC coefficient memories; every
//!   element then walks the modelled datapath (quantize input → ADU
//!   decode → LTC fetch → MADD → output quantization), exactly as
//!   [`flexsfu_hw::FlexSfu::eval`] would. Each flush returns a
//!   [`HwEstimate`] — cycles from [`flexsfu_hw::pipeline`], energy from
//!   [`flexsfu_hw::power::PowerModel`], silicon area from
//!   [`flexsfu_hw::area::AreaModel`] — alongside the results, and the
//!   program can state a sound absolute error bound vs the scalar f64
//!   reference ([`SfuProgram::abs_error_bound`]), which the
//!   `backend_parity` suite pins in ULP terms for every built-in
//!   activation.
//!
//! The serving layer (`flexsfu-serve`) binds one backend per registered
//! function: the batcher still groups flushes per function, so **a
//! flush never mixes backends**, and per-flush [`FlushStats`] aggregate
//! into the registry's backend counters.
//!
//! # Adding a backend
//!
//! Implement [`EvalBackend::lower`] to translate the engine's tables
//! into whatever representation the target consumes (device buffers, a
//! quantized LUT, an RPC handle …) and [`BackendProgram::eval_scatter_into`]
//! to evaluate a packed buffer and scatter results into per-job slices.
//! Programs must be `Send + Sync`: the serving worker pool shares them
//! across threads. Return `hw: None` in [`FlushStats`] if the backend
//! has no cost model.
//!
//! # Example
//!
//! ```
//! use flexsfu_backend::{EvalBackend, NativeBackend, SfuBackend};
//! use flexsfu_core::init::uniform_pwl;
//! use flexsfu_funcs::Gelu;
//!
//! let engine = uniform_pwl(&Gelu, 31, (-8.0, 8.0)).compile();
//! let native = NativeBackend::new().lower(&engine)?;
//! let sfu = SfuBackend::fp16(32).lower(&engine)?;
//!
//! let xs = [-1.0, 0.0, 0.5, 2.0];
//! let (exact, _) = native.eval_batch(&xs);
//! let (approx, stats) = sfu.eval_batch(&xs);
//! let hw = stats.hw.expect("the SFU emulator reports hardware costs");
//! assert!(hw.cycles > 0 && hw.energy_nj > 0.0);
//! for (a, e) in approx.iter().zip(&exact) {
//!     assert!((a - e).abs() < 0.01); // fp16 datapath ≈ f64 reference
//! }
//! # Ok::<(), flexsfu_backend::LowerError>(())
//! ```

mod native;
mod sfu;

pub use native::{NativeBackend, NativeProgram, NativeProgramF32};
pub use sfu::{SfuBackend, SfuProgram};

use flexsfu_core::{CompiledPwl, CompiledPwlF32};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Why lowering a [`CompiledPwl`] onto a backend failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LowerError {
    /// The function has more segments than the backend's table holds
    /// (the SFU emulator's LTC depth).
    TooManySegments {
        /// Segments the function needs (`breakpoints + 1`).
        needed: usize,
        /// Segments the backend can hold.
        capacity: usize,
    },
    /// Quantization through the backend's number format collapsed two
    /// breakpoints into one code — the format is too coarse for the
    /// function's breakpoint spacing.
    BreakpointCollision,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::TooManySegments { needed, capacity } => write!(
                f,
                "function needs {needed} segments but the backend holds {capacity}"
            ),
            LowerError::BreakpointCollision => {
                write!(f, "breakpoints collide after backend quantization")
            }
        }
    }
}

impl Error for LowerError {}

impl From<flexsfu_hw::ProgramError> for LowerError {
    fn from(e: flexsfu_hw::ProgramError) -> Self {
        match e {
            flexsfu_hw::ProgramError::TooManySegments { needed, depth } => {
                LowerError::TooManySegments {
                    needed,
                    capacity: depth,
                }
            }
            flexsfu_hw::ProgramError::BreakpointCollision => LowerError::BreakpointCollision,
        }
    }
}

/// Modelled hardware cost of one flush, from the `hw` crate's calibrated
/// models (Table I of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwEstimate {
    /// Steady-state cycles for the flush: pipeline fill latency plus
    /// streaming beats ([`flexsfu_hw::execution_cycles`]); the one-off
    /// `ld.bp`/`ld.cf` programming cost amortizes across flushes and is
    /// not charged here. Always > 0 (the fill latency alone is ≥ 7).
    pub cycles: u64,
    /// Energy for those cycles in nanojoules, from the 28 nm power model
    /// at the configured cluster count.
    pub energy_nj: f64,
    /// Silicon area of the emulated instance in µm² (static per program,
    /// repeated here so per-flush reports are self-contained).
    pub area_um2: f64,
}

/// What one flush through a [`BackendProgram`] did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlushStats {
    /// Elements evaluated.
    pub elems: usize,
    /// Hardware cost estimate; `None` for backends without a cost model
    /// (the native SIMD kernels).
    pub hw: Option<HwEstimate>,
}

/// A factory lowering compiled functions onto one evaluation target.
///
/// Backends are cheap, shareable descriptions (format, depth, cluster
/// count); the per-function state lives in the [`BackendProgram`] that
/// [`EvalBackend::lower`] produces.
pub trait EvalBackend: Send + Sync {
    /// Short stable label for reports and registry columns
    /// (`"native"`, `"sfu-emu"`, …).
    fn name(&self) -> &'static str;

    /// Lowers `engine` into a backend-resident program.
    ///
    /// # Errors
    ///
    /// [`LowerError`] when the function does not fit the backend's
    /// tables or its quantization.
    fn lower(&self, engine: &CompiledPwl) -> Result<Arc<dyn BackendProgram>, LowerError>;

    /// Lowers the single-precision form of the function, if this backend
    /// has an f32 lane. The default is `None` — a backend without an f32
    /// datapath simply doesn't serve f32 traffic (the serving layer
    /// surfaces that as a precision-unsupported error rather than
    /// silently round-tripping the request through f64).
    ///
    /// [`NativeBackend`] overrides this with the identity lowering onto
    /// [`flexsfu_core::ParallelPwlF32`].
    fn lower_f32(&self, engine: &CompiledPwlF32) -> Option<Arc<dyn BackendProgramF32>> {
        let _ = engine;
        None
    }
}

/// A lowered function, ready to batch-evaluate packed buffers.
///
/// Programs are immutable from the caller's perspective and shared
/// across the serving worker pool (`Send + Sync`); interior state (like
/// the SFU emulator's single-ported memories) must synchronize
/// internally.
pub trait BackendProgram: Send + Sync {
    /// The owning backend's [`EvalBackend::name`].
    fn backend_name(&self) -> &'static str;

    /// Evaluates the packed input `xs` and scatters results into the
    /// non-contiguous output slices, in order — the same contract as
    /// [`CompiledPwl::eval_scatter_into`] — returning what the flush
    /// cost.
    ///
    /// # Panics
    ///
    /// Panics if the output lengths do not sum to `xs.len()`.
    fn eval_scatter_into(&self, xs: &[f64], outs: &mut [&mut [f64]]) -> FlushStats;

    /// Convenience: evaluates `xs` into a fresh contiguous `Vec`.
    fn eval_batch(&self, xs: &[f64]) -> (Vec<f64>, FlushStats) {
        let mut out = vec![0.0; xs.len()];
        let stats = self.eval_scatter_into(xs, &mut [out.as_mut_slice()]);
        (out, stats)
    }
}

/// A lowered single-precision function — the f32 twin of
/// [`BackendProgram`], produced by [`EvalBackend::lower_f32`]. A request
/// evaluated through this trait never touches f64: the packed flush
/// buffer, the kernels and the scattered results are all f32.
///
/// Same sharing contract as [`BackendProgram`]: programs are immutable
/// to callers and shared across the serving worker pool.
pub trait BackendProgramF32: Send + Sync {
    /// The owning backend's [`EvalBackend::name`].
    fn backend_name(&self) -> &'static str;

    /// Evaluates the packed f32 input and scatters results into the
    /// non-contiguous output slices, in order — the same contract as
    /// [`flexsfu_core::CompiledPwlF32::eval_scatter_into`] — returning
    /// what the flush cost.
    ///
    /// # Panics
    ///
    /// Panics if the output lengths do not sum to `xs.len()`.
    fn eval_scatter_into(&self, xs: &[f32], outs: &mut [&mut [f32]]) -> FlushStats;

    /// Convenience: evaluates `xs` into a fresh contiguous `Vec`.
    fn eval_batch(&self, xs: &[f32]) -> (Vec<f32>, FlushStats) {
        let mut out = vec![0.0; xs.len()];
        let stats = self.eval_scatter_into(xs, &mut [out.as_mut_slice()]);
        (out, stats)
    }
}
