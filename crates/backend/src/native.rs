//! The identity lowering: the engine's own SIMD lane kernels as a
//! backend.

use crate::{BackendProgram, BackendProgramF32, EvalBackend, FlushStats, LowerError};
use flexsfu_core::{CompiledPwl, CompiledPwlF32, ParallelPwl, ParallelPwlF32};
use std::sync::Arc;

/// The native backend: lowering is a no-op re-wrap of the engine, and
/// evaluation runs the runtime-dispatched SIMD lane kernels (threaded
/// above the [`ParallelPwl`] crossover). Results are bit-identical to
/// scalar f64 [`flexsfu_core::PwlFunction::eval`] — this backend *is*
/// the reference the others are measured against.
#[derive(Debug, Clone, Copy, Default)]
pub struct NativeBackend;

impl NativeBackend {
    /// Creates the native backend (stateless).
    pub fn new() -> Self {
        Self
    }
}

impl EvalBackend for NativeBackend {
    fn name(&self) -> &'static str {
        "native"
    }

    fn lower(&self, engine: &CompiledPwl) -> Result<Arc<dyn BackendProgram>, LowerError> {
        Ok(Arc::new(NativeProgram::from_engine(Arc::new(
            ParallelPwl::new(engine.clone()),
        ))))
    }

    fn lower_f32(&self, engine: &CompiledPwlF32) -> Option<Arc<dyn BackendProgramF32>> {
        Some(Arc::new(NativeProgramF32::from_engine(Arc::new(
            ParallelPwlF32::new(engine.clone()),
        ))))
    }
}

/// A lowered native program: a shared [`ParallelPwl`].
#[derive(Debug, Clone)]
pub struct NativeProgram {
    engine: Arc<ParallelPwl>,
}

impl NativeProgram {
    /// Wraps an engine a caller already holds, without re-compiling —
    /// for embedders that want the program and their own engine handle
    /// to share one allocation.
    pub fn from_engine(engine: Arc<ParallelPwl>) -> Self {
        Self { engine }
    }

    /// The wrapped threaded engine.
    pub fn engine(&self) -> &Arc<ParallelPwl> {
        &self.engine
    }
}

impl BackendProgram for NativeProgram {
    fn backend_name(&self) -> &'static str {
        "native"
    }

    fn eval_scatter_into(&self, xs: &[f64], outs: &mut [&mut [f64]]) -> FlushStats {
        self.engine.eval_scatter_into(xs, outs);
        FlushStats {
            elems: xs.len(),
            hw: None,
        }
    }
}

/// A lowered single-precision native program: a shared
/// [`ParallelPwlF32`]. The identity f32 lowering — evaluation runs the
/// eight-wide f32 lane kernels with no f64 round-trip anywhere, and each
/// flush reports its element count (`hw: None`, like the f64 native
/// program).
#[derive(Debug, Clone)]
pub struct NativeProgramF32 {
    engine: Arc<ParallelPwlF32>,
}

impl NativeProgramF32 {
    /// Wraps an f32 engine a caller already holds, without re-compiling.
    pub fn from_engine(engine: Arc<ParallelPwlF32>) -> Self {
        Self { engine }
    }

    /// The wrapped threaded f32 engine.
    pub fn engine(&self) -> &Arc<ParallelPwlF32> {
        &self.engine
    }
}

impl BackendProgramF32 for NativeProgramF32 {
    fn backend_name(&self) -> &'static str {
        "native"
    }

    fn eval_scatter_into(&self, xs: &[f32], outs: &mut [&mut [f32]]) -> FlushStats {
        self.engine.eval_scatter_into(xs, outs);
        FlushStats {
            elems: xs.len(),
            hw: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfu_core::init::uniform_pwl;
    use flexsfu_core::PwlEvaluator;
    use flexsfu_funcs::Gelu;

    #[test]
    fn native_program_is_bit_identical_to_the_engine() {
        let pwl = uniform_pwl(&Gelu, 15, (-8.0, 8.0));
        let engine = pwl.compile();
        let program = NativeBackend::new().lower(&engine).unwrap();
        assert_eq!(program.backend_name(), "native");
        let xs: Vec<f64> = (0..500).map(|i| i as f64 * 0.04 - 10.0).collect();
        let (got, stats) = program.eval_batch(&xs);
        assert_eq!(stats.elems, xs.len());
        assert!(stats.hw.is_none(), "native has no hardware cost model");
        for (g, w) in got.iter().zip(engine.eval_batch(&xs)) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn native_scatter_partitions_like_the_engine() {
        let engine = uniform_pwl(&Gelu, 7, (-8.0, 8.0)).compile();
        let program = NativeBackend::new().lower(&engine).unwrap();
        let xs: Vec<f64> = (0..100).map(|i| i as f64 * 0.1 - 5.0).collect();
        let want = engine.eval_batch(&xs);
        let mut a = vec![0.0; 30];
        let mut b = vec![0.0; 0];
        let mut c = vec![0.0; 70];
        let stats = program.eval_scatter_into(
            &xs,
            &mut [a.as_mut_slice(), b.as_mut_slice(), c.as_mut_slice()],
        );
        assert_eq!(stats.elems, 100);
        let flat: Vec<f64> = a.into_iter().chain(b).chain(c).collect();
        for (g, w) in flat.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn native_f32_program_is_bit_identical_to_the_f32_engine() {
        let pwl = uniform_pwl(&Gelu, 15, (-8.0, 8.0));
        let engine = CompiledPwlF32::from_pwl(&pwl);
        let program = NativeBackend::new()
            .lower_f32(&engine)
            .expect("native has an f32 lane");
        assert_eq!(program.backend_name(), "native");
        let xs: Vec<f32> = (0..500).map(|i| i as f32 * 0.04 - 10.0).collect();
        let (got, stats) = program.eval_batch(&xs);
        assert_eq!(stats.elems, xs.len());
        assert!(stats.hw.is_none(), "native has no hardware cost model");
        for (g, w) in got.iter().zip(engine.eval_batch(&xs)) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn native_f32_scatter_partitions_like_the_engine() {
        let engine = CompiledPwlF32::from_pwl(&uniform_pwl(&Gelu, 7, (-8.0, 8.0)));
        let program = NativeBackend::new().lower_f32(&engine).unwrap();
        let xs: Vec<f32> = (0..100).map(|i| i as f32 * 0.1 - 5.0).collect();
        let want = engine.eval_batch(&xs);
        let mut a = vec![0.0f32; 30];
        let mut b = vec![0.0f32; 0];
        let mut c = vec![0.0f32; 70];
        let stats = program.eval_scatter_into(
            &xs,
            &mut [a.as_mut_slice(), b.as_mut_slice(), c.as_mut_slice()],
        );
        assert_eq!(stats.elems, 100);
        let flat: Vec<f32> = a.into_iter().chain(b).chain(c).collect();
        for (g, w) in flat.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn sfu_backend_has_no_f32_lane() {
        let engine = CompiledPwlF32::from_pwl(&uniform_pwl(&Gelu, 7, (-8.0, 8.0)));
        assert!(crate::SfuBackend::fp16(16).lower_f32(&engine).is_none());
    }
}
