//! The Flex-SFU emulation backend: lowering through format quantization
//! into the `hw` crate's ADU/LTC datapath model.

use crate::{BackendProgram, EvalBackend, FlushStats, HwEstimate, LowerError};
use flexsfu_core::CompiledPwl;
use flexsfu_formats::{DataFormat, FloatFormat};
use flexsfu_hw::{execution_cycles, AreaModel, FlexSfu, FlexSfuConfig, PowerModel};
use std::sync::{Arc, Mutex};

/// A backend that evaluates through a **bit-faithful emulation of the
/// paper's hardware unit**.
///
/// Lowering quantizes the engine's breakpoints into the ADU's
/// binary-search tree and its `(m, q)` coefficients into the LTC
/// memories, all through the configured [`DataFormat`] (fixed-point or
/// minifloat) — the same `ld.bp()`/`ld.cf()` path
/// [`flexsfu_hw::FlexSfu::program_compiled`] models. Evaluation walks
/// the full datapath per element: quantize input → ADU tree decode →
/// LTC fetch → MADD on dequantized operands → output quantization.
/// Outputs are therefore **bit-identical to
/// [`flexsfu_hw::FlexSfu::eval`]**, and every flush reports the
/// modelled cycle / energy / area cost.
///
/// This is an emulator, not a fast path: its value is observing what
/// the silicon would produce (and cost) for the same coefficient table
/// the native backend serves — throughput numbers are informational
/// only.
#[derive(Debug, Clone, Copy)]
pub struct SfuBackend {
    config: FlexSfuConfig,
    format: DataFormat,
}

impl SfuBackend {
    /// A backend emulating one Flex-SFU instance of the given
    /// configuration and element format.
    pub fn new(config: FlexSfuConfig, format: DataFormat) -> Self {
        Self { config, format }
    }

    /// The paper's headline configuration: FP16 elements, one cluster,
    /// `ltc_depth` segments (a power of two, 4–64 in the evaluation).
    ///
    /// # Panics
    ///
    /// Panics if `ltc_depth` is not a power of two ≥ 2.
    pub fn fp16(ltc_depth: usize) -> Self {
        Self::new(
            FlexSfuConfig::new(ltc_depth, 1),
            DataFormat::Float(FloatFormat::FP16),
        )
    }

    /// The smallest paper-range configuration (depth a power of two,
    /// at least 4) whose LTC holds `segments` table segments, in the
    /// given element format — the constructor a design-space sweep
    /// uses: hand it [`CompiledPwl::num_segments`] and the lowering
    /// fits by construction.
    ///
    /// # Panics
    ///
    /// Panics if `segments == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use flexsfu_backend::SfuBackend;
    /// use flexsfu_formats::{DataFormat, FloatFormat};
    ///
    /// let fmt = DataFormat::Float(FloatFormat::FP16);
    /// assert_eq!(SfuBackend::for_segments(3, fmt).config().ltc_depth, 4);
    /// assert_eq!(SfuBackend::for_segments(33, fmt).config().ltc_depth, 64);
    /// ```
    pub fn for_segments(segments: usize, format: DataFormat) -> Self {
        assert!(segments > 0, "a table has at least one segment");
        let depth = segments.next_power_of_two().max(4);
        Self::new(FlexSfuConfig::new(depth, 1), format)
    }

    /// The emulated unit's static configuration.
    pub fn config(&self) -> FlexSfuConfig {
        self.config
    }

    /// The element format the datapath quantizes through.
    pub fn format(&self) -> DataFormat {
        self.format
    }

    /// Lowers `engine` as [`EvalBackend::lower`] does, but returns the
    /// concrete [`SfuProgram`] — for callers that need the emulator's
    /// extra surface ([`SfuProgram::abs_error_bound`],
    /// [`SfuProgram::estimate`]) rather than the type-erased handle.
    ///
    /// # Errors
    ///
    /// As for [`EvalBackend::lower`].
    pub fn lower_program(&self, engine: &CompiledPwl) -> Result<SfuProgram, LowerError> {
        SfuProgram::lower(self, engine)
    }
}

impl EvalBackend for SfuBackend {
    fn name(&self) -> &'static str {
        "sfu-emu"
    }

    fn lower(&self, engine: &CompiledPwl) -> Result<Arc<dyn BackendProgram>, LowerError> {
        Ok(Arc::new(SfuProgram::lower(self, engine)?))
    }
}

/// A function lowered onto the SFU emulator: the programmed hardware
/// model plus the exact/quantized coefficient tables the error bound is
/// computed from.
///
/// The hardware model mutates on every read (its single-port memories
/// count accesses), so the unit sits behind a mutex; one flush holds it
/// for the whole packed buffer, which also mirrors the real unit's
/// one-tensor-at-a-time streaming.
pub struct SfuProgram {
    sfu: Mutex<FlexSfu>,
    config: FlexSfuConfig,
    format: DataFormat,
    power_mw: f64,
    area_um2: f64,
    /// Exact breakpoints and `(m, q)` rows, plus their format-quantized
    /// images — the inputs to [`SfuProgram::abs_error_bound`].
    bps_exact: Vec<f64>,
    m_exact: Vec<f64>,
    q_exact: Vec<f64>,
}

impl SfuProgram {
    fn lower(backend: &SfuBackend, engine: &CompiledPwl) -> Result<Self, LowerError> {
        let mut sfu = FlexSfu::new(backend.config);
        sfu.program_compiled(engine, backend.format)?;
        let table = engine.to_coeff_table();
        Ok(Self {
            sfu: Mutex::new(sfu),
            config: backend.config,
            format: backend.format,
            power_mw: PowerModel::calibrated()
                .instance_mw(backend.config.ltc_depth, backend.config.num_clusters),
            area_um2: AreaModel::calibrated()
                .instance_um2(backend.config.ltc_depth, backend.config.num_clusters),
            bps_exact: engine.breakpoints().to_vec(),
            m_exact: table.slopes().to_vec(),
            q_exact: table.intercepts().to_vec(),
        })
    }

    /// The element format this program quantizes through.
    pub fn format(&self) -> DataFormat {
        self.format
    }

    /// Evaluates one element through the emulated datapath —
    /// bit-identical to [`flexsfu_hw::FlexSfu::eval`] on a unit
    /// programmed with the same engine and format.
    pub fn eval_one(&self, x: f64) -> f64 {
        self.sfu.lock().unwrap().eval(x)
    }

    /// The modelled cost of streaming `elems` elements: steady-state
    /// cycles (fill latency + streaming beats; `ld.bp`/`ld.cf`
    /// programming amortizes across flushes), the energy those cycles
    /// draw at the calibrated 28 nm power, and the instance area.
    pub fn estimate(&self, elems: usize) -> HwEstimate {
        let timing = execution_cycles(
            elems,
            self.config.ltc_depth,
            self.config.num_clusters,
            self.format,
        );
        let cycles = timing.total_steady();
        HwEstimate {
            cycles,
            // mW × cycles/Hz = 1e-3 J/s × s = 1e-3 J → ×1e6 for nJ… i.e.
            // E[nJ] = P[mW] · t[s] · 1e6.
            energy_nj: self.power_mw * (cycles as f64 / self.config.freq_hz) * 1e6,
            area_um2: self.area_um2,
        }
    }

    /// A sound absolute bound on `|emulated − scalar f64|` over finite
    /// inputs in `[lo, hi]`, derived from the format's quantization
    /// quanta and the program's own tables:
    ///
    /// * input quantization moves `x` by at most `q_in`, scaled by the
    ///   steepest slope;
    /// * segment selection happens against quantized breakpoints at the
    ///   quantized input, so near a boundary the neighbouring exact line
    ///   may be charged instead — bounded by the slope change across one
    ///   joint times the selection slack (order preservation is
    ///   guaranteed by lowering, which rejects colliding breakpoints);
    /// * coefficient quantization perturbs the line by
    ///   `|Δm|·|x| + |Δq|`, both computed exactly from the tables;
    /// * the MADD result is rounded once more into the format.
    ///
    /// The bound assumes `[lo, hi]` (and the function's outputs over
    /// it) stay inside the format's representable range, i.e. no
    /// saturation.
    pub fn abs_error_bound(&self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad range");
        let xmax = lo.abs().max(hi.abs());
        let q_in = self.quant_error_at(xmax);
        let q_bp = self
            .bps_exact
            .iter()
            .map(|&p| (p - self.format.quantize(p)).abs())
            .fold(0.0, f64::max);
        let m_max = self
            .m_exact
            .iter()
            .map(|&m| m.abs().max(self.format.quantize(m).abs()))
            .fold(0.0, f64::max);
        let dm = self
            .m_exact
            .iter()
            .map(|&m| (m - self.format.quantize(m)).abs())
            .fold(0.0, f64::max);
        let dq = self
            .q_exact
            .iter()
            .map(|&q| (q - self.format.quantize(q)).abs())
            .fold(0.0, f64::max);
        // Output magnitude cap over the range, from the line tables.
        let ymax = self
            .m_exact
            .iter()
            .zip(&self.q_exact)
            .map(|(&m, &q)| m.abs() * xmax + q.abs())
            .fold(0.0, f64::max);
        let q_out = self.quant_error_at(ymax);
        // Selection slack: quantized input vs quantized breakpoint can
        // disagree with the exact ordering only within one quantum of
        // each; charge one full joint's slope change on that slack
        // (doubled for the rare double-crossing of two near breakpoints).
        let selection = 4.0 * m_max * (q_in + q_bp);
        m_max * q_in + selection + dm * (xmax + q_in) + dq + q_out
    }

    /// Worst-case quantization error of the format at magnitudes up to
    /// `mag` (half a ULP in `mag`'s binade for floats, half a step for
    /// fixed point).
    fn quant_error_at(&self, mag: f64) -> f64 {
        match self.format {
            DataFormat::Fixed(f) => f.resolution() / 2.0,
            DataFormat::Float(f) => f.ulp_at(mag) / 2.0,
        }
    }
}

impl BackendProgram for SfuProgram {
    fn backend_name(&self) -> &'static str {
        "sfu-emu"
    }

    fn eval_scatter_into(&self, xs: &[f64], outs: &mut [&mut [f64]]) -> FlushStats {
        let total: usize = outs.iter().map(|o| o.len()).sum();
        assert_eq!(xs.len(), total, "output slices must partition the input");
        {
            let mut sfu = self.sfu.lock().unwrap();
            let mut off = 0usize;
            for out in outs.iter_mut() {
                sfu.eval_into(&xs[off..off + out.len()], out);
                off += out.len();
            }
        }
        FlushStats {
            elems: xs.len(),
            hw: Some(self.estimate(xs.len())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfu_core::init::uniform_pwl;
    use flexsfu_formats::FixedFormat;
    use flexsfu_funcs::{Sigmoid, Tanh};

    #[test]
    fn lowering_rejects_overfull_and_colliding_tables() {
        let deep = uniform_pwl(&Tanh, 32, (-8.0, 8.0)); // 33 segments
        let err = SfuBackend::fp16(32).lower(&deep.compile()).err();
        assert_eq!(
            err,
            Some(LowerError::TooManySegments {
                needed: 33,
                capacity: 32
            })
        );

        let tight =
            flexsfu_core::PwlFunction::new(vec![0.0, 1e-4, 1.0], vec![0.0, 0.0, 1.0], 0.0, 0.0)
                .unwrap();
        let coarse = SfuBackend::new(
            FlexSfuConfig::new(4, 1),
            DataFormat::Fixed(FixedFormat::new(8, 3)),
        );
        assert_eq!(
            coarse.lower(&tight.compile()).err(),
            Some(LowerError::BreakpointCollision)
        );
    }

    #[test]
    fn program_matches_hw_eval_bit_for_bit() {
        let pwl = uniform_pwl(&Sigmoid, 15, (-8.0, 8.0));
        let engine = pwl.compile();
        let backend = SfuBackend::fp16(16);
        let program = backend.lower(&engine).unwrap();
        let mut reference = FlexSfu::new(backend.config());
        reference
            .program_compiled(&engine, backend.format())
            .unwrap();
        let xs: Vec<f64> = (-90..=90).map(|i| i as f64 * 0.11).collect();
        let (got, stats) = program.eval_batch(&xs);
        for (&x, &g) in xs.iter().zip(&got) {
            assert_eq!(g.to_bits(), reference.eval(x).to_bits(), "at {x}");
        }
        let hw = stats.hw.expect("sfu backend reports costs");
        assert!(hw.cycles > 0);
        assert!(hw.energy_nj > 0.0);
        assert!(hw.area_um2 > 0.0);
    }

    #[test]
    fn error_bound_holds_on_a_dense_grid() {
        let pwl = uniform_pwl(&Tanh, 31, (-8.0, 8.0));
        let backend = SfuBackend::fp16(32);
        let lowered = backend.lower(&pwl.compile()).unwrap();
        // Downcast-free access: re-lower as the concrete type.
        let program = SfuProgram::lower(&backend, &pwl.compile()).unwrap();
        let bound = program.abs_error_bound(-8.0, 8.0);
        assert!(bound > 0.0 && bound < 0.05, "fp16 bound sane: {bound}");
        for i in -4000..=4000 {
            let x = i as f64 * 0.002;
            let (y, _) = lowered.eval_batch(&[x]);
            let err = (y[0] - pwl.eval(x)).abs();
            assert!(err <= bound, "x = {x}: err {err} > bound {bound}");
        }
    }

    #[test]
    fn for_segments_always_fits_its_table() {
        let fmt = DataFormat::Float(flexsfu_formats::FloatFormat::FP16);
        for n in [2usize, 3, 7, 15, 31, 32, 63] {
            let engine = uniform_pwl(&Tanh, n, (-8.0, 8.0)).compile();
            let backend = SfuBackend::for_segments(engine.num_segments(), fmt);
            assert!(
                backend.lower(&engine).is_ok(),
                "{n} breakpoints must fit depth {}",
                backend.config().ltc_depth
            );
            assert!(backend.config().ltc_depth >= 4);
            assert!(backend.config().ltc_depth.is_power_of_two());
        }
    }

    #[test]
    fn empty_flush_still_reports_fill_latency() {
        let pwl = uniform_pwl(&Sigmoid, 7, (-8.0, 8.0));
        let program = SfuBackend::fp16(8).lower(&pwl.compile()).unwrap();
        let (out, stats) = program.eval_batch(&[]);
        assert!(out.is_empty());
        assert!(stats.hw.unwrap().cycles > 0, "fill latency is never zero");
    }
}
