//! Allocator-traffic pinning for the compiled gradient path (the
//! ROADMAP "engine-aware optimizer throughput" item): Adam-loop-shaped
//! repeated `loss_and_grad_compiled` calls must not grow the heap —
//! the workspace's engine recompiles in place and every buffer is
//! reused.
//!
//! This binary holds exactly one test so the counting global allocator
//! observes only the measured region (the libtest harness idles while
//! the single test runs); the numeric parity of the compiled path is
//! pinned separately in `grad.rs`'s unit tests.

use flexsfu_core::boundary::BoundarySpec;
use flexsfu_core::PwlFunction;
use flexsfu_funcs::Gelu;
use flexsfu_optim::{GradWorkspace, SampledProblem};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// System allocator with global counters.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static NET_BYTES: AtomicI64 = AtomicI64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        NET_BYTES.fetch_add(layout.size() as i64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        NET_BYTES.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        NET_BYTES.fetch_add(new_size as i64 - layout.size() as i64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// An Adam-step-shaped perturbation: values wiggle, breakpoints and
/// shape stay — the optimizer's steady state.
fn perturbed(pwl: &PwlFunction, k: usize) -> PwlFunction {
    let v: Vec<f64> = pwl
        .values()
        .iter()
        .enumerate()
        .map(|(i, &v)| v + 1e-6 * ((i + k) % 7) as f64)
        .collect();
    PwlFunction::new(
        pwl.breakpoints().to_vec(),
        v,
        pwl.left_slope(),
        pwl.right_slope(),
    )
    .unwrap()
}

#[test]
fn compiled_grad_steps_do_not_grow_the_heap() {
    const STEPS: usize = 50;
    let problem = SampledProblem::new(&Gelu, -8.0, 8.0, 4096);
    let spec = BoundarySpec::free();
    let base = flexsfu_core::init::uniform_pwl(&Gelu, 8, (-6.0, 6.0));
    let steps: Vec<PwlFunction> = (0..STEPS).map(|k| perturbed(&base, k)).collect();

    // Baseline: the allocating path, for contrast.
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for pwl in &steps {
        let (loss, g) = problem.loss_and_grad(pwl, &spec);
        assert!(loss.is_finite() && g.d_breakpoints.len() == 8);
    }
    let allocs_fresh = ALLOC_CALLS.load(Ordering::Relaxed) - before;

    // Compiled path: warm the workspace, then measure.
    let mut ws = GradWorkspace::new();
    for pwl in steps.iter().take(3) {
        problem.loss_and_grad_compiled(pwl, &spec, &mut ws);
    }
    let before_calls = ALLOC_CALLS.load(Ordering::Relaxed);
    let before_net = NET_BYTES.load(Ordering::Relaxed);
    let mut acc = 0.0;
    for pwl in &steps {
        acc += problem.loss_and_grad_compiled(pwl, &spec, &mut ws);
    }
    let d_calls = ALLOC_CALLS.load(Ordering::Relaxed) - before_calls;
    let d_net = NET_BYTES.load(Ordering::Relaxed) - before_net;
    assert!(acc.is_finite());

    // No net heap growth across steps, and (beyond stray harness
    // activity) no per-step allocation at all — the fresh path pays
    // dozens of allocations per step.
    assert_eq!(d_net, 0, "heap grew by {d_net} bytes over {STEPS} steps");
    assert!(
        d_calls <= 2,
        "warm compiled steps allocated {d_calls} times over {STEPS} steps \
         (allocating path: {allocs_fresh})"
    );
    assert!(
        allocs_fresh as f64 >= 50.0 * d_calls.max(1) as f64,
        "compiled path should allocate orders of magnitude less \
         (fresh {allocs_fresh} vs compiled {d_calls})"
    );
}
