//! # flexsfu-optim
//!
//! The Flex-SFU breakpoint optimization algorithm (paper, Section IV).
//!
//! Starting from uniformly distributed breakpoints with exact function
//! values, the optimizer:
//!
//! 1. minimizes the sampled integral-MSE loss with [`Adam`]
//!    (`lr = 0.1`, `β = (0.9, 0.999)`) under a [`ReduceLrOnPlateau`]
//!    schedule, with analytic gradients w.r.t. every breakpoint *and*
//!    value ([`grad::SampledProblem`]);
//! 2. escapes local minima by **removing** the breakpoint with minimal
//!    removal loss and **re-inserting** one at the midpoint of the segment
//!    with maximal insertion loss ([`heuristics`]);
//! 3. retrains with a decayed learning rate, iterating until the
//!    remove/insert pair converges.
//!
//! Boundary segments stay tied to the target function's asymptotes
//! throughout (`flexsfu_core::boundary`), so the fitted function remains
//! bounded outside the interval.
//!
//! The [`baselines`] module re-implements the approximation families the
//! paper compares against (uniform PWL, least-squares-valued uniform PWL,
//! pure LUT) and embeds the published error figures of Table II's
//! reference rows.
//!
//! # Examples
//!
//! ```no_run
//! use flexsfu_optim::{optimize, OptimizeConfig};
//! use flexsfu_funcs::Gelu;
//!
//! let result = optimize(&Gelu, OptimizeConfig::new(16));
//! println!("GELU 16-breakpoint MSE: {:.3e}", result.report.mse);
//! ```

pub mod adam;
pub mod baselines;
pub mod grad;
pub mod heuristics;
pub mod optimizer;
pub mod quick;
pub mod refit;
pub mod scheduler;

pub use adam::Adam;
pub use grad::{GradWorkspace, Gradient, SampledProblem};
pub use optimizer::{optimize, InitStrategy, OptimizeConfig, OptimizeResult};
pub use quick::quick_nonuniform;
pub use scheduler::ReduceLrOnPlateau;
