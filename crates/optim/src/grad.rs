//! Analytic gradients of the sampled MSE loss.
//!
//! The loss the paper minimizes is the integral MSE; we discretize it on a
//! dense uniform grid (the targets `f(xₖ)` are precomputed once) and
//! differentiate the piecewise-linear interpolant analytically with respect
//! to every breakpoint `pᵢ`, value `vᵢ` and the free boundary slopes. For
//! a sample `x` inside inner segment `i` with `t = (x − pᵢ)/Δ`,
//! `Δ = p_{i+1} − pᵢ`:
//!
//! ```text
//! ∂f̂/∂vᵢ     = 1 − t                ∂f̂/∂v_{i+1} = t
//! ∂f̂/∂pᵢ     = (v_{i+1} − vᵢ)·(x − p_{i+1})/Δ²
//! ∂f̂/∂p_{i+1} = −(v_{i+1} − vᵢ)·(x − pᵢ)/Δ²
//! ```
//!
//! Samples in the outer segments differentiate through the anchor
//! breakpoint, its value and (when free) the boundary slope. Asymptote-tied
//! boundaries contribute a chain-rule term `∂v/∂p = slope` instead.

use flexsfu_core::boundary::BoundarySpec;
use flexsfu_core::{CompiledPwl, PwlEvaluator, PwlFunction};
use flexsfu_funcs::Activation;

/// Gradient of the sampled loss with respect to each parameter family.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Gradient {
    /// ∂L/∂pᵢ for every breakpoint.
    pub d_breakpoints: Vec<f64>,
    /// ∂L/∂vᵢ for every value (zeroed for asymptote-tied ends).
    pub d_values: Vec<f64>,
    /// ∂L/∂ml (zero when the left boundary is tied).
    pub d_left_slope: f64,
    /// ∂L/∂mr (zero when the right boundary is tied).
    pub d_right_slope: f64,
}

/// Reusable state for [`SampledProblem::loss_and_grad_compiled`]: the
/// compiled engine plus every buffer one loss+gradient evaluation needs.
///
/// [`SampledProblem::loss_and_grad`] compiles the function and allocates
/// its value/segment/gradient buffers afresh on every call — fine for a
/// handful of calls, pure allocator traffic inside an Adam loop that
/// evaluates thousands of steps over a fixed-shape function. Holding a
/// workspace across steps recompiles **in place**
/// ([`CompiledPwl::refill_from_pwl`]) and reuses every buffer: after the
/// first call, steps over a same-shaped function perform no heap
/// allocation at all (pinned by `tests/compiled_grad.rs`).
#[derive(Debug, Clone, Default)]
pub struct GradWorkspace {
    engine: Option<CompiledPwl>,
    ys: Vec<f64>,
    segs: Vec<u32>,
    grad: Gradient,
}

impl GradWorkspace {
    /// An empty workspace; buffers size themselves on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The gradient written by the last
    /// [`SampledProblem::loss_and_grad_compiled`] call.
    pub fn gradient(&self) -> &Gradient {
        &self.grad
    }
}

/// A fixed sample grid with precomputed targets — the discretized
/// `L_[a,b]` the optimizer differentiates.
#[derive(Debug, Clone)]
pub struct SampledProblem {
    xs: Vec<f64>,
    targets: Vec<f64>,
    range: (f64, f64),
}

impl SampledProblem {
    /// Samples `f` at `m` uniform points over `[a, b]`.
    ///
    /// # Panics
    ///
    /// Panics if `m < 2` or `a >= b`.
    pub fn new(f: &dyn Activation, a: f64, b: f64, m: usize) -> Self {
        assert!(m >= 2, "need at least two samples");
        assert!(a < b, "invalid range [{a}, {b}]");
        let xs: Vec<f64> = (0..m)
            .map(|k| a + (b - a) * k as f64 / (m - 1) as f64)
            .collect();
        let targets = xs.iter().map(|&x| f.eval(x)).collect();
        Self {
            xs,
            targets,
            range: (a, b),
        }
    }

    /// The fitted interval.
    pub fn range(&self) -> (f64, f64) {
        self.range
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// The precomputed target `f(xₖ)` of sample `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn target(&self, k: usize) -> f64 {
        self.targets[k]
    }

    /// The sample position `xₖ`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn sample(&self, k: usize) -> f64 {
        self.xs[k]
    }

    /// Whether the grid is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The sample positions, for batch evaluation by consumers.
    pub fn samples(&self) -> &[f64] {
        &self.xs
    }

    /// The precomputed targets, index-aligned with [`Self::samples`].
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// The sampled MSE of `pwl` against the precomputed targets.
    ///
    /// Compiles the function once and routes through the batch engine;
    /// see [`Self::loss_compiled`] when a [`CompiledPwl`] is already at
    /// hand.
    pub fn loss(&self, pwl: &PwlFunction) -> f64 {
        self.loss_compiled(&pwl.compile())
    }

    /// The sampled MSE evaluated through an already-compiled engine.
    pub fn loss_compiled(&self, engine: &CompiledPwl) -> f64 {
        let mut ys = vec![0.0; self.xs.len()];
        engine.eval_into(&self.xs, &mut ys);
        let mut acc = 0.0;
        for (&y, &t) in ys.iter().zip(&self.targets) {
            let e = y - t;
            acc += e * e;
        }
        acc / self.xs.len() as f64
    }

    /// Computes the loss and its analytic gradient, applying the boundary
    /// ties of `spec` (tied sides: value gradient folded into the
    /// breakpoint via the chain rule, slope gradient zeroed).
    ///
    /// The hot loop is batch-first: the function is compiled once, and a
    /// single widened [`CompiledPwl::eval_and_segments_into`] sweep
    /// produces every sample's value *and* segment index through the SIMD
    /// lane kernels (the scalar path used to pay a binary search twice
    /// per sample — once for the value, once for the region); the
    /// gradient accumulation then reuses both.
    pub fn loss_and_grad(&self, pwl: &PwlFunction, spec: &BoundarySpec) -> (f64, Gradient) {
        let mut ws = GradWorkspace::new();
        let loss = self.loss_and_grad_compiled(pwl, spec, &mut ws);
        (loss, ws.grad)
    }

    /// [`Self::loss_and_grad`] through a caller-held [`GradWorkspace`]:
    /// identical math and bit-identical results, but the engine is
    /// recompiled in place and every buffer (values, segments, gradient)
    /// is reused across calls — the per-step allocation cost of an Adam
    /// loop drops to zero once the workspace is warm. The gradient lands
    /// in [`GradWorkspace::gradient`]; the sampled loss is returned.
    pub fn loss_and_grad_compiled(
        &self,
        pwl: &PwlFunction,
        spec: &BoundarySpec,
        ws: &mut GradWorkspace,
    ) -> f64 {
        let n = pwl.num_breakpoints();
        let p = pwl.breakpoints();
        let v = pwl.values();
        let (ml, mr) = (pwl.left_slope(), pwl.right_slope());
        ws.grad.d_breakpoints.clear();
        ws.grad.d_breakpoints.resize(n, 0.0);
        ws.grad.d_values.clear();
        ws.grad.d_values.resize(n, 0.0);
        let dp = &mut ws.grad.d_breakpoints;
        let dv = &mut ws.grad.d_values;
        let mut dml = 0.0;
        let mut dmr = 0.0;
        let mut loss = 0.0;

        let engine = match &mut ws.engine {
            Some(engine) => {
                engine.refill_from_pwl(pwl);
                engine
            }
            None => ws.engine.insert(CompiledPwl::from_pwl(pwl)),
        };
        ws.ys.resize(self.xs.len(), 0.0);
        ws.segs.resize(self.xs.len(), 0);
        engine.eval_and_segments_into(&self.xs, &mut ws.ys, &mut ws.segs);

        let inv_m = 1.0 / self.xs.len() as f64;
        for (((&x, &t), &y), &seg) in self.xs.iter().zip(&self.targets).zip(&ws.ys).zip(&ws.segs) {
            let s = seg as usize;
            let e = y - t;
            loss += e * e;
            // d(e²)/dθ = 2e · df̂/dθ ; fold the 1/M and 2 at the end.
            // Table order: segment 0 = left outer, n = right outer,
            // s ∈ 1..n = inner segment s − 1.
            if s == 0 {
                dv[0] += e;
                dp[0] += e * -ml;
                dml += e * (x - p[0]);
            } else if s == n {
                dv[n - 1] += e;
                dp[n - 1] += e * -mr;
                dmr += e * (x - p[n - 1]);
            } else {
                let i = s - 1;
                let delta = p[i + 1] - p[i];
                let tt = (x - p[i]) / delta;
                let dvdiff = v[i + 1] - v[i];
                dv[i] += e * (1.0 - tt);
                dv[i + 1] += e * tt;
                dp[i] += e * dvdiff * (x - p[i + 1]) / (delta * delta);
                dp[i + 1] += e * -dvdiff * (x - p[i]) / (delta * delta);
            }
        }
        let scale = 2.0 * inv_m;
        dp.iter_mut().for_each(|g| *g *= scale);
        dv.iter_mut().for_each(|g| *g *= scale);
        dml *= scale;
        dmr *= scale;

        // Boundary ties: v = slope·p + offset ⇒ ∂L/∂p += slope·∂L/∂v, the
        // value and slope stop being independent parameters.
        if let Some((slope, _)) = spec.left.tie(p[0]) {
            dp[0] += slope * dv[0];
            dv[0] = 0.0;
            dml = 0.0;
        }
        if let Some((slope, _)) = spec.right.tie(p[n - 1]) {
            dp[n - 1] += slope * dv[n - 1];
            dv[n - 1] = 0.0;
            dmr = 0.0;
        }

        ws.grad.d_left_slope = dml;
        ws.grad.d_right_slope = dmr;
        loss * inv_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfu_core::init::{uniform_pwl, uniform_pwl_asymptotic};
    use flexsfu_funcs::{Gelu, Sigmoid, Tanh};

    /// Central finite-difference check of one parameter.
    fn fd_check(
        problem: &SampledProblem,
        pwl: &PwlFunction,
        perturb: impl Fn(&PwlFunction, f64) -> PwlFunction,
        analytic: f64,
        label: &str,
    ) {
        let h = 1e-6;
        let plus = problem.loss(&perturb(pwl, h));
        let minus = problem.loss(&perturb(pwl, -h));
        let fd = (plus - minus) / (2.0 * h);
        assert!(
            (fd - analytic).abs() < 1e-4 * (1.0 + analytic.abs()),
            "{label}: fd {fd} vs analytic {analytic}"
        );
    }

    fn rebuild(pwl: &PwlFunction, p: Vec<f64>, v: Vec<f64>, ml: f64, mr: f64) -> PwlFunction {
        let _ = pwl;
        PwlFunction::new(p, v, ml, mr).unwrap()
    }

    #[test]
    fn gradients_match_finite_differences_free_boundaries() {
        let pwl = uniform_pwl(&Gelu, 8, (-6.0, 6.0));
        let problem = SampledProblem::new(&Gelu, -8.0, 8.0, 2001);
        let spec = BoundarySpec::free();
        let (_, g) = problem.loss_and_grad(&pwl, &spec);

        for i in 0..pwl.num_breakpoints() {
            fd_check(
                &problem,
                &pwl,
                |w, h| {
                    let mut p = w.breakpoints().to_vec();
                    p[i] += h;
                    rebuild(w, p, w.values().to_vec(), w.left_slope(), w.right_slope())
                },
                g.d_breakpoints[i],
                &format!("dp[{i}]"),
            );
            fd_check(
                &problem,
                &pwl,
                |w, h| {
                    let mut v = w.values().to_vec();
                    v[i] += h;
                    rebuild(
                        w,
                        w.breakpoints().to_vec(),
                        v,
                        w.left_slope(),
                        w.right_slope(),
                    )
                },
                g.d_values[i],
                &format!("dv[{i}]"),
            );
        }
        fd_check(
            &problem,
            &pwl,
            |w, h| {
                rebuild(
                    w,
                    w.breakpoints().to_vec(),
                    w.values().to_vec(),
                    w.left_slope() + h,
                    w.right_slope(),
                )
            },
            g.d_left_slope,
            "dml",
        );
        fd_check(
            &problem,
            &pwl,
            |w, h| {
                rebuild(
                    w,
                    w.breakpoints().to_vec(),
                    w.values().to_vec(),
                    w.left_slope(),
                    w.right_slope() + h,
                )
            },
            g.d_right_slope,
            "dmr",
        );
    }

    #[test]
    fn tied_boundary_gradient_includes_chain_rule() {
        // With asymptotic ties, perturbing p0 also moves v0 = ml·p0 + c.
        let spec = BoundarySpec::from_activation(&Tanh);
        let pwl = uniform_pwl_asymptotic(&Tanh, 6, (-5.0, 5.0));
        let problem = SampledProblem::new(&Tanh, -6.0, 6.0, 1501);
        let (_, g) = problem.loss_and_grad(&pwl, &spec);
        assert_eq!(g.d_values[0], 0.0);
        assert_eq!(g.d_left_slope, 0.0);

        // Finite difference moving p0 *and* re-tying v0.
        let h = 1e-6;
        let move_p0 = |h: f64| {
            let mut p = pwl.breakpoints().to_vec();
            p[0] += h;
            let (slope, v0) = spec.left.tie(p[0]).unwrap();
            let mut v = pwl.values().to_vec();
            v[0] = v0;
            PwlFunction::new(p, v, slope, pwl.right_slope()).unwrap()
        };
        let fd = (problem.loss(&move_p0(h)) - problem.loss(&move_p0(-h))) / (2.0 * h);
        assert!(
            (fd - g.d_breakpoints[0]).abs() < 1e-4 * (1.0 + fd.abs()),
            "tied dp0: fd {fd} vs analytic {}",
            g.d_breakpoints[0]
        );
    }

    #[test]
    fn compiled_workspace_path_is_bit_identical_across_shapes() {
        // The workspace recompiles in place; reusing one workspace across
        // functions of different shapes must give exactly the fresh
        // path's loss and gradient every time.
        let problem = SampledProblem::new(&Gelu, -8.0, 8.0, 801);
        let spec = BoundarySpec::from_activation(&Gelu);
        let shapes = [
            uniform_pwl(&Gelu, 6, (-6.0, 6.0)),
            uniform_pwl(&Gelu, 12, (-7.0, 7.0)),
            uniform_pwl(&Gelu, 6, (-5.0, 5.0)),
        ];
        let mut ws = GradWorkspace::new();
        for pwl in &shapes {
            let (want_loss, want_grad) = problem.loss_and_grad(pwl, &spec);
            let loss = problem.loss_and_grad_compiled(pwl, &spec, &mut ws);
            assert_eq!(loss.to_bits(), want_loss.to_bits());
            assert_eq!(ws.gradient(), &want_grad);
        }
    }

    #[test]
    fn loss_matches_manual_mse() {
        let pwl = uniform_pwl(&Sigmoid, 4, (-8.0, 8.0));
        let problem = SampledProblem::new(&Sigmoid, -8.0, 8.0, 101);
        let mut manual = 0.0;
        for k in 0..101 {
            let x = -8.0 + 16.0 * k as f64 / 100.0;
            let e = pwl.eval(x) - Sigmoid.eval(x);
            manual += e * e;
        }
        manual /= 101.0;
        assert!((problem.loss(&pwl) - manual).abs() < 1e-15);
    }

    #[test]
    fn gradient_descends() {
        // A tiny explicit gradient-descent loop must reduce the loss.
        let spec = BoundarySpec::from_activation(&Gelu);
        let mut pwl = uniform_pwl_asymptotic(&Gelu, 8, (-8.0, 8.0));
        let problem = SampledProblem::new(&Gelu, -8.0, 8.0, 513);
        let initial = problem.loss(&pwl);
        for _ in 0..200 {
            let (_, g) = problem.loss_and_grad(&pwl, &spec);
            let mut p = pwl.breakpoints().to_vec();
            let mut v = pwl.values().to_vec();
            for i in 0..p.len() {
                p[i] -= 0.5 * g.d_breakpoints[i];
                v[i] -= 0.5 * g.d_values[i];
            }
            // Keep sorted (crude projection for the test).
            for i in 1..p.len() {
                if p[i] <= p[i - 1] {
                    p[i] = p[i - 1] + 1e-6;
                }
            }
            // Re-tie boundary values.
            if let Some((_, v0)) = spec.left.tie(p[0]) {
                v[0] = v0;
            }
            if let Some((_, vn)) = spec.right.tie(p[p.len() - 1]) {
                let n = v.len();
                v[n - 1] = vn;
            }
            pwl = PwlFunction::new(p, v, pwl.left_slope(), pwl.right_slope()).unwrap();
        }
        let final_loss = problem.loss(&pwl);
        assert!(
            final_loss < initial * 0.5,
            "descent failed: {initial} → {final_loss}"
        );
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn rejects_tiny_grid() {
        SampledProblem::new(&Gelu, -1.0, 1.0, 1);
    }
}
