//! Breakpoint removal and insertion heuristics (paper, Section IV).
//!
//! To escape sub-optimal local minima, the optimizer periodically *removes*
//! the breakpoint whose absence hurts least and *re-inserts* one where the
//! error is concentrated:
//!
//! * **removal loss** `ℓᵢʳᵐ = L_[a,b](f̂ without pᵢ, f)` — the global loss
//!   with breakpoint `i` deleted; the breakpoint with minimal `ℓʳᵐ` is
//!   removed;
//! * **insertion loss** `ℓᵢⁱⁿˢ = (p_{i+1} − pᵢ) · L_[pᵢ,p_{i+1}](f̂, f)` —
//!   the *unnormalized* squared error mass of segment `i`; a breakpoint is
//!   inserted at the midpoint of the segment with maximal `ℓⁱⁿˢ`, with the
//!   midpoint value `(vᵢ + v_{i+1})/2` (which is exactly `f̂` at that
//!   point).

use flexsfu_core::boundary::BoundarySpec;
use flexsfu_core::loss::{integral_mse, piece_sse_compiled};
use flexsfu_core::PwlFunction;
use flexsfu_funcs::Activation;

/// Re-applies boundary ties after a structural change: outer values move
/// onto the asymptote anchored at the (possibly new) end breakpoints.
pub fn retie_boundaries(pwl: &PwlFunction, spec: &BoundarySpec) -> PwlFunction {
    let p = pwl.breakpoints().to_vec();
    let mut v = pwl.values().to_vec();
    let mut ml = pwl.left_slope();
    let mut mr = pwl.right_slope();
    let n = p.len();
    if let Some((m, v0)) = spec.left.tie(p[0]) {
        ml = m;
        v[0] = v0;
    }
    if let Some((m, vn)) = spec.right.tie(p[n - 1]) {
        mr = m;
        v[n - 1] = vn;
    }
    PwlFunction::new(p, v, ml, mr).expect("retying preserves validity")
}

/// Removal losses `ℓᵢʳᵐ` for every breakpoint (index-aligned).
///
/// Breakpoints whose removal would leave fewer than two are assigned
/// `f64::INFINITY`.
pub fn removal_losses(
    pwl: &PwlFunction,
    f: &dyn Activation,
    range: (f64, f64),
    spec: &BoundarySpec,
) -> Vec<f64> {
    let (a, b) = range;
    (0..pwl.num_breakpoints())
        .map(|i| match pwl.without_breakpoint(i) {
            Ok(candidate) => integral_mse(&retie_boundaries(&candidate, spec), f, a, b),
            Err(_) => f64::INFINITY,
        })
        .collect()
}

/// The index with minimal removal loss — `p_remove = argmin ℓᵢʳᵐ`.
pub fn best_removal(
    pwl: &PwlFunction,
    f: &dyn Activation,
    range: (f64, f64),
    spec: &BoundarySpec,
) -> (usize, f64) {
    let losses = removal_losses(pwl, f, range, spec);
    let (mut best_i, mut best) = (0, f64::INFINITY);
    for (i, &l) in losses.iter().enumerate() {
        if l < best {
            best = l;
            best_i = i;
        }
    }
    (best_i, best)
}

/// Insertion losses `ℓᵢⁱⁿˢ` for every *inner* segment `i`
/// (between `pᵢ` and `p_{i+1}`), index-aligned with segments `0..n-1`.
pub fn insertion_losses(pwl: &PwlFunction, f: &dyn Activation) -> Vec<f64> {
    let p = pwl.breakpoints();
    let engine = pwl.compile();
    (0..p.len() - 1)
        .map(|i| piece_sse_compiled(&engine, f, p[i], p[i + 1]))
        .collect()
}

/// The midpoint `(p, v)` of the segment with maximal insertion loss.
pub fn best_insertion(pwl: &PwlFunction, f: &dyn Activation) -> (f64, f64, f64) {
    let losses = insertion_losses(pwl, f);
    let (mut best_i, mut best) = (0, f64::NEG_INFINITY);
    for (i, &l) in losses.iter().enumerate() {
        if l > best {
            best = l;
            best_i = i;
        }
    }
    let p = pwl.breakpoints();
    let v = pwl.values();
    let pm = 0.5 * (p[best_i] + p[best_i + 1]);
    let vm = 0.5 * (v[best_i] + v[best_i + 1]);
    (pm, vm, best)
}

/// One remove-then-insert move: removes the argmin-removal-loss breakpoint,
/// re-ties boundaries, then inserts at the argmax-insertion-loss midpoint.
///
/// Returns the new function together with `(removed_index, inserted_at)`
/// so the caller can detect convergence of the pair.
pub fn remove_insert_move(
    pwl: &PwlFunction,
    f: &dyn Activation,
    range: (f64, f64),
    spec: &BoundarySpec,
) -> (PwlFunction, usize, f64) {
    let (ri, _) = best_removal(pwl, f, range, spec);
    let removed = retie_boundaries(
        &pwl.without_breakpoint(ri)
            .expect("optimizer maintains ≥3 breakpoints before moves"),
        spec,
    );
    let (pm, vm, _) = best_insertion(&removed, f);
    let inserted = removed
        .with_breakpoint(pm, vm)
        .expect("midpoint is strictly inside a segment");
    (retie_boundaries(&inserted, spec), ri, pm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfu_core::init::{uniform_pwl, uniform_pwl_asymptotic};
    use flexsfu_funcs::{Gelu, Relu, Tanh};

    #[test]
    fn removal_prefers_redundant_breakpoints() {
        // ReLU is exactly linear on both sides of 0: a breakpoint at x = 4
        // is redundant, one at 0 is essential.
        let pwl = uniform_pwl(&Relu, 5, (-8.0, 8.0)); // bps at -8,-4,0,4,8
        let losses = removal_losses(&pwl, &Relu, (-8.0, 8.0), &BoundarySpec::free());
        // Removing the kink breakpoint (index 2) must hurt the most among
        // interior candidates.
        assert!(losses[2] > losses[1]);
        assert!(losses[2] > losses[3]);
        let (best, _) = best_removal(&pwl, &Relu, (-8.0, 8.0), &BoundarySpec::free());
        assert_ne!(best, 2);
    }

    #[test]
    fn insertion_targets_high_curvature() {
        // For GELU on [-8, 8] with few breakpoints the error mass sits in
        // the curved region around the origin, not in the flat tails.
        let pwl = uniform_pwl(&Gelu, 5, (-8.0, 8.0)); // segments of width 4
        let losses = insertion_losses(&pwl, &Gelu);
        let max_i = losses
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        // Middle segments [-4,0] or [0,4] carry the most error.
        assert!(max_i == 1 || max_i == 2, "max segment was {max_i}");
        let (pm, vm, _) = best_insertion(&pwl, &Gelu);
        assert!(pm.abs() <= 2.0, "insertion point {pm}");
        assert!(vm.is_finite());
    }

    #[test]
    fn remove_insert_keeps_breakpoint_count() {
        let spec = BoundarySpec::from_activation(&Tanh);
        let pwl = uniform_pwl_asymptotic(&Tanh, 8, (-8.0, 8.0));
        let (moved, ri, pm) = remove_insert_move(&pwl, &Tanh, (-8.0, 8.0), &spec);
        assert_eq!(moved.num_breakpoints(), 8);
        assert!(ri < 8);
        assert!((-8.0..=8.0).contains(&pm));
    }

    #[test]
    fn remove_insert_does_not_catastrophically_hurt() {
        let spec = BoundarySpec::from_activation(&Gelu);
        let pwl = uniform_pwl_asymptotic(&Gelu, 8, (-8.0, 8.0));
        let before = integral_mse(&pwl, &Gelu, -8.0, 8.0);
        let (moved, _, _) = remove_insert_move(&pwl, &Gelu, (-8.0, 8.0), &spec);
        let after = integral_mse(&moved, &Gelu, -8.0, 8.0);
        // The move may transiently raise the loss (it's followed by
        // retraining) but not explode it.
        assert!(after < before * 50.0, "before {before}, after {after}");
    }

    #[test]
    fn retie_moves_outer_values_onto_asymptote() {
        let spec = BoundarySpec::from_activation(&Tanh);
        let pwl = uniform_pwl(&Tanh, 5, (-6.0, 6.0)); // exact values at ends
        let tied = retie_boundaries(&pwl, &spec);
        assert_eq!(tied.values()[0], -1.0);
        assert_eq!(tied.values()[4], 1.0);
        assert_eq!(tied.left_slope(), 0.0);
        assert_eq!(tied.right_slope(), 0.0);
    }

    #[test]
    fn two_breakpoint_function_cannot_lose_more() {
        let pwl = uniform_pwl(&Tanh, 2, (-1.0, 1.0));
        let losses = removal_losses(&pwl, &Tanh, (-1.0, 1.0), &BoundarySpec::free());
        assert!(losses.iter().all(|l| l.is_infinite()));
    }
}
