//! The Plateau learning-rate scheduler used by the paper.

/// Multiplies the learning rate by `factor` whenever the loss has not
/// improved (relatively, by more than `threshold`) for `patience`
/// consecutive steps — PyTorch's `ReduceLROnPlateau` semantics, which is
/// what the paper pairs with Adam.
///
/// # Examples
///
/// ```
/// use flexsfu_optim::ReduceLrOnPlateau;
///
/// let mut sched = ReduceLrOnPlateau::new(0.1, 0.5, 2, 1e-6);
/// assert_eq!(sched.step(1.0), 0.1);   // first observation
/// assert_eq!(sched.step(1.0), 0.1);   // stall 1
/// assert_eq!(sched.step(1.0), 0.1);   // stall 2 → patience exhausted...
/// assert_eq!(sched.step(1.0), 0.05);  // ...reduce on the next stall
/// ```
#[derive(Debug, Clone)]
pub struct ReduceLrOnPlateau {
    lr: f64,
    factor: f64,
    patience: usize,
    min_lr: f64,
    threshold: f64,
    best: f64,
    stall: usize,
}

impl ReduceLrOnPlateau {
    /// Relative improvement below which a step counts as a stall.
    const DEFAULT_THRESHOLD: f64 = 1e-4;

    /// Creates a scheduler starting at `lr`, shrinking by `factor` after
    /// `patience` stalled steps, never below `min_lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`, `factor` not in `(0, 1)`, or `min_lr < 0`.
    pub fn new(lr: f64, factor: f64, patience: usize, min_lr: f64) -> Self {
        assert!(lr > 0.0, "initial lr must be positive");
        assert!(
            (0.0..1.0).contains(&factor) && factor > 0.0,
            "factor must be in (0, 1)"
        );
        assert!(min_lr >= 0.0, "min_lr must be non-negative");
        Self {
            lr,
            factor,
            patience,
            min_lr,
            threshold: Self::DEFAULT_THRESHOLD,
            best: f64::INFINITY,
            stall: 0,
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f64 {
        self.lr
    }

    /// Whether the learning rate has bottomed out at `min_lr`.
    pub fn exhausted(&self) -> bool {
        self.lr <= self.min_lr
    }

    /// Records a loss observation, possibly reducing the learning rate.
    /// Returns the (possibly updated) learning rate.
    pub fn step(&mut self, loss: f64) -> f64 {
        if loss < self.best * (1.0 - self.threshold) {
            self.best = loss;
            self.stall = 0;
        } else {
            self.stall += 1;
            if self.stall > self.patience {
                self.lr = (self.lr * self.factor).max(self.min_lr);
                self.stall = 0;
            }
        }
        self.lr
    }

    /// Resets the improvement tracker (used between optimization rounds,
    /// keeping the current learning rate).
    pub fn reset_tracking(&mut self) {
        self.best = f64::INFINITY;
        self.stall = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improving_loss_keeps_lr() {
        let mut s = ReduceLrOnPlateau::new(0.1, 0.5, 3, 1e-6);
        let mut loss = 1.0;
        for _ in 0..50 {
            loss *= 0.9;
            assert_eq!(s.step(loss), 0.1);
        }
    }

    #[test]
    fn stalls_reduce_lr_down_to_min() {
        let mut s = ReduceLrOnPlateau::new(0.1, 0.1, 0, 1e-3);
        s.step(1.0);
        assert!((s.step(1.0) - 0.01).abs() < 1e-12); // every stalled step reduces
        assert!((s.step(1.0) - 1e-3).abs() < 1e-12);
        assert!((s.step(1.0) - 1e-3).abs() < 1e-12); // clamped at min
        assert!(s.exhausted());
    }

    #[test]
    fn tiny_improvements_count_as_stalls() {
        let mut s = ReduceLrOnPlateau::new(0.1, 0.5, 1, 1e-9);
        s.step(1.0);
        // Improvement below the relative threshold: a stall.
        s.step(1.0 - 1e-9);
        let lr = s.step(1.0 - 2e-9);
        assert_eq!(lr, 0.05);
    }

    #[test]
    fn reset_tracking_clears_stall_counter() {
        let mut s = ReduceLrOnPlateau::new(0.1, 0.5, 2, 1e-9);
        s.step(1.0);
        s.step(1.0);
        s.reset_tracking();
        // Two more stalls tolerated again before reduction.
        s.step(2.0);
        s.step(2.0);
        assert_eq!(s.lr(), 0.1);
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn rejects_factor_of_one() {
        ReduceLrOnPlateau::new(0.1, 1.0, 1, 0.0);
    }
}
