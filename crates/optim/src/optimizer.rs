//! The full Flex-SFU optimization pipeline.
//!
//! Paper, "Optimization strategy": initialize with uniformly distributed
//! breakpoints → optimize with Adam until convergence → remove and insert
//! one breakpoint → retrain with a lower learning rate → reiterate until
//! the removal/insertion points converge.

use crate::adam::Adam;
use crate::grad::SampledProblem;
use crate::heuristics::{remove_insert_move, retie_boundaries};
use crate::refit::refit_values;
use crate::scheduler::ReduceLrOnPlateau;
use flexsfu_core::boundary::BoundarySpec;
use flexsfu_core::init::{chebyshev_pwl, uniform_pwl_asymptotic};
use flexsfu_core::loss::{integral_mse, LossReport};
use flexsfu_core::PwlFunction;
use flexsfu_funcs::Activation;

/// Breakpoint initialization strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitStrategy {
    /// Uniformly spaced breakpoints (the paper's initialization).
    #[default]
    Uniform,
    /// Chebyshev (Gauss-Lobatto) nodes, denser near the interval ends —
    /// an alternative basin for multi-start runs.
    Chebyshev,
}

/// Configuration of the optimization pipeline.
///
/// The defaults mirror the paper: Adam with `lr = 0.1`, momenta
/// `(0.9, 0.999)`, a plateau scheduler, and iterated remove/insert rounds
/// at decaying learning rates.
///
/// # Examples
///
/// ```
/// use flexsfu_optim::OptimizeConfig;
///
/// let cfg = OptimizeConfig::new(32).with_range(-4.0, 4.0).with_samples(1024);
/// assert_eq!(cfg.num_breakpoints, 32);
/// assert_eq!(cfg.range, Some((-4.0, 4.0)));
/// ```
#[derive(Debug, Clone)]
pub struct OptimizeConfig {
    /// Number of breakpoints `n` (the paper sweeps 4–64).
    pub num_breakpoints: usize,
    /// Fitting interval; defaults to the activation's
    /// [`default_range`](flexsfu_funcs::Activation::default_range).
    pub range: Option<(f64, f64)>,
    /// Boundary handling; defaults to the activation's asymptotes.
    pub boundary: Option<BoundarySpec>,
    /// Samples in the discretized loss grid.
    pub samples: usize,
    /// Initial Adam learning rate.
    pub lr: f64,
    /// Adam momenta `(β₁, β₂)`.
    pub betas: (f64, f64),
    /// Maximum Adam steps per training round.
    pub max_steps: usize,
    /// Plateau scheduler: LR multiplier on stall.
    pub plateau_factor: f64,
    /// Plateau scheduler: stalled steps tolerated before reduction.
    pub plateau_patience: usize,
    /// Training round ends when the LR decays below this.
    pub min_lr: f64,
    /// Maximum remove/insert rounds after the initial training.
    pub max_rounds: usize,
    /// LR decay applied at each retraining round.
    pub round_lr_decay: f64,
    /// Breakpoint initialization strategy.
    pub init: InitStrategy,
    /// Whether the remove/insert escape heuristic runs between rounds
    /// (disable for ablations).
    pub enable_remove_insert: bool,
    /// Whether exact least-squares value refits run (disable for
    /// ablations; the paper's plain-Adam configuration).
    pub enable_refit: bool,
}

impl OptimizeConfig {
    /// A paper-faithful configuration for `n` breakpoints.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` (the remove/insert heuristics need at least three
    /// breakpoints to move one).
    pub fn new(num_breakpoints: usize) -> Self {
        assert!(
            num_breakpoints >= 3,
            "optimizer needs at least 3 breakpoints, got {num_breakpoints}"
        );
        Self {
            num_breakpoints,
            range: None,
            boundary: None,
            samples: 4096,
            lr: 0.1,
            betas: (0.9, 0.999),
            max_steps: 1500,
            plateau_factor: 0.5,
            plateau_patience: 40,
            min_lr: 1e-4,
            max_rounds: 8,
            round_lr_decay: 0.7,
            init: InitStrategy::Uniform,
            enable_remove_insert: true,
            enable_refit: true,
        }
    }

    /// Overrides the fitting interval.
    pub fn with_range(mut self, a: f64, b: f64) -> Self {
        self.range = Some((a, b));
        self
    }

    /// Overrides the loss-grid density.
    pub fn with_samples(mut self, samples: usize) -> Self {
        self.samples = samples;
        self
    }

    /// Overrides the boundary specification.
    pub fn with_boundary(mut self, spec: BoundarySpec) -> Self {
        self.boundary = Some(spec);
        self
    }

    /// Overrides the initialization strategy.
    pub fn with_init(mut self, init: InitStrategy) -> Self {
        self.init = init;
        self
    }

    /// A fast low-accuracy preset for tests and smoke runs.
    pub fn quick(num_breakpoints: usize) -> Self {
        let mut c = Self::new(num_breakpoints);
        c.samples = 768;
        c.max_steps = 250;
        c.max_rounds = 2;
        c
    }
}

/// Outcome of an optimization run.
#[derive(Debug, Clone)]
pub struct OptimizeResult {
    /// The best function found (lowest integral MSE).
    pub pwl: PwlFunction,
    /// MSE/MAE/AAE of `pwl` on the fitting interval.
    pub report: LossReport,
    /// Total Adam steps taken across all rounds.
    pub steps: usize,
    /// Remove/insert rounds executed.
    pub rounds: usize,
    /// Integral MSE after each round (round 0 = initial training).
    pub history: Vec<f64>,
}

/// Minimum relative breakpoint gap enforced by the sort projection.
const MIN_GAP_FRACTION: f64 = 1e-5;

/// Steps between exact least-squares value refits inside a training round
/// (alternating minimization: Adam moves breakpoints, the refit snaps
/// values to their conditional optimum).
const REFIT_EVERY: usize = 25;

/// Projects breakpoints back to a strictly increasing sequence inside
/// `[a, b]` after a gradient step.
fn project_sorted(p: &mut [f64], a: f64, b: f64) {
    let gap = (b - a) * MIN_GAP_FRACTION;
    for x in p.iter_mut() {
        *x = x.clamp(a, b);
    }
    for i in 1..p.len() {
        if p[i] < p[i - 1] + gap {
            p[i] = p[i - 1] + gap;
        }
    }
    // A forward sweep can push the tail past b; sweep backwards.
    let n = p.len();
    if p[n - 1] > b {
        p[n - 1] = b;
        for i in (0..n - 1).rev() {
            if p[i] > p[i + 1] - gap {
                p[i] = p[i + 1] - gap;
            }
        }
    }
}

/// One Adam training round at learning rate `lr`; returns the trained
/// function and the number of steps taken.
fn train_round(
    mut pwl: PwlFunction,
    problem: &SampledProblem,
    spec: &BoundarySpec,
    lr: f64,
    cfg: &OptimizeConfig,
) -> (PwlFunction, usize) {
    let n = pwl.num_breakpoints();
    let dim = 2 * n + 2; // p, v, ml, mr (tied entries get zero gradients)
    let mut adam = Adam::new(dim, lr, cfg.betas);
    let mut sched =
        ReduceLrOnPlateau::new(lr, cfg.plateau_factor, cfg.plateau_patience, cfg.min_lr);
    let (a, b) = problem.range();
    let mut best = (problem.loss(&pwl), pwl.clone());
    let mut steps = 0;
    // One workspace (engine + value/segment/gradient buffers) and one
    // pair of flattened vectors for the whole round: after the first
    // step the hot loop no longer touches the allocator.
    let mut ws = crate::grad::GradWorkspace::new();
    let mut params = Vec::with_capacity(dim);
    let mut grads = Vec::with_capacity(dim);

    for _ in 0..cfg.max_steps {
        let loss = problem.loss_and_grad_compiled(&pwl, spec, &mut ws);
        let g = ws.gradient();
        steps += 1;
        if loss < best.0 {
            best = (loss, pwl.clone());
        }

        // Flatten parameters.
        params.clear();
        params.extend_from_slice(pwl.breakpoints());
        params.extend_from_slice(pwl.values());
        params.push(pwl.left_slope());
        params.push(pwl.right_slope());
        grads.clear();
        grads.extend_from_slice(&g.d_breakpoints);
        grads.extend_from_slice(&g.d_values);
        grads.push(g.d_left_slope);
        grads.push(g.d_right_slope);

        adam.step(&mut params, &grads);

        // Unflatten + project + re-tie.
        let mut p = params[..n].to_vec();
        let v = params[n..2 * n].to_vec();
        let (ml, mr) = (params[2 * n], params[2 * n + 1]);
        project_sorted(&mut p, a, b);
        let candidate = PwlFunction::new(p, v, ml, mr).expect("projection keeps breakpoints valid");
        pwl = retie_boundaries(&candidate, spec);

        if cfg.enable_refit && steps % REFIT_EVERY == 0 {
            pwl = refit_values(&pwl, problem, spec);
        }

        let new_lr = sched.step(loss);
        if new_lr < adam.lr() {
            adam.set_lr(new_lr);
        }
        if sched.exhausted() {
            break;
        }
    }
    let (final_loss, _) = (problem.loss(&pwl), ());
    if final_loss < best.0 {
        best = (final_loss, pwl);
    }
    (best.1, steps)
}

/// Runs the full pipeline on activation `f`.
///
/// # Panics
///
/// Panics if the configured range is invalid.
///
/// # Examples
///
/// ```
/// use flexsfu_optim::{optimize, OptimizeConfig};
/// use flexsfu_funcs::Sigmoid;
///
/// let r = optimize(&Sigmoid, OptimizeConfig::quick(8));
/// assert!(r.report.mse < 1e-4);
/// ```
pub fn optimize(f: &dyn Activation, cfg: OptimizeConfig) -> OptimizeResult {
    let (a, b) = cfg.range.unwrap_or_else(|| f.default_range());
    // Tie a boundary to its asymptote only when the range actually
    // reaches it (narrow comparison ranges stay free, like prior works).
    let spec = cfg
        .boundary
        .unwrap_or_else(|| BoundarySpec::for_range(f, (a, b), 5e-3));
    let problem = SampledProblem::new(f, a, b, cfg.samples);

    // Start from the chosen grid with least-squares-optimal values.
    let init_pwl = match cfg.init {
        InitStrategy::Uniform => uniform_pwl_asymptotic(f, cfg.num_breakpoints, (a, b)),
        InitStrategy::Chebyshev => crate::heuristics::retie_boundaries(
            &chebyshev_pwl(f, cfg.num_breakpoints, (a, b)),
            &spec,
        ),
    };
    let mut pwl = if cfg.enable_refit {
        refit_values(&init_pwl, &problem, &spec)
    } else {
        init_pwl
    };
    // Adam's per-parameter step magnitude is ≈ lr; cap it at a fraction of
    // the breakpoint gap so dense grids are refined, not scrambled.
    let gap = (b - a) / (cfg.num_breakpoints - 1) as f64;
    let mut lr = cfg.lr.min(0.25 * gap);
    let mut total_steps = 0;
    let mut history = Vec::new();
    let mut best: Option<(f64, PwlFunction)> = None;
    let mut last_move: Option<(usize, f64)> = None;
    let mut rounds = 0;

    for round in 0..=cfg.max_rounds {
        let (trained, steps) = train_round(pwl.clone(), &problem, &spec, lr, &cfg);
        total_steps += steps;
        pwl = if cfg.enable_refit {
            refit_values(&trained, &problem, &spec)
        } else {
            trained
        };
        let mse = integral_mse(&pwl, f, a, b);
        history.push(mse);
        if best.as_ref().is_none_or(|(bm, _)| mse < *bm) {
            best = Some((mse, pwl.clone()));
        }
        if round == cfg.max_rounds || !cfg.enable_remove_insert {
            break;
        }
        rounds += 1;

        // Remove/insert move, then retrain with decayed LR.
        let (moved, removed_idx, inserted_at) = remove_insert_move(&pwl, f, (a, b), &spec);
        let converged = last_move
            .is_some_and(|(ri, pi)| ri == removed_idx && (pi - inserted_at).abs() < (b - a) * 1e-3);
        last_move = Some((removed_idx, inserted_at));
        pwl = if cfg.enable_refit {
            refit_values(&moved, &problem, &spec)
        } else {
            moved
        };
        lr *= cfg.round_lr_decay;
        if converged {
            break;
        }
    }

    let (_, best_pwl) = best.expect("at least one round ran");
    let report = LossReport::compute(&best_pwl, f, a, b);
    OptimizeResult {
        pwl: best_pwl,
        report,
        steps: total_steps,
        rounds,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfu_core::init::uniform_pwl;
    use flexsfu_funcs::{Exp, Gelu, Sigmoid, Tanh};

    #[test]
    fn project_sorted_restores_order() {
        let mut p = vec![0.5, 0.2, 0.9, 0.1];
        project_sorted(&mut p, 0.0, 1.0);
        assert!(p.windows(2).all(|w| w[0] < w[1]), "{p:?}");
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn project_sorted_handles_tail_overflow() {
        let mut p = vec![0.999, 0.9995, 1.2, 1.4];
        project_sorted(&mut p, 0.0, 1.0);
        assert!(p.windows(2).all(|w| w[0] < w[1]), "{p:?}");
        assert!(*p.last().unwrap() <= 1.0);
    }

    #[test]
    fn optimizer_beats_uniform_baseline_on_gelu() {
        let result = optimize(&Gelu, OptimizeConfig::quick(8));
        let uniform = uniform_pwl(&Gelu, 8, (-8.0, 8.0));
        let uniform_mse = integral_mse(&uniform, &Gelu, -8.0, 8.0);
        assert!(
            result.report.mse < uniform_mse / 3.0,
            "optimized {} vs uniform {uniform_mse}",
            result.report.mse
        );
    }

    #[test]
    fn optimizer_preserves_breakpoint_count_and_ties() {
        let result = optimize(&Tanh, OptimizeConfig::quick(8));
        assert_eq!(result.pwl.num_breakpoints(), 8);
        // Asymptote ties survive the whole pipeline.
        assert_eq!(result.pwl.left_slope(), 0.0);
        assert_eq!(result.pwl.right_slope(), 0.0);
        assert_eq!(result.pwl.values()[0], -1.0);
        assert_eq!(result.pwl.values()[7], 1.0);
    }

    #[test]
    fn history_is_monotone_at_best() {
        let result = optimize(&Sigmoid, OptimizeConfig::quick(8));
        assert!(!result.history.is_empty());
        let best_hist = result.history.iter().cloned().fold(f64::INFINITY, f64::min);
        // The reported MSE is the best seen across rounds.
        assert!(result.report.mse <= best_hist * 1.0001);
        assert!(result.steps > 0);
    }

    #[test]
    fn exp_with_free_right_boundary_optimizes() {
        let result = optimize(&Exp, OptimizeConfig::quick(8));
        // exp on [-10, 0.1]: approximation must be decent and bounded left.
        assert!(result.report.mse < 1e-4, "mse {}", result.report.mse);
        assert_eq!(result.pwl.left_slope(), 0.0);
        assert!((result.pwl.eval(-30.0)).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "at least 3 breakpoints")]
    fn config_rejects_two_breakpoints() {
        OptimizeConfig::new(2);
    }
}
