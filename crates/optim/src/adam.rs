//! The Adam optimizer (Kingma & Ba, 2014) over a flat parameter vector.

/// Adam state for a fixed-size parameter vector.
///
/// The paper uses Adam with `lr = 0.1` and momenta `(0.9, 0.999)` to move
/// both breakpoints and values (Section IV).
///
/// # Examples
///
/// Minimizing `(x - 3)²`:
///
/// ```
/// use flexsfu_optim::Adam;
///
/// let mut adam = Adam::new(1, 0.1, (0.9, 0.999));
/// let mut x = vec![0.0f64];
/// for _ in 0..500 {
///     let g = vec![2.0 * (x[0] - 3.0)];
///     adam.step(&mut x, &g);
/// }
/// assert!((x[0] - 3.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates an optimizer for `dim` parameters.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`, or the betas are outside `[0, 1)`.
    pub fn new(dim: usize, lr: f64, betas: (f64, f64)) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        assert!(
            (0.0..1.0).contains(&betas.0) && (0.0..1.0).contains(&betas.1),
            "betas must be in [0, 1)"
        );
        Self {
            lr,
            beta1: betas.0,
            beta2: betas.1,
            eps: 1e-8,
            m: vec![0.0; dim],
            v: vec![0.0; dim],
            t: 0,
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f64 {
        self.lr
    }

    /// Updates the learning rate (used by the plateau scheduler).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn set_lr(&mut self, lr: f64) {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        self.lr = lr;
    }

    /// Number of parameters this optimizer tracks.
    pub fn dim(&self) -> usize {
        self.m.len()
    }

    /// Applies one Adam update to `params` given `grads`.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths don't match the optimizer dimension.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.dim(), "parameter count mismatch");
        assert_eq!(grads.len(), self.dim(), "gradient count mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    /// Resets the moment estimates (used after structural changes to the
    /// parameter vector, e.g. breakpoint removal/insertion).
    pub fn reset(&mut self) {
        self.m.iter_mut().for_each(|x| *x = 0.0);
        self.v.iter_mut().for_each(|x| *x = 0.0);
        self.t = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_quadratic_bowl() {
        let mut adam = Adam::new(2, 0.05, (0.9, 0.999));
        let mut x = vec![5.0, -3.0];
        for _ in 0..2000 {
            let g = vec![2.0 * x[0], 4.0 * x[1]];
            adam.step(&mut x, &g);
        }
        assert!(x[0].abs() < 1e-3 && x[1].abs() < 1e-3, "{x:?}");
    }

    #[test]
    fn first_step_magnitude_is_lr() {
        // With bias correction, the very first Adam step has magnitude
        // exactly lr (for non-zero gradient).
        let mut adam = Adam::new(1, 0.1, (0.9, 0.999));
        let mut x = vec![0.0];
        adam.step(&mut x, &[123.456]);
        assert!((x[0] + 0.1).abs() < 1e-6, "step was {}", x[0]);
    }

    #[test]
    fn zero_gradient_keeps_params() {
        let mut adam = Adam::new(3, 0.1, (0.9, 0.999));
        let mut x = vec![1.0, 2.0, 3.0];
        adam.step(&mut x, &[0.0, 0.0, 0.0]);
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn set_lr_and_reset() {
        let mut adam = Adam::new(1, 0.1, (0.9, 0.999));
        adam.set_lr(0.01);
        assert_eq!(adam.lr(), 0.01);
        let mut x = vec![1.0];
        adam.step(&mut x, &[1.0]);
        adam.reset();
        // After reset the next step behaves like a first step again.
        let mut y = vec![0.0];
        adam.step(&mut y, &[55.0]);
        assert!((y[0] + 0.01).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "parameter count mismatch")]
    fn dimension_mismatch_panics() {
        let mut adam = Adam::new(2, 0.1, (0.9, 0.999));
        adam.step(&mut [0.0], &[0.0]);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_nonpositive_lr() {
        Adam::new(1, 0.0, (0.9, 0.999));
    }
}
