//! Uniform-grid PWL baselines.
//!
//! Two variants:
//!
//! * [`uniform_exact`] — uniform breakpoints, values sampled exactly from
//!   the function (what most prior hybrid PWL works do; the "Uniform PPA"
//!   curve of the paper's Figure 2);
//! * [`uniform_least_squares`] — uniform breakpoints, values chosen to
//!   minimize the sampled MSE. This is the strongest approximation with a
//!   *uniform* grid, so any further improvement by Flex-SFU is
//!   attributable to the non-uniform breakpoint placement alone.

use flexsfu_core::init::uniform_pwl;
use flexsfu_core::PwlFunction;
use flexsfu_funcs::Activation;

/// Uniform breakpoints with exact function values (Figure 2's baseline).
pub fn uniform_exact(f: &dyn Activation, n: usize, range: (f64, f64)) -> PwlFunction {
    uniform_pwl(f, n, range)
}

/// Uniform breakpoints with least-squares-optimal values.
///
/// With the breakpoints fixed, `f̂` is linear in the values `v` (hat-basis
/// expansion), so the MSE-optimal `v` solves a symmetric positive-definite
/// *tridiagonal* normal system `Gv = r` with the hat-function Gram matrix
/// `G`. We assemble both from a dense sample grid and solve with the
/// Thomas algorithm.
///
/// # Panics
///
/// Panics if `n < 2` or the range is invalid.
pub fn uniform_least_squares(
    f: &dyn Activation,
    n: usize,
    range: (f64, f64),
    samples: usize,
) -> PwlFunction {
    let (a, b) = range;
    assert!(n >= 2, "need at least two breakpoints");
    assert!(a < b, "invalid range");
    assert!(samples >= 8 * n, "need a dense sample grid");
    let base = uniform_pwl(f, n, range);
    let p = base.breakpoints().to_vec();

    // Hat basis over the clamped domain: φ_i(x) piecewise linear with
    // φ_i(p_j) = δ_ij; outside [p_0, p_{n-1}] the boundary hats stay at 1
    // (matching the flat outer segments when slopes are ~0; boundary slope
    // effects on [a,b] ⊂ [p0,pn-1] don't arise for the uniform grid which
    // spans exactly [a, b]).
    let hat = |i: usize, x: f64| -> f64 {
        let n = p.len();
        if i > 0 && x >= p[i - 1] && x <= p[i] {
            (x - p[i - 1]) / (p[i] - p[i - 1])
        } else if i + 1 < n && x >= p[i] && x <= p[i + 1] {
            (p[i + 1] - x) / (p[i + 1] - p[i])
        } else if (i == 0 && x <= p[0]) || (i == n - 1 && x >= p[n - 1]) {
            1.0
        } else {
            0.0
        }
    };

    // Assemble tridiagonal normal equations from the sample grid.
    let mut diag = vec![0.0; n];
    let mut off = vec![0.0; n - 1]; // G[i][i+1] = G[i+1][i]
    let mut rhs = vec![0.0; n];
    for k in 0..samples {
        let x = a + (b - a) * k as f64 / (samples - 1) as f64;
        let fx = f.eval(x);
        // At most two hats are non-zero at x.
        let seg = p.partition_point(|&q| q < x).clamp(1, n - 1);
        let (i, j) = (seg - 1, seg);
        let (hi, hj) = (hat(i, x), hat(j, x));
        diag[i] += hi * hi;
        diag[j] += hj * hj;
        off[i] += hi * hj;
        rhs[i] += hi * fx;
        rhs[j] += hj * fx;
    }

    // Thomas algorithm (the system is SPD tridiagonal).
    let mut c = vec![0.0; n - 1];
    let mut d = vec![0.0; n];
    c[0] = off[0] / diag[0];
    d[0] = rhs[0] / diag[0];
    for i in 1..n {
        let m = diag[i] - off[i - 1] * c[i - 1];
        if i < n - 1 {
            c[i] = off[i] / m;
        }
        d[i] = (rhs[i] - off[i - 1] * d[i - 1]) / m;
    }
    let mut v = vec![0.0; n];
    v[n - 1] = d[n - 1];
    for i in (0..n - 1).rev() {
        v[i] = d[i] - c[i] * v[i + 1];
    }

    PwlFunction::new(p, v, base.left_slope(), base.right_slope())
        .expect("grid unchanged, still valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfu_core::loss::integral_mse;
    use flexsfu_funcs::{Gelu, Sigmoid, Tanh};

    #[test]
    fn least_squares_beats_exact_values() {
        for f in [&Gelu as &dyn Activation, &Sigmoid, &Tanh] {
            let n = 8;
            let exact = uniform_exact(f, n, (-8.0, 8.0));
            let ls = uniform_least_squares(f, n, (-8.0, 8.0), 4096);
            let mse_exact = integral_mse(&exact, f, -8.0, 8.0);
            let mse_ls = integral_mse(&ls, f, -8.0, 8.0);
            assert!(
                mse_ls <= mse_exact * 1.001,
                "{}: ls {mse_ls} vs exact {mse_exact}",
                f.name()
            );
        }
    }

    #[test]
    fn least_squares_keeps_grid() {
        let ls = uniform_least_squares(&Gelu, 9, (-8.0, 8.0), 4096);
        let gaps: Vec<f64> = ls.breakpoints().windows(2).map(|w| w[1] - w[0]).collect();
        for g in gaps {
            assert!((g - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn least_squares_values_stay_near_function() {
        let ls = uniform_least_squares(&Sigmoid, 16, (-8.0, 8.0), 4096);
        for (&p, &v) in ls.breakpoints().iter().zip(ls.values()) {
            assert!(
                (v - Sigmoid.eval(p)).abs() < 0.05,
                "value at {p} drifted to {v}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "dense sample grid")]
    fn rejects_sparse_grid() {
        uniform_least_squares(&Gelu, 16, (-8.0, 8.0), 32);
    }
}
