//! Approximation baselines the paper compares against.
//!
//! * [`uniform`] — uniform-grid PWL with exact values (re-exported from
//!   `flexsfu_core::init`) plus a stronger *least-squares-valued* variant
//!   that keeps the uniform grid but fits the values optimally;
//! * [`lut`] — the pure LUT family (one constant output per interval), the
//!   architecture of \[12\]–\[15\] in the paper;
//! * [`mod@reference`] — the published error figures of the prior PWL works in
//!   Table II, embedded as constants for the comparison harness.

pub mod lut;
pub mod reference;
pub mod uniform;
