//! Published error figures of prior PWL works (paper, Table II).
//!
//! The paper compares its MSE-optimized interpolation against the errors
//! *reported by* prior works, at matched function / range / breakpoint
//! count. Those published numbers are embedded here so the Table II
//! harness can regenerate the comparison. Most prior works report average
//! absolute error (AAE), which the paper squares (`sq-AAE`) to be
//! comparable with MSE; two rows (\[12\]) are already MSE.

/// Which error metric a reference row reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefMetric {
    /// Squared average absolute error (AAE², most prior works).
    SqAae,
    /// Mean squared error (rows marked ‡ in the paper).
    Mse,
}

/// One comparison row of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceRow {
    /// Citation tag as printed in the paper (e.g. `"[17]"`).
    pub work: &'static str,
    /// Target activation (`"tanh"`, `"sigmoid"`, `"gelu"`).
    pub function: &'static str,
    /// Interpolation interval used by the reference.
    pub range: (f64, f64),
    /// Number of breakpoints (symmetry-expanded where the original work
    /// stores half the table, marked † in the paper).
    pub breakpoints: usize,
    /// Whether the original work exploits odd/even symmetry.
    pub uses_symmetry: bool,
    /// The error value published by the reference work.
    pub error: f64,
    /// Metric of [`ReferenceRow::error`].
    pub metric: RefMetric,
    /// Improvement factor the paper reports for this row ("Impr." column).
    pub paper_improvement: f64,
    /// Flex-SFU error the paper reports for this row ("This work").
    pub paper_this_work: f64,
}

/// All 13 comparison rows of Table II, in paper order.
pub const TABLE2_ROWS: [ReferenceRow; 13] = [
    ReferenceRow {
        work: "[16]",
        function: "tanh",
        range: (-8.0, 8.0),
        breakpoints: 16,
        uses_symmetry: true,
        error: 5.76e-6,
        metric: RefMetric::SqAae,
        paper_improvement: 13.5,
        paper_this_work: 4.27e-7,
    },
    ReferenceRow {
        work: "[17]",
        function: "tanh",
        range: (-3.5, 3.5),
        breakpoints: 16,
        uses_symmetry: false,
        error: 3.58e-5,
        metric: RefMetric::SqAae,
        paper_improvement: 23.5,
        paper_this_work: 1.52e-6,
    },
    ReferenceRow {
        work: "[17]",
        function: "tanh",
        range: (-3.5, 3.5),
        breakpoints: 64,
        uses_symmetry: false,
        error: 1.12e-7,
        metric: RefMetric::SqAae,
        paper_improvement: 14.2,
        paper_this_work: 7.88e-9,
    },
    ReferenceRow {
        work: "[18]",
        function: "tanh",
        range: (-8.0, 8.0),
        breakpoints: 16,
        uses_symmetry: false,
        error: 1.00e-6,
        metric: RefMetric::SqAae,
        paper_improvement: 2.3,
        paper_this_work: 4.26e-7,
    },
    ReferenceRow {
        work: "[20]",
        function: "tanh",
        range: (0.015625, 4.0),
        breakpoints: 32,
        uses_symmetry: false,
        error: 5.94e-7,
        metric: RefMetric::SqAae,
        paper_improvement: 88.4,
        paper_this_work: 6.72e-9,
    },
    ReferenceRow {
        work: "[12]",
        function: "tanh",
        range: (-4.0, 4.0),
        breakpoints: 32,
        uses_symmetry: true,
        error: 9.81e-7,
        metric: RefMetric::Mse,
        paper_improvement: 86.8,
        paper_this_work: 1.13e-8,
    },
    ReferenceRow {
        work: "[16]",
        function: "sigmoid",
        range: (-8.0, 8.0),
        breakpoints: 16,
        uses_symmetry: true,
        error: 8.10e-7,
        metric: RefMetric::SqAae,
        paper_improvement: 6.7,
        paper_this_work: 1.21e-7,
    },
    ReferenceRow {
        work: "[17]",
        function: "sigmoid",
        range: (-7.0, 7.0),
        breakpoints: 16,
        uses_symmetry: false,
        error: 8.95e-6,
        metric: RefMetric::SqAae,
        paper_improvement: 18.0,
        paper_this_work: 4.97e-7,
    },
    ReferenceRow {
        work: "[17]",
        function: "sigmoid",
        range: (-7.0, 7.0),
        breakpoints: 64,
        uses_symmetry: false,
        error: 2.82e-8,
        metric: RefMetric::SqAae,
        paper_improvement: 11.9,
        paper_this_work: 2.38e-9,
    },
    ReferenceRow {
        work: "[18]",
        function: "sigmoid",
        range: (-8.0, 8.0),
        breakpoints: 16,
        uses_symmetry: false,
        error: 6.25e-6,
        metric: RefMetric::SqAae,
        paper_improvement: 21.7,
        paper_this_work: 2.88e-7,
    },
    ReferenceRow {
        work: "[20]",
        function: "sigmoid",
        range: (0.015625, 4.0),
        breakpoints: 32,
        uses_symmetry: false,
        error: 1.41e-7,
        metric: RefMetric::SqAae,
        paper_improvement: 3.7,
        paper_this_work: 3.80e-8,
    },
    ReferenceRow {
        work: "[12]",
        function: "sigmoid",
        range: (-4.0, 4.0),
        breakpoints: 64,
        uses_symmetry: true,
        error: 3.92e-8,
        metric: RefMetric::Mse,
        paper_improvement: 9.3,
        paper_this_work: 2.38e-9,
    },
    ReferenceRow {
        work: "[18]",
        function: "gelu",
        range: (-8.0, 8.0),
        breakpoints: 16,
        uses_symmetry: false,
        error: 6.76e-6,
        metric: RefMetric::SqAae,
        paper_improvement: 9.0,
        paper_this_work: 1.89e-7,
    },
];

/// Geometric-mean improvement of the paper's 13 rows (the "22.3× on
/// average" headline; the paper averages the improvement factors).
pub fn paper_average_improvement() -> f64 {
    let sum: f64 = TABLE2_ROWS.iter().map(|r| r.paper_improvement).sum();
    sum / TABLE2_ROWS.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_rows_matching_paper_layout() {
        assert_eq!(TABLE2_ROWS.len(), 13);
        assert_eq!(
            TABLE2_ROWS.iter().filter(|r| r.function == "tanh").count(),
            6
        );
        assert_eq!(
            TABLE2_ROWS
                .iter()
                .filter(|r| r.function == "sigmoid")
                .count(),
            6
        );
        assert_eq!(
            TABLE2_ROWS.iter().filter(|r| r.function == "gelu").count(),
            1
        );
    }

    #[test]
    fn improvements_match_error_ratios() {
        for r in &TABLE2_ROWS {
            // Known inconsistencies in the published table: the [12]
            // sigmoid row prints 9.3x (columns give 16.5x) and the [18]
            // gelu row prints 9.0x (columns give 35.8x).
            if (r.work == "[12]" && r.function == "sigmoid")
                || (r.work == "[18]" && r.function == "gelu")
            {
                continue;
            }
            let ratio = r.error / r.paper_this_work;
            let rel = (ratio - r.paper_improvement).abs() / r.paper_improvement;
            assert!(
                rel < 0.05,
                "{} {}: ratio {ratio} vs printed {}",
                r.work,
                r.function,
                r.paper_improvement
            );
        }
    }

    #[test]
    fn average_improvement_matches_headline() {
        // The paper reports "22.3x on average"; the arithmetic mean of the
        // printed per-row factors is 23.8 (the 22.3 presumably uses the
        // corrected [12]-sigmoid ratio or different rounding). Accept the
        // neighbourhood.
        let avg = paper_average_improvement();
        assert!(
            (20.0..27.0).contains(&avg),
            "paper claims ~22.3x average, rows give {avg}"
        );
    }

    #[test]
    fn mse_rows_are_the_andri_ones() {
        for r in &TABLE2_ROWS {
            if r.metric == RefMetric::Mse {
                assert_eq!(r.work, "[12]");
            }
        }
    }
}
