//! Pure LUT approximation (one constant output per interval).
//!
//! The LUT-based family the paper describes in Section II (\[12\]–\[15\]):
//! the input range is divided into uniform intervals and each interval maps
//! to one pre-computed output. Accuracy scales only linearly with the LUT
//! depth — the motivation for the hybrid (coefficient-storing) approach.

use flexsfu_funcs::Activation;

/// A uniform-interval lookup table: `depth` intervals over `[a, b]`, each
/// returning the function value at its midpoint; inputs outside clamp to
/// the first/last entry.
///
/// # Examples
///
/// ```
/// use flexsfu_optim::baselines::lut::LutApprox;
/// use flexsfu_funcs::Sigmoid;
///
/// let lut = LutApprox::build(&Sigmoid, 64, (-8.0, 8.0));
/// let err = (lut.eval(0.3) - 0.574).abs();
/// assert!(err < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LutApprox {
    lo: f64,
    hi: f64,
    outputs: Vec<f64>,
}

impl LutApprox {
    /// Builds a LUT with `depth` intervals over `range`, storing the exact
    /// function value at each interval midpoint.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0` or the range is invalid.
    pub fn build(f: &dyn Activation, depth: usize, range: (f64, f64)) -> Self {
        let (lo, hi) = range;
        assert!(depth > 0, "LUT depth must be positive");
        assert!(lo < hi, "invalid range [{lo}, {hi}]");
        let w = (hi - lo) / depth as f64;
        let outputs = (0..depth)
            .map(|i| f.eval(lo + (i as f64 + 0.5) * w))
            .collect();
        Self { lo, hi, outputs }
    }

    /// Number of intervals.
    pub fn depth(&self) -> usize {
        self.outputs.len()
    }

    /// Looks up the output for `x` (clamping outside the range) — the
    /// "addressing scheme maps a full interval to a LUT address" behaviour.
    pub fn eval(&self, x: f64) -> f64 {
        let w = (self.hi - self.lo) / self.depth() as f64;
        let idx = ((x - self.lo) / w).floor();
        let idx = (idx.max(0.0) as usize).min(self.depth() - 1);
        self.outputs[idx]
    }

    /// Sampled MSE against `f` over the LUT's own range.
    pub fn sampled_mse(&self, f: &dyn Activation, samples: usize) -> f64 {
        assert!(samples >= 2);
        let mut acc = 0.0;
        for k in 0..samples {
            let x = self.lo + (self.hi - self.lo) * k as f64 / (samples - 1) as f64;
            let e = self.eval(x) - f.eval(x);
            acc += e * e;
        }
        acc / samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfu_core::init::uniform_pwl;
    use flexsfu_core::loss::integral_mse;
    use flexsfu_funcs::{Gelu, Sigmoid, Tanh};

    #[test]
    fn lut_error_scales_quadratically_in_mse() {
        // Constant-per-interval error is O(h) pointwise → MSE is O(h²):
        // doubling the depth shrinks MSE by ~4x (vs ~16x for PWL).
        let m32 = LutApprox::build(&Tanh, 32, (-8.0, 8.0)).sampled_mse(&Tanh, 8192);
        let m64 = LutApprox::build(&Tanh, 64, (-8.0, 8.0)).sampled_mse(&Tanh, 8192);
        let ratio = m32 / m64;
        assert!((2.0..8.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn hybrid_pwl_beats_lut_at_same_depth() {
        // The motivating comparison: same number of stored entries, the
        // hybrid (PWL) approach is far more accurate.
        for f in [&Gelu as &dyn Activation, &Sigmoid] {
            let lut = LutApprox::build(f, 16, (-8.0, 8.0));
            let pwl = uniform_pwl(f, 16, (-8.0, 8.0));
            let lut_mse = lut.sampled_mse(f, 8192);
            let pwl_mse = integral_mse(&pwl, f, -8.0, 8.0);
            assert!(
                pwl_mse < lut_mse / 10.0,
                "{}: pwl {pwl_mse} vs lut {lut_mse}",
                f.name()
            );
        }
    }

    #[test]
    fn clamps_outside_range() {
        let lut = LutApprox::build(&Sigmoid, 8, (-8.0, 8.0));
        assert_eq!(lut.eval(-100.0), lut.eval(-7.99));
        assert_eq!(lut.eval(100.0), lut.eval(7.99));
    }

    #[test]
    fn depth_one_is_constant() {
        let lut = LutApprox::build(&Sigmoid, 1, (-1.0, 1.0));
        assert_eq!(lut.depth(), 1);
        assert_eq!(lut.eval(-1.0), lut.eval(1.0));
        assert_eq!(lut.eval(0.0), Sigmoid.eval(0.0));
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn zero_depth_panics() {
        LutApprox::build(&Sigmoid, 0, (-1.0, 1.0));
    }
}
