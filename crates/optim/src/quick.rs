//! Fast non-uniform table generation for design-space sweeps.
//!
//! The full [`optimize`](crate::optimize) pipeline spends thousands of
//! Adam steps per table — the right tool for producing one production
//! table, and the wrong one for a tuner that must price dozens of
//! candidate configurations per function. [`quick_nonuniform`] gets most
//! of the non-uniformity win at a tiny fraction of the cost by composing
//! the pipeline's two *exact* sub-solvers and skipping gradient descent
//! entirely:
//!
//! 1. initialize uniformly with asymptote-tied boundaries
//!    ([`flexsfu_core::init::uniform_pwl_asymptotic`]);
//! 2. snap values to their least-squares optimum for the current
//!    breakpoints ([`refit_values`] — an exact tridiagonal solve);
//! 3. run a few remove/insert escapes ([`remove_insert_move`]): delete
//!    the breakpoint whose absence hurts least, re-insert it where the
//!    error mass is concentrated, refit, and keep the move only if the
//!    sampled loss improved.
//!
//! Every step is deterministic (no RNG, no wall clock), so two calls
//! with the same arguments return bit-identical tables — the property
//! the tuner's reproducibility suite pins.

use crate::grad::SampledProblem;
use crate::heuristics::remove_insert_move;
use crate::refit::refit_values;
use flexsfu_core::boundary::BoundarySpec;
use flexsfu_core::init::uniform_pwl_asymptotic;
use flexsfu_core::PwlFunction;
use flexsfu_funcs::Activation;

/// Builds a non-uniform `n`-breakpoint table for `f` over `range`:
/// uniform asymptotic init, an exact least-squares value refit, then
/// `moves` greedy remove/insert escapes (each kept only if it lowers the
/// sampled loss on an `samples`-point grid).
///
/// Deterministic, and orders of magnitude cheaper than
/// [`optimize`](crate::optimize) — intended as the per-candidate table
/// generator of a design-space sweep, not as a replacement for the full
/// pipeline.
///
/// # Panics
///
/// Panics if `n < 2`, `samples == 0` or the range is not an interval.
/// `moves` is ignored (no escapes run) when `n < 3`, since a
/// remove/insert needs a spare breakpoint to move.
///
/// # Examples
///
/// ```
/// use flexsfu_core::init::uniform_pwl;
/// use flexsfu_core::loss::integral_mse;
/// use flexsfu_funcs::Gelu;
/// use flexsfu_optim::quick_nonuniform;
///
/// let quick = quick_nonuniform(&Gelu, 12, (-8.0, 8.0), 1024, 2);
/// let uniform = uniform_pwl(&Gelu, 12, (-8.0, 8.0));
/// let (q, u) = (
///     integral_mse(&quick, &Gelu, -8.0, 8.0),
///     integral_mse(&uniform, &Gelu, -8.0, 8.0),
/// );
/// assert!(q < u, "non-uniform {q:.2e} must beat uniform {u:.2e}");
/// ```
pub fn quick_nonuniform(
    f: &dyn Activation,
    n: usize,
    range: (f64, f64),
    samples: usize,
    moves: usize,
) -> PwlFunction {
    let (a, b) = range;
    assert!(a < b, "range must be a non-empty interval, got [{a}, {b}]");
    assert!(samples > 0, "need at least one loss sample");
    // Same boundary policy as the full optimizer: tie an end to its
    // asymptote only when the range actually reaches it.
    let spec = BoundarySpec::for_range(f, range, 5e-3);
    let problem = SampledProblem::new(f, a, b, samples);

    let mut pwl = refit_values(&uniform_pwl_asymptotic(f, n, range), &problem, &spec);
    if n < 3 {
        return pwl;
    }
    let mut loss = problem.loss(&pwl);
    for _ in 0..moves {
        let (moved, removed_idx, inserted_at) = remove_insert_move(&pwl, f, range, &spec);
        let candidate = refit_values(&moved, &problem, &spec);
        let candidate_loss = problem.loss(&candidate);
        if candidate_loss < loss {
            loss = candidate_loss;
            pwl = candidate;
        } else {
            // The greedy pair re-proposes the same move once rejected
            // (everything here is deterministic), so stop early instead
            // of burning the remaining iterations on a fixed point.
            let _ = (removed_idx, inserted_at);
            break;
        }
    }
    pwl
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfu_core::init::uniform_pwl;
    use flexsfu_core::loss::integral_mse;
    use flexsfu_funcs::{Exp, Gelu, Sigmoid, Tanh};

    #[test]
    fn beats_uniform_on_curved_functions() {
        for f in [&Gelu as &dyn Activation, &Sigmoid, &Tanh] {
            let range = f.default_range();
            let quick = quick_nonuniform(f, 16, range, 1024, 2);
            let uniform = uniform_pwl(f, 16, range);
            let q = integral_mse(&quick, f, range.0, range.1);
            let u = integral_mse(&uniform, f, range.0, range.1);
            assert!(q < u, "{}: quick {q:.3e} vs uniform {u:.3e}", f.name());
        }
    }

    #[test]
    fn is_deterministic() {
        let a = quick_nonuniform(&Gelu, 15, (-8.0, 8.0), 1024, 2);
        let b = quick_nonuniform(&Gelu, 15, (-8.0, 8.0), 1024, 2);
        assert_eq!(a.breakpoints(), b.breakpoints());
        for (x, y) in a.values().iter().zip(b.values()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn preserves_breakpoint_count_and_range() {
        for moves in [0, 1, 3] {
            let pwl = quick_nonuniform(&Tanh, 31, (-8.0, 8.0), 1024, moves);
            assert_eq!(pwl.num_breakpoints(), 31);
            let p = pwl.breakpoints();
            assert!(p[0] >= -8.0 && p[30] <= 8.0);
            assert!(p.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn respects_asymptotic_range_of_exp() {
        let range = Exp.default_range(); // (-10, 0.1)
        let pwl = quick_nonuniform(&Exp, 7, range, 512, 1);
        assert_eq!(pwl.left_slope(), 0.0, "left end tied to the asymptote");
        assert!(pwl.eval(-30.0).abs() < 0.05);
    }

    #[test]
    fn two_breakpoints_skip_moves() {
        let pwl = quick_nonuniform(&Tanh, 2, (-2.0, 2.0), 256, 5);
        assert_eq!(pwl.num_breakpoints(), 2);
    }

    #[test]
    #[should_panic(expected = "non-empty interval")]
    fn rejects_empty_range() {
        quick_nonuniform(&Tanh, 8, (1.0, 1.0), 128, 0);
    }
}
