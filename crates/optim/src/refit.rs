//! Exact least-squares refit of breakpoint *values* for fixed positions.
//!
//! With the breakpoints `p` frozen, the PWL function is linear in the
//! values `v` (hat-function basis), so the values minimizing the sampled
//! MSE solve a symmetric positive-definite **tridiagonal** normal system —
//! solvable exactly with the Thomas algorithm in `O(n)`.
//!
//! The optimizer interleaves this refit with Adam rounds: Adam moves the
//! breakpoints (the genuinely non-convex part), the refit snaps the values
//! to their conditional optimum. Asymptote-tied boundary values stay fixed
//! and their contribution moves to the right-hand side.

use crate::grad::SampledProblem;
use flexsfu_core::boundary::BoundarySpec;
use flexsfu_core::PwlFunction;

/// One Thomas-solve worth of scratch: the samples are classified in a
/// single batch sweep through the compiled engine instead of a binary
/// search per sample.
fn classify_samples(pwl: &PwlFunction, problem: &SampledProblem) -> Vec<u32> {
    let engine = pwl.compile();
    let mut segs = vec![0u32; problem.len()];
    engine.segments_into(problem.samples(), &mut segs);
    segs
}

/// Returns a copy of `pwl` whose values are the least-squares optimum for
/// the current breakpoints over the problem's sample grid, holding tied
/// boundary values (and the outer slopes) fixed.
///
/// # Panics
///
/// Panics if the sample grid does not touch every segment (cannot happen
/// for grids ≥ 8× denser than the breakpoint count, which the optimizer
/// guarantees).
pub fn refit_values(
    pwl: &PwlFunction,
    problem: &SampledProblem,
    spec: &BoundarySpec,
) -> PwlFunction {
    let p = pwl.breakpoints();
    let n = p.len();
    let m = problem.len();
    let (ml, mr) = (pwl.left_slope(), pwl.right_slope());

    // Tied boundary values (None = free, refit like any other).
    let tied_left = spec.left.tie(p[0]).map(|(_, v)| v);
    let tied_right = spec.right.tie(p[n - 1]).map(|(_, v)| v);

    // Assemble the tridiagonal normal equations G v = r over all samples.
    let mut diag = vec![0.0f64; n];
    let mut off = vec![0.0f64; n - 1];
    let mut rhs = vec![0.0f64; n];

    let segs = classify_samples(pwl, problem);
    for (k, &seg) in segs.iter().enumerate() {
        let x = problem.sample(k);
        let fx = problem.target(k);
        // Table order: 0 = left outer, n = right outer, else inner s − 1.
        let s = seg as usize;
        if s == 0 {
            // Left region: f̂ = v0 + ml (x - p0); only v0 participates.
            diag[0] += 1.0;
            rhs[0] += fx - ml * (x - p[0]);
        } else if s == n {
            diag[n - 1] += 1.0;
            rhs[n - 1] += fx - mr * (x - p[n - 1]);
        } else {
            let (i0, i1) = (s - 1, s);
            let t = (x - p[i0]) / (p[i1] - p[i0]);
            let (h0, h1) = (1.0 - t, t);
            diag[i0] += h0 * h0;
            diag[i1] += h1 * h1;
            off[i0] += h0 * h1;
            rhs[i0] += h0 * fx;
            rhs[i1] += h1 * fx;
        }
    }

    // Guard empty or near-empty segments (a hat touched by no or almost
    // no samples, possible when projection squeezes breakpoints together):
    // a tiny ridge keeps the system well-conditioned without visibly
    // biasing well-sampled rows.
    let ridge = 1e-9 * (m as f64 / n as f64);
    for i in 0..n {
        if diag[i] == 0.0 {
            diag[i] = 1.0;
            rhs[i] = pwl.values()[i];
        } else {
            diag[i] += ridge;
        }
    }

    // Fold tied boundary values into the RHS and pin their rows.
    if let Some(v0) = tied_left {
        rhs[1] -= off[0] * v0;
        off[0] = 0.0;
        diag[0] = 1.0;
        rhs[0] = v0;
    }
    if let Some(vn) = tied_right {
        rhs[n - 2] -= off[n - 2] * vn;
        off[n - 2] = 0.0;
        diag[n - 1] = 1.0;
        rhs[n - 1] = vn;
    }

    // Thomas algorithm.
    let mut c = vec![0.0f64; n - 1];
    let mut d = vec![0.0f64; n];
    c[0] = off[0] / diag[0];
    d[0] = rhs[0] / diag[0];
    for i in 1..n {
        let denom = diag[i] - off[i - 1] * c[i - 1];
        if i < n - 1 {
            c[i] = off[i] / denom;
        }
        d[i] = (rhs[i] - off[i - 1] * d[i - 1]) / denom;
    }
    let mut v = vec![0.0f64; n];
    v[n - 1] = d[n - 1];
    for i in (0..n - 1).rev() {
        v[i] = d[i] - c[i] * v[i + 1];
    }

    if v.iter().any(|x| !x.is_finite()) {
        // Numerically degenerate system (pathologically clustered
        // breakpoints): keep the current values rather than poisoning the
        // optimizer state.
        return pwl.clone();
    }
    PwlFunction::new(p.to_vec(), v, ml, mr).expect("breakpoints unchanged")
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfu_core::init::{uniform_pwl, uniform_pwl_asymptotic};
    use flexsfu_funcs::{Gelu, Sigmoid, Tanh};

    #[test]
    fn refit_never_hurts() {
        for f in [&Gelu as &dyn flexsfu_funcs::Activation, &Sigmoid, &Tanh] {
            let problem = SampledProblem::new(f, -8.0, 8.0, 2048);
            let spec = BoundarySpec::from_activation(f);
            let pwl = uniform_pwl_asymptotic(f, 16, (-8.0, 8.0));
            let before = problem.loss(&pwl);
            let refit = refit_values(&pwl, &problem, &spec);
            let after = problem.loss(&refit);
            assert!(after <= before * 1.0001, "{}: {before} → {after}", f.name());
        }
    }

    #[test]
    fn refit_is_idempotent() {
        let problem = SampledProblem::new(&Gelu, -8.0, 8.0, 2048);
        let spec = BoundarySpec::from_activation(&Gelu);
        let pwl = uniform_pwl_asymptotic(&Gelu, 12, (-8.0, 8.0));
        let once = refit_values(&pwl, &problem, &spec);
        let twice = refit_values(&once, &problem, &spec);
        for (a, b) in once.values().iter().zip(twice.values()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn refit_preserves_ties() {
        let problem = SampledProblem::new(&Tanh, -8.0, 8.0, 2048);
        let spec = BoundarySpec::from_activation(&Tanh);
        let pwl = uniform_pwl_asymptotic(&Tanh, 10, (-8.0, 8.0));
        let refit = refit_values(&pwl, &problem, &spec);
        assert_eq!(refit.values()[0], -1.0);
        assert_eq!(refit.values()[9], 1.0);
        assert_eq!(refit.left_slope(), 0.0);
    }

    #[test]
    fn refit_beats_exact_values_on_uniform_grid() {
        // Least-squares values beat exact sampling on the same grid.
        let problem = SampledProblem::new(&Gelu, -8.0, 8.0, 4096);
        let spec = BoundarySpec::free();
        let exact = uniform_pwl(&Gelu, 8, (-8.0, 8.0));
        let refit = refit_values(&exact, &problem, &spec);
        assert!(problem.loss(&refit) < problem.loss(&exact));
    }
}
