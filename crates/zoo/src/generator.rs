//! The seeded zoo generator.
//!
//! Families are generated with fixed counts matching the paper's benchmark
//! suite (628 CV + 150 NLP models), era-consistent publication years, and
//! per-family activation mixes. Each model's activation-element count is
//! derived from a family-specific *activation time share* — the fraction
//! of baseline inference time spent in activation functions — which is the
//! quantity Figure 6's speedups pin down (see `DESIGN.md` for the
//! calibration).

use crate::descriptor::{Family, ModelDescriptor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// CV models in the suite (TIMM side).
pub const CV_MODELS: usize = 628;
/// NLP models in the suite (Hugging Face side).
pub const NLP_MODELS: usize = 150;

/// Baseline-VPU time cost of one activation element, in equivalent simple
/// ops (ReLU = 1). Arithmetic-op ratios follow the paper (SiLU 4×, GELU
/// 12× more *operations* than ReLU), scaled up where the operations are
/// multi-cycle on a vector unit (exponential, division): the effective
/// *time* ratios below are what the end-to-end model uses.
pub fn baseline_activation_cost(name: &str) -> f64 {
    match name {
        "relu" | "leaky_relu" | "relu6" => 1.0,
        "hardsigmoid" => 2.0,
        "hardswish" => 4.0,
        "sigmoid" => 6.0,
        "elu" => 6.0,
        "tanh" => 7.0,
        "silu" => 8.0,
        "softmax" => 10.0,
        "mish" => 10.0,
        "gelu" => 12.0,
        _ => 4.0,
    }
}

/// Per-family generation parameters.
struct FamilySpec {
    family: Family,
    count: usize,
    years: (u16, u16),
    /// (activation, probability) mix of the dominant activation.
    acts: &'static [(&'static str, f64)],
    /// Uniform range of the activation time share `s`.
    share: (f64, f64),
    /// Log10 range of MAC counts.
    log_macs: (f64, f64),
}

/// The CV + NLP suite composition. Counts sum to 778.
fn specs() -> Vec<FamilySpec> {
    vec![
        FamilySpec {
            family: Family::Vgg,
            count: 15,
            years: (2015, 2016),
            acts: &[("relu", 1.0)],
            share: (0.02, 0.05),
            log_macs: (9.8, 10.4), // 6G..25G MACs
        },
        FamilySpec {
            family: Family::MobileNet,
            count: 60,
            years: (2017, 2021),
            acts: &[("hardswish", 0.5), ("relu", 0.35), ("hardsigmoid", 0.15)],
            share: (0.10, 0.25),
            log_macs: (8.0, 9.0),
        },
        FamilySpec {
            family: Family::ResNet,
            count: 180,
            years: (2015, 2021),
            acts: &[("relu", 0.72), ("silu", 0.22), ("leaky_relu", 0.06)],
            share: (0.05, 0.15), // overridden for SiLU variants below
            log_macs: (9.3, 10.3),
        },
        FamilySpec {
            family: Family::VisionTransformer,
            count: 90,
            years: (2020, 2021),
            acts: &[("gelu", 0.85), ("softmax", 0.15)],
            share: (0.13, 0.20),
            log_macs: (9.5, 10.5),
        },
        FamilySpec {
            family: Family::NlpTransformer,
            count: NLP_MODELS,
            years: (2018, 2021),
            acts: &[("gelu", 0.75), ("softmax", 0.15), ("tanh", 0.10)],
            share: (0.20, 0.29),
            log_macs: (9.8, 11.0),
        },
        FamilySpec {
            family: Family::EfficientNet,
            count: 85,
            years: (2019, 2021),
            acts: &[("silu", 1.0)],
            share: (0.31, 0.40),
            log_macs: (8.6, 9.9),
        },
        FamilySpec {
            family: Family::DarkNet,
            count: 28,
            years: (2018, 2021),
            acts: &[("silu", 0.8), ("mish", 0.2)],
            share: (0.55, 0.65),
            log_macs: (9.4, 10.2),
        },
        FamilySpec {
            family: Family::Other,
            count: 170,
            years: (2015, 2021),
            acts: &[
                ("relu", 0.45),
                ("gelu", 0.15),
                ("silu", 0.12),
                ("hardswish", 0.08),
                ("sigmoid", 0.08),
                ("leaky_relu", 0.07),
                ("elu", 0.03),
                ("tanh", 0.02),
            ],
            share: (0.05, 0.40),
            log_macs: (8.5, 10.5),
        },
    ]
}

/// Samples a name from a probability mix.
fn sample_act(rng: &mut StdRng, acts: &[(&'static str, f64)]) -> &'static str {
    let mut u: f64 = rng.gen_range(0.0..1.0);
    for &(name, p) in acts {
        if u < p {
            return name;
        }
        u -= p;
    }
    acts.last().expect("non-empty mix").0
}

/// Generates the full 778-model zoo, deterministically from `seed`.
///
/// The SiLU-flavoured ResNet variants (the `-ts` / ResNeXt models that
/// give the paper its 3.3× peak on `resnext26ts`) get a wider, heavier
/// activation share than their ReLU siblings.
pub fn generate_zoo(seed: u64) -> Vec<ModelDescriptor> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(CV_MODELS + NLP_MODELS);
    let mut pinned_peak = false;
    for spec in specs() {
        for i in 0..spec.count {
            // Long-lived CNN families keep publishing variants; bias their
            // years late like the TIMM collection does.
            let late_biased = matches!(
                spec.family,
                Family::ResNet | Family::Other | Family::MobileNet
            );
            let year = if late_biased {
                let span = (spec.years.1 - spec.years.0) as usize + 1;
                // Triangular-ish weights toward recent years.
                let w: Vec<f64> = (0..span).map(|k| 1.0 + k as f64).collect();
                let total: f64 = w.iter().sum();
                let mut u = rng.gen_range(0.0..total);
                let mut picked = spec.years.1;
                for (k, &wk) in w.iter().enumerate() {
                    if u < wk {
                        picked = spec.years.0 + k as u16;
                        break;
                    }
                    u -= wk;
                }
                picked
            } else {
                rng.gen_range(spec.years.0..=spec.years.1)
            };
            let act = sample_act(&mut rng, spec.acts);
            // No anachronisms: gated activations post-date their papers
            // (GELU adoption ≈ 2018, SiLU/Hardswish/Mish ≈ 2019).
            let year = match act {
                "gelu" | "softmax" => year.max(2018),
                "silu" | "hardswish" | "mish" | "hardsigmoid" => year.max(2019),
                _ => year,
            };
            let (lo, hi) = match (spec.family, act) {
                // SiLU ResNet variants: heavy, wide activation share
                // (calibrated so the family mean lands on the paper's
                // +17.3 % including the ReLU members).
                (Family::ResNet, "silu") => (0.07, 0.80),
                _ => spec.share,
            };
            let mut share: f64 = rng.gen_range(lo..hi);
            // Pin one ResNeXt-ts-style outlier at the top of the range so
            // the zoo deterministically contains the paper's 3.3x peak
            // model (resnext26ts).
            let mut forced_name = None;
            if spec.family == Family::ResNet && act == "silu" && !pinned_peak {
                share = 0.80;
                pinned_peak = true;
                forced_name = Some("resnext26ts_synthetic".to_string());
            }
            let macs = 10f64.powf(rng.gen_range(spec.log_macs.0..spec.log_macs.1));
            // Elementwise/vector work scales loosely with MACs.
            let vector_elems = macs / rng.gen_range(300.0..800.0);
            // Derive activation elements from the target share using the
            // same rates the performance model applies:
            //   t_mat = macs/4096, t_vec = vec/8, t_act = act·cost/8,
            //   share = t_act / (t_mat + t_vec + t_act).
            let t_other = macs / 4096.0 + vector_elems / 8.0;
            let t_act = share / (1.0 - share) * t_other;
            let cost = baseline_activation_cost(act);
            let activation_elems = t_act * 8.0 / cost;
            let m = ModelDescriptor {
                name: forced_name.unwrap_or_else(|| {
                    format!(
                        "{}_{year}_{i:03}",
                        spec.family.label().to_lowercase().replace([' ', '.'], "")
                    )
                }),
                family: spec.family,
                year,
                dominant_activation: act,
                macs,
                vector_elems,
                activation_elems,
            };
            m.validate();
            out.push(m);
        }
    }
    out
}

/// Aggregate activation-traffic mix of a zoo population: for each
/// dominant activation, the fraction of all activation *elements* that
/// flow through it — i.e. how a workload generator should weight its
/// per-function arrival streams to look like this fleet. Sorted by
/// descending share (ties broken by name); shares sum to 1 for a
/// non-empty population.
pub fn activation_mix(models: &[ModelDescriptor]) -> Vec<(&'static str, f64)> {
    let mut totals: std::collections::BTreeMap<&'static str, f64> =
        std::collections::BTreeMap::new();
    for m in models {
        *totals.entry(m.dominant_activation).or_insert(0.0) += m.activation_elems;
    }
    let grand: f64 = totals.values().sum();
    if grand <= 0.0 {
        return Vec::new();
    }
    let mut mix: Vec<(&'static str, f64)> =
        totals.into_iter().map(|(k, v)| (k, v / grand)).collect();
    mix.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite shares")
            .then(a.0.cmp(b.0))
    });
    mix
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_size_and_composition() {
        let zoo = generate_zoo(1);
        assert_eq!(zoo.len(), CV_MODELS + NLP_MODELS);
        let count = |f: Family| zoo.iter().filter(|m| m.family == f).count();
        assert_eq!(count(Family::NlpTransformer), 150);
        assert_eq!(count(Family::ResNet), 180);
        assert_eq!(count(Family::Vgg), 15);
        let cv: usize = Family::ALL
            .iter()
            .filter(|&&f| f != Family::NlpTransformer)
            .map(|&f| count(f))
            .sum();
        assert_eq!(cv, CV_MODELS);
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(generate_zoo(7), generate_zoo(7));
        assert_ne!(generate_zoo(7), generate_zoo(8));
    }

    #[test]
    fn all_descriptors_validate() {
        for m in generate_zoo(3) {
            m.validate();
        }
    }

    #[test]
    fn family_activations_match_specs() {
        let zoo = generate_zoo(5);
        for m in &zoo {
            match m.family {
                Family::Vgg => assert_eq!(m.dominant_activation, "relu"),
                Family::EfficientNet => assert_eq!(m.dominant_activation, "silu"),
                Family::VisionTransformer => {
                    assert!(["gelu", "softmax"].contains(&m.dominant_activation))
                }
                _ => {}
            }
        }
    }

    #[test]
    fn eras_are_respected() {
        let zoo = generate_zoo(11);
        for m in &zoo {
            match m.family {
                Family::Vgg => assert!(m.year <= 2016),
                Family::VisionTransformer => assert!(m.year >= 2020),
                Family::EfficientNet => assert!(m.year >= 2019),
                _ => {}
            }
        }
    }

    #[test]
    fn activation_mix_weights_by_element_traffic() {
        let zoo = generate_zoo(19);
        let mix = activation_mix(&zoo);
        assert!(!mix.is_empty());
        let total: f64 = mix.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-12, "shares sum to {total}");
        assert!(mix.iter().all(|&(_, s)| s > 0.0));
        // Sorted by descending share.
        assert!(mix.windows(2).all(|w| w[0].1 >= w[1].1));
        // Every name comes from the zoo itself.
        for (name, _) in &mix {
            assert!(zoo.iter().any(|m| m.dominant_activation == *name));
        }
        // Deterministic, and empty populations yield an empty mix.
        assert_eq!(mix, activation_mix(&generate_zoo(19)));
        assert!(activation_mix(&[]).is_empty());
    }

    #[test]
    fn cost_table_ranks_functions_like_the_paper() {
        // ReLU cheapest; GELU the most expensive per the paper's 12x claim.
        assert_eq!(baseline_activation_cost("relu"), 1.0);
        assert!(baseline_activation_cost("silu") > baseline_activation_cost("hardswish"));
        assert!(baseline_activation_cost("gelu") > baseline_activation_cost("silu"));
        assert_eq!(baseline_activation_cost("unknown_future_act"), 4.0);
    }

    #[test]
    fn derived_shares_reproduce_targets() {
        // Invert the share derivation for a few models and check we get
        // back the family range.
        let zoo = generate_zoo(13);
        for m in zoo.iter().filter(|m| m.family == Family::EfficientNet) {
            let cost = baseline_activation_cost(m.dominant_activation);
            let t_act = m.activation_elems * cost / 8.0;
            let t_other = m.macs / 4096.0 + m.vector_elems / 8.0;
            let share = t_act / (t_act + t_other);
            assert!((0.30..0.41).contains(&share), "{}: share {share}", m.name);
        }
    }
}
