//! # flexsfu-zoo
//!
//! A seeded synthetic model zoo standing in for the paper's 628 TIMM
//! computer-vision models and 150 Hugging Face NLP transformers.
//!
//! Each [`ModelDescriptor`] carries what the end-to-end performance model
//! needs: family, publication year, dominant activation function, MAC
//! count (matrix-unit work), vector-op element count, and
//! activation-element count. The generator is **calibrated** on the
//! statistics the paper reports — the activation-function distribution per
//! year (Figure 1), the family composition of the benchmark suite, and the
//! per-family activation time shares implied by Figure 6's speedups — so
//! aggregate results reproduce the paper's shape while every downstream
//! code path (descriptor → accelerator model → aggregation) runs for real.
//!
//! # Examples
//!
//! ```
//! use flexsfu_zoo::{generate_zoo, Family};
//!
//! let zoo = generate_zoo(42);
//! assert_eq!(zoo.len(), 778);
//! let nlp = zoo.iter().filter(|m| m.family == Family::NlpTransformer).count();
//! assert_eq!(nlp, 150);
//! ```

pub mod descriptor;
pub mod generator;
pub mod yeardist;

pub use descriptor::{Family, ModelDescriptor};
pub use generator::{activation_mix, generate_zoo, CV_MODELS, NLP_MODELS};
pub use yeardist::{activation_mix_for_year, year_distribution, YEARS};
