//! The activation-function mix per publication year (paper, Figure 1).
//!
//! Figure 1 tracks, across 700+ models, which activation dominates each
//! model by publication year: ReLU falls from ~90 % in 2015 to 20.7 % in
//! 2021 while SiLU and GELU jointly climb to 32.1 % (2020) and 44.2 %
//! (2021). The mixing tables below encode that trend; the generator
//! samples each model's dominant activation from its year's row.

/// The study window.
pub const YEARS: [u16; 7] = [2015, 2016, 2017, 2018, 2019, 2020, 2021];

/// The activation names tracked by Figure 1, in legend order.
pub const FIG1_ACTIVATIONS: [&str; 10] = [
    "relu",
    "silu",
    "gelu",
    "softmax",
    "hardswish",
    "sigmoid",
    "leaky_relu",
    "elu",
    "hardsigmoid",
    "tanh",
];

/// Probability that a model published in `year` is dominated by each of
/// [`FIG1_ACTIVATIONS`] (same order, sums to 1).
///
/// # Panics
///
/// Panics if `year` is outside the study window.
pub fn activation_mix_for_year(year: u16) -> [f64; 10] {
    match year {
        //        relu   silu   gelu  softm  hswish sigm   leaky  elu    hsig   tanh
        2015 => [
            0.880, 0.000, 0.000, 0.020, 0.000, 0.040, 0.010, 0.000, 0.000, 0.050,
        ],
        2016 => [
            0.850, 0.000, 0.000, 0.030, 0.000, 0.030, 0.050, 0.020, 0.000, 0.020,
        ],
        2017 => [
            0.780, 0.000, 0.010, 0.050, 0.000, 0.040, 0.080, 0.020, 0.000, 0.020,
        ],
        2018 => [
            0.600, 0.030, 0.130, 0.080, 0.010, 0.050, 0.060, 0.020, 0.010, 0.010,
        ],
        2019 => [
            0.430, 0.110, 0.180, 0.090, 0.080, 0.040, 0.040, 0.010, 0.015, 0.005,
        ],
        2020 => [
            0.300, 0.130, 0.191, 0.110, 0.130, 0.040, 0.050, 0.010, 0.030, 0.009,
        ],
        2021 => [
            0.207, 0.170, 0.272, 0.120, 0.120, 0.040, 0.030, 0.005, 0.030, 0.006,
        ],
        other => panic!("year {other} outside the 2015-2021 study window"),
    }
}

/// How many zoo models are published in each year (roughly matching the
/// growth of model releases in the TIMM/HF collections).
pub fn year_distribution(total: usize) -> Vec<(u16, usize)> {
    // Weights sum to 1; later years contribute more models.
    const WEIGHTS: [f64; 7] = [0.04, 0.06, 0.09, 0.13, 0.19, 0.24, 0.25];
    let mut out = Vec::with_capacity(7);
    let mut assigned = 0;
    for (i, &y) in YEARS.iter().enumerate() {
        let n = if i == YEARS.len() - 1 {
            total - assigned
        } else {
            (total as f64 * WEIGHTS[i]).round() as usize
        };
        out.push((y, n));
        assigned += n;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_sum_to_one() {
        for y in YEARS {
            let mix = activation_mix_for_year(y);
            let s: f64 = mix.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "year {y} sums to {s}");
            assert!(mix.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn relu_declines_monotonically() {
        let mut prev = 1.0;
        for y in YEARS {
            let relu = activation_mix_for_year(y)[0];
            assert!(relu <= prev, "ReLU share must fall ({y})");
            prev = relu;
        }
        // Paper: 20.7 % in 2021.
        assert!((activation_mix_for_year(2021)[0] - 0.207).abs() < 1e-9);
    }

    #[test]
    fn silu_gelu_joint_shares_match_paper() {
        // Paper: SiLU + GELU jointly 32.1 % in 2020 and 44.2 % in 2021.
        let m20 = activation_mix_for_year(2020);
        let m21 = activation_mix_for_year(2021);
        assert!((m20[1] + m20[2] - 0.321).abs() < 1e-9);
        assert!((m21[1] + m21[2] - 0.442).abs() < 1e-9);
    }

    #[test]
    fn year_distribution_accounts_for_everything() {
        let d = year_distribution(778);
        let total: usize = d.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 778);
        assert_eq!(d.len(), 7);
        // Later years have more releases.
        assert!(d[6].1 > d[0].1);
    }

    #[test]
    #[should_panic(expected = "outside the 2015-2021")]
    fn out_of_window_year_panics() {
        activation_mix_for_year(2012);
    }
}
