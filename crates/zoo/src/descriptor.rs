//! Model descriptors: the op-count summaries the performance model runs on.

/// Model family, matching the x-axis groups of the paper's Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Classic VGG-style plain CNNs (ReLU).
    Vgg,
    /// MobileNet V1–V3 (ReLU6 / Hardswish).
    MobileNet,
    /// ResNets and the -ts / ResNeXt variants (ReLU, some SiLU).
    ResNet,
    /// Vision transformers (GELU + Softmax).
    VisionTransformer,
    /// NLP transformers from the Hugging Face suite (GELU + Softmax).
    NlpTransformer,
    /// EfficientNets (SiLU).
    EfficientNet,
    /// DarkNets / CSP backbones (SiLU / Mish-heavy).
    DarkNet,
    /// Everything else in TIMM.
    Other,
}

impl Family {
    /// All families, in the paper's Figure 6 display order.
    pub const ALL: [Family; 8] = [
        Family::Vgg,
        Family::MobileNet,
        Family::Other,
        Family::ResNet,
        Family::VisionTransformer,
        Family::NlpTransformer,
        Family::EfficientNet,
        Family::DarkNet,
    ];

    /// Display label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Family::Vgg => "VGGs",
            Family::MobileNet => "MobileNets",
            Family::ResNet => "ResNets",
            Family::VisionTransformer => "Vision Transf.",
            Family::NlpTransformer => "NLP Transf.",
            Family::EfficientNet => "EfficientNets",
            Family::DarkNet => "DarkNets",
            Family::Other => "Others",
        }
    }
}

/// Workload summary of one model, batch size 1.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelDescriptor {
    /// Synthetic model name (`"resnet_2019_017"`, …).
    pub name: String,
    /// Family group.
    pub family: Family,
    /// Publication year (2015–2021, Figure 1's x-axis).
    pub year: u16,
    /// Most frequent activation function (Figure 6's colour).
    pub dominant_activation: &'static str,
    /// Matrix-unit multiply-accumulates per inference.
    pub macs: f64,
    /// Non-activation vector-unit elements per inference (elementwise adds,
    /// normalization, pooling, …).
    pub vector_elems: f64,
    /// Elements flowing through activation functions per inference.
    pub activation_elems: f64,
}

impl ModelDescriptor {
    /// Validates the descriptor's counts.
    ///
    /// # Panics
    ///
    /// Panics if any count is non-positive or non-finite.
    pub fn validate(&self) {
        assert!(
            self.macs > 0.0 && self.macs.is_finite(),
            "{}: bad mac count",
            self.name
        );
        assert!(
            self.vector_elems >= 0.0 && self.vector_elems.is_finite(),
            "{}: bad vector count",
            self.name
        );
        assert!(
            self.activation_elems > 0.0 && self.activation_elems.is_finite(),
            "{}: bad activation count",
            self.name
        );
        assert!(
            (2015..=2021).contains(&self.year),
            "{}: year {} outside the study window",
            self.name,
            self.year
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_labels_are_unique() {
        let labels: std::collections::HashSet<_> = Family::ALL.iter().map(|f| f.label()).collect();
        assert_eq!(labels.len(), Family::ALL.len());
    }

    #[test]
    fn validate_accepts_sane_descriptor() {
        ModelDescriptor {
            name: "test".into(),
            family: Family::ResNet,
            year: 2019,
            dominant_activation: "relu",
            macs: 4e9,
            vector_elems: 1e7,
            activation_elems: 1e7,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "bad mac count")]
    fn validate_rejects_zero_macs() {
        ModelDescriptor {
            name: "bad".into(),
            family: Family::Vgg,
            year: 2016,
            dominant_activation: "relu",
            macs: 0.0,
            vector_elems: 0.0,
            activation_elems: 1.0,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "outside the study window")]
    fn validate_rejects_out_of_window_year() {
        ModelDescriptor {
            name: "bad".into(),
            family: Family::Vgg,
            year: 2034,
            dominant_activation: "relu",
            macs: 1.0,
            vector_elems: 0.0,
            activation_elems: 1.0,
        }
        .validate();
    }
}
