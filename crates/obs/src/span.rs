//! Request-lifecycle tracing: sampled per-job stage timestamps.
//!
//! A sampled job carries an [`SpanCell`] (an `Arc` of atomics) through
//! the serving stack; each layer stamps its [`Stage`] as the job passes.
//! The [`SpanRecorder`] keeps the most recent cells in a bounded ring,
//! and [`SpanRecorder::dump`] turns them into plain [`Span`]s — a
//! per-stage latency breakdown that explains *where* any percentile of
//! end-to-end latency went.
//!
//! Sampling is 1-in-N by submit order ([`SampleRate`]), decided by a
//! sequential counter — so a deterministic replay (sequential submits, a
//! [`crate::ManualClock`]) samples the same jobs and stamps the same
//! nanoseconds, bit for bit.

use crate::clock::Clock;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Lifecycle stages a request moves through, in pipeline order.
///
/// The first three stages are stamped router-side (`flexsfu-shard`), the
/// rest shard-side; a distributed request's two spans share a trace id
/// and split the array between them. Re-stamps are last-wins, so after a
/// failover the surviving stamps are the *final* attempt's — `Retry`
/// (stamped at each retry decision) lands between the first
/// `RouteSelect` and the final `WireSubmit`, which keeps the array order
/// equal to timestamp order on every path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Router picked the serving shard (stamped once, first attempt).
    RouteSelect = 0,
    /// Router decided to retry after a failed attempt (last retry wins).
    Retry = 1,
    /// Router handed the request to the wire client (final attempt).
    WireSubmit = 2,
    /// Request handed to the serving tier.
    Submit = 3,
    /// Request accepted into the batching queue.
    Enqueue = 4,
    /// Batcher planned the flush containing this request.
    FlushPlan = 5,
    /// Backend evaluation of the flush began.
    BackendEval = 6,
    /// Results scattered back and the ticket completed.
    ScatterBack = 7,
    /// Result frame written to the client socket (wire tier only).
    WireWrite = 8,
}

/// Number of [`Stage`] variants; the length of a span's stamp array.
pub const STAGE_COUNT: usize = 9;

/// All stages, in pipeline order.
pub const STAGES: [Stage; STAGE_COUNT] = [
    Stage::RouteSelect,
    Stage::Retry,
    Stage::WireSubmit,
    Stage::Submit,
    Stage::Enqueue,
    Stage::FlushPlan,
    Stage::BackendEval,
    Stage::ScatterBack,
    Stage::WireWrite,
];

impl Stage {
    /// Stable lower-case name (used in dumps and docs).
    pub fn name(self) -> &'static str {
        match self {
            Stage::RouteSelect => "route_select",
            Stage::Retry => "retry",
            Stage::WireSubmit => "wire_submit",
            Stage::Submit => "submit",
            Stage::Enqueue => "enqueue",
            Stage::FlushPlan => "flush_plan",
            Stage::BackendEval => "backend_eval",
            Stage::ScatterBack => "scatter_back",
            Stage::WireWrite => "wire_write",
        }
    }
}

const UNSET: u64 = u64::MAX;

/// Shared, concurrently stampable span for one in-flight job.
///
/// Stamping is a single relaxed store — safe from any thread holding the
/// `Arc`, allocation-free, and idempotent per stage (last stamp wins).
#[derive(Debug)]
pub struct SpanCell {
    job: u64,
    func: u32,
    trace: Option<u64>,
    stamps: [AtomicU64; STAGE_COUNT],
}

impl SpanCell {
    fn new(job: u64, func: u32, trace: Option<u64>) -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const EMPTY: AtomicU64 = AtomicU64::new(UNSET);
        Self {
            job,
            func,
            trace,
            stamps: [EMPTY; STAGE_COUNT],
        }
    }

    /// Sequential job id assigned at sampling time.
    pub fn job(&self) -> u64 {
        self.job
    }

    /// Numeric id of the function the job targets.
    pub fn func(&self) -> u32 {
        self.func
    }

    /// Distributed trace id, if this span participates in one.
    ///
    /// `Some` for spans originated by [`SpanRecorder::start_trace`]
    /// (trace roots) and for spans adopted from a propagated id
    /// ([`SpanRecorder::adopt`]); `None` for plain local samples.
    pub fn trace(&self) -> Option<u64> {
        self.trace
    }

    /// Stamps `stage` at `at_ns`. (`u64::MAX` is the reserved "unset"
    /// sentinel and is clamped down by one if ever passed.)
    #[inline]
    pub fn record(&self, stage: Stage, at_ns: u64) {
        let t = if at_ns == UNSET { UNSET - 1 } else { at_ns };
        self.stamps[stage as usize].store(t, Ordering::Relaxed);
    }

    /// Reads back a stamp, if that stage has happened.
    pub fn stamp(&self, stage: Stage) -> Option<u64> {
        match self.stamps[stage as usize].load(Ordering::Relaxed) {
            UNSET => None,
            t => Some(t),
        }
    }
}

/// Plain-data copy of a completed (or in-flight) span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Sequential job id (submit order).
    pub job: u64,
    /// Numeric function id.
    pub func: u32,
    /// Distributed trace id; `None` for plain local samples.
    pub trace: Option<u64>,
    /// Per-stage timestamps in ns; `None` = stage not reached (or not
    /// applicable — in-process callers never see a wire write).
    pub stamps: [Option<u64>; STAGE_COUNT],
}

impl Span {
    /// Timestamp of `stage`, if reached.
    pub fn stage(&self, stage: Stage) -> Option<u64> {
        self.stamps[stage as usize]
    }

    /// Duration from `from` to `to` (saturating), if both were stamped.
    pub fn between(&self, from: Stage, to: Stage) -> Option<u64> {
        match (self.stage(from), self.stage(to)) {
            (Some(a), Some(b)) => Some(b.saturating_sub(a)),
            _ => None,
        }
    }

    /// Submit → last stamped stage (saturating); `None` until two
    /// stages have stamps.
    pub fn total_ns(&self) -> Option<u64> {
        let first = self.stamps.iter().flatten().copied().next()?;
        let last = self.stamps.iter().flatten().copied().last()?;
        Some(last.saturating_sub(first))
    }
}

/// 1-in-N sampling rate: `SampleRate(1)` traces every job,
/// `SampleRate(16)` every sixteenth (by submit order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleRate(pub u32);

impl SampleRate {
    /// Trace everything.
    pub const ALL: SampleRate = SampleRate(1);

    /// # Panics
    ///
    /// Panics if the rate is zero.
    fn validate(self) {
        assert!(self.0 > 0, "sample rate must be >= 1");
    }
}

impl Default for SampleRate {
    fn default() -> Self {
        SampleRate(16)
    }
}

#[derive(Debug, Default)]
struct Ring {
    slots: VecDeque<Arc<SpanCell>>,
    dropped: u64,
}

/// Bounded ring of sampled spans plus the clock that stamps them.
///
/// [`SpanRecorder::try_start`] decides sampling and allocates the cell
/// (sampled jobs only — the unsampled path is a counter increment and a
/// branch). When the ring is full the oldest span falls off; `dropped`
/// counts the evictions so a dump is honest about its coverage.
#[derive(Debug)]
pub struct SpanRecorder {
    clock: Arc<dyn Clock>,
    rate: u32,
    capacity: usize,
    seq: AtomicU64,
    ring: Mutex<Ring>,
}

impl SpanRecorder {
    /// A recorder keeping at most `capacity` spans, sampling 1-in-`rate`
    /// jobs, stamping from `clock`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or the rate is zero.
    pub fn new(capacity: usize, rate: SampleRate, clock: Arc<dyn Clock>) -> Self {
        rate.validate();
        assert!(capacity > 0, "span ring capacity must be >= 1");
        Self {
            clock,
            rate: rate.0,
            capacity,
            seq: AtomicU64::new(0),
            ring: Mutex::new(Ring::default()),
        }
    }

    /// The stamping clock (shared with any layer that stamps directly).
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock)
    }

    /// Reads the clock once.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Claims the next sequential job id and, if that job is sampled,
    /// registers and returns its span cell (with no stages stamped yet).
    /// Jobs `0, N, 2N, …` of the submit order are sampled.
    pub fn try_start(&self, func: u32) -> Option<Arc<SpanCell>> {
        let job = self.seq.fetch_add(1, Ordering::Relaxed);
        if !job.is_multiple_of(self.rate as u64) {
            return None;
        }
        Some(self.register(SpanCell::new(job, func, None)))
    }

    /// Like [`SpanRecorder::try_start`], but a sampled span becomes the
    /// *root* of a distributed trace: it carries a fresh nonzero trace
    /// id (`job + 1`, so a sequential replay regenerates the same ids)
    /// for downstream processes to adopt.
    pub fn start_trace(&self, func: u32) -> Option<Arc<SpanCell>> {
        let job = self.seq.fetch_add(1, Ordering::Relaxed);
        if !job.is_multiple_of(self.rate as u64) {
            return None;
        }
        Some(self.register(SpanCell::new(job, func, Some(job + 1))))
    }

    /// Adopts a trace id propagated from an upstream process.
    ///
    /// The upstream origin already made the sampling decision when it
    /// minted the id, so adoption *always* records — local 1-in-N
    /// sampling is bypassed (the job still claims a sequential id, so
    /// interleaved untraced traffic keeps its cadence).
    pub fn adopt(&self, func: u32, trace_id: u64) -> Arc<SpanCell> {
        let job = self.seq.fetch_add(1, Ordering::Relaxed);
        self.register(SpanCell::new(job, func, Some(trace_id)))
    }

    fn register(&self, cell: SpanCell) -> Arc<SpanCell> {
        let cell = Arc::new(cell);
        let mut ring = self.ring.lock().unwrap();
        if ring.slots.len() == self.capacity {
            ring.slots.pop_front();
            ring.dropped += 1;
        }
        ring.slots.push_back(Arc::clone(&cell));
        cell
    }

    /// Stamps `stage` on `cell` with the recorder's clock.
    #[inline]
    pub fn stamp(&self, cell: &SpanCell, stage: Stage) {
        cell.record(stage, self.clock.now_ns());
    }

    /// Jobs submitted so far (sampled or not).
    pub fn submitted(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Spans evicted from the ring since creation.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().unwrap().dropped
    }

    /// Copies every retained span out as plain data, oldest first.
    pub fn dump(&self) -> Vec<Span> {
        let ring = self.ring.lock().unwrap();
        ring.slots
            .iter()
            .map(|cell| {
                let mut stamps = [None; STAGE_COUNT];
                for (i, slot) in stamps.iter_mut().enumerate() {
                    *slot = match cell.stamps[i].load(Ordering::Relaxed) {
                        UNSET => None,
                        t => Some(t),
                    };
                }
                Span {
                    job: cell.job,
                    func: cell.func,
                    trace: cell.trace,
                    stamps,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn recorder(rate: u32, cap: usize) -> (Arc<ManualClock>, SpanRecorder) {
        let clock = Arc::new(ManualClock::new());
        let rec = SpanRecorder::new(cap, SampleRate(rate), clock.clone() as Arc<dyn Clock>);
        (clock, rec)
    }

    #[test]
    fn one_in_n_sampling_by_submit_order() {
        let (_, rec) = recorder(4, 64);
        let sampled: Vec<bool> = (0..12).map(|f| rec.try_start(f).is_some()).collect();
        assert_eq!(
            sampled,
            [true, false, false, false, true, false, false, false, true, false, false, false]
        );
        assert_eq!(rec.submitted(), 12);
        assert_eq!(rec.dump().len(), 3);
    }

    #[test]
    fn stamps_read_back_in_stage_order() {
        let (clock, rec) = recorder(1, 8);
        let cell = rec.try_start(7).expect("rate 1 samples everything");
        for (i, &st) in STAGES.iter().enumerate() {
            clock.set(100 * (i as u64 + 1));
            rec.stamp(&cell, st);
        }
        let spans = rec.dump();
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.func, 7);
        assert_eq!(s.stage(Stage::RouteSelect), Some(100));
        assert_eq!(s.stage(Stage::Submit), Some(400));
        assert_eq!(s.stage(Stage::WireWrite), Some(900));
        assert_eq!(s.between(Stage::Submit, Stage::BackendEval), Some(300));
        assert_eq!(s.total_ns(), Some(800));
    }

    #[test]
    fn unreached_stages_stay_none() {
        let (_, rec) = recorder(1, 8);
        let cell = rec.try_start(0).unwrap();
        rec.stamp(&cell, Stage::Submit);
        let s = &rec.dump()[0];
        assert_eq!(s.stage(Stage::WireWrite), None);
        assert_eq!(s.between(Stage::Submit, Stage::WireWrite), None);
        assert_eq!(s.total_ns(), Some(0)); // only one stamp
    }

    #[test]
    fn local_samples_carry_no_trace_id() {
        let (_, rec) = recorder(1, 8);
        let cell = rec.try_start(0).unwrap();
        assert_eq!(cell.trace(), None);
        assert_eq!(rec.dump()[0].trace, None);
    }

    #[test]
    fn trace_roots_mint_sequential_nonzero_ids() {
        let (_, rec) = recorder(2, 8);
        let ids: Vec<Option<u64>> = (0..6)
            .map(|f| rec.start_trace(f).map(|c| c.trace().unwrap()))
            .collect();
        // Jobs 0, 2, 4 sampled; trace id = job + 1, never zero.
        assert_eq!(ids, [Some(1), None, Some(3), None, Some(5), None]);
    }

    #[test]
    fn adoption_bypasses_sampling_and_keeps_the_propagated_id() {
        let (_, rec) = recorder(1000, 8);
        // Rate 1000 would sample only job 0 — adoption must ignore that.
        let _ = rec.try_start(0); // job 0, sampled locally
        let adopted = rec.adopt(7, 4242);
        assert_eq!(adopted.trace(), Some(4242));
        assert_eq!(adopted.job(), 1);
        let dump = rec.dump();
        assert_eq!(dump.len(), 2, "adopted span always lands in the ring");
        assert_eq!(dump[1].trace, Some(4242));
        // Interleaved untraced traffic keeps its sequential cadence.
        assert_eq!(rec.submitted(), 2);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let (_, rec) = recorder(1, 2);
        for f in 0..5 {
            rec.try_start(f);
        }
        assert_eq!(rec.dropped(), 3);
        let jobs: Vec<u64> = rec.dump().iter().map(|s| s.job).collect();
        assert_eq!(jobs, [3, 4]);
    }

    #[test]
    #[should_panic(expected = "sample rate")]
    fn zero_rate_is_rejected() {
        let clock = Arc::new(ManualClock::new());
        let _ = SpanRecorder::new(1, SampleRate(0), clock);
    }
}
