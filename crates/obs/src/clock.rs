//! Time sources for span stamps.
//!
//! Instrumented layers never call `Instant::now()` directly — they ask a
//! [`Clock`]. Production uses [`MonotonicClock`]; deterministic replays
//! (the `flexsfu-traffic` round driver) use [`ManualClock`], advanced at
//! round barriers, so two replays of one trace stamp identical spans.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotone nanosecond source. Implementations must never run
/// backwards between two calls observed by one thread.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds since an arbitrary (per-clock) origin.
    fn now_ns(&self) -> u64;
}

/// Wall-clock-independent monotonic time, anchored at construction.
///
/// # Examples
///
/// ```
/// use flexsfu_obs::{Clock, MonotonicClock};
///
/// let clock = MonotonicClock::new();
/// let a = clock.now_ns();
/// assert!(clock.now_ns() >= a);
/// ```
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl MonotonicClock {
    /// A clock whose zero is "now".
    pub fn new() -> Self {
        Self::default()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        let ns = self.origin.elapsed().as_nanos();
        if ns > u64::MAX as u128 {
            u64::MAX
        } else {
            ns as u64
        }
    }
}

/// Externally driven clock: time stands still until somebody advances
/// it. This is the deterministic counterpart of [`MonotonicClock`] —
/// replay harnesses advance it at round barriers so every span stamp is
/// a pure function of the trace position.
///
/// # Examples
///
/// ```
/// use flexsfu_obs::{Clock, ManualClock};
///
/// let clock = ManualClock::new();
/// clock.advance(250);
/// clock.set(1_000);
/// assert_eq!(clock.now_ns(), 1_000);
/// ```
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Jumps to `t` nanoseconds. Monotonicity is the caller's contract;
    /// the clock itself only stores the value.
    pub fn set(&self, t: u64) {
        self.now.store(t, Ordering::Relaxed);
    }

    /// Moves forward by `dt` nanoseconds (saturating).
    pub fn advance(&self, dt: u64) {
        let _ = self
            .now
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(dt))
            });
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_never_regresses() {
        let c = MonotonicClock::new();
        let mut prev = 0;
        for _ in 0..1000 {
            let t = c.now_ns();
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn manual_moves_only_when_told() {
        let c = ManualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(5);
        assert_eq!(c.now_ns(), 5);
        c.advance(u64::MAX);
        assert_eq!(c.now_ns(), u64::MAX); // saturates
        c.set(9);
        assert_eq!(c.now_ns(), 9);
    }
}
