//! Push-mode telemetry: a background exporter shipping snapshots and
//! completed spans to a sink.
//!
//! Scrape-only telemetry dies with the scraper; the
//! [`TelemetryExporter`] inverts the arrow. Each tick it copies the
//! source registry ([`MetricsSnapshot`]) and the span ring's *new*
//! spans into a [`TelemetryBatch`] and pushes the batch through a
//! [`TelemetrySink`]. The hot path is never involved: the exporter
//! only **reads** atomics and the bounded span ring, on its own
//! thread — serving never blocks on, allocates for, or even knows
//! about export.
//!
//! Sinks fail (collectors restart, networks partition), so batches
//! buffer in a **bounded** queue: when the sink is down the queue
//! absorbs up to [`ExporterConfig::buffer`] batches, then drops the
//! oldest and counts every drop in [`M_EXPORTER_DROPPED`] — loss is
//! explicit, never silent, and never back-pressures serving. Failed
//! ships back off exponentially (in tick units, so the schedule is
//! deterministic under test) up to
//! [`ExporterConfig::max_backoff_ticks`].
//!
//! Like the adaptive retuner, the loop is **steppable**:
//! [`TelemetryExporter::tick`] takes no time and reads no clock, and
//! [`TelemetryExporter::spawn`] wraps the same tick in a thread for
//! production.

use crate::metrics::{Counter, MetricsRegistry};
use crate::snapshot::{MetricsSnapshot, SnapshotError};
use crate::span::{Span, SpanRecorder, STAGE_COUNT};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Counter: batches shipped successfully through the sink.
pub const M_EXPORTER_SHIPPED: &str = "flexsfu_exporter_shipped_total";
/// Counter: batches dropped because the bounded buffer overflowed
/// while the sink was failing. Every lost export is counted here.
pub const M_EXPORTER_DROPPED: &str = "flexsfu_exporter_dropped_total";
/// Counter: individual ship attempts that failed.
pub const M_EXPORTER_FAILURES: &str = "flexsfu_exporter_failures_total";

/// Codec magic for a serialized [`TelemetryBatch`].
pub const BATCH_MAGIC: [u8; 4] = *b"FXTB";
/// Current batch codec version.
pub const BATCH_VERSION: u16 = 1;

/// One export unit: who, when (sequence), and what.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryBatch {
    /// Origin label of the exporting process (e.g. `shard0`).
    pub origin: String,
    /// Monotonic batch sequence number per exporter, from 0.
    pub seq: u64,
    /// Cumulative registry snapshot at collection time. Successive
    /// batches overlap (counters are cumulative) — a collector keeps
    /// the **latest** per origin rather than summing.
    pub snapshot: MetricsSnapshot,
    /// Spans that entered the ring since the previous batch, with
    /// whatever stamps they had at collection time. Disjoint across
    /// batches (watermarked by job id) — a collector appends.
    pub spans: Vec<Span>,
}

impl TelemetryBatch {
    /// Serializes the batch (magic `FXTB`; the snapshot travels as its
    /// own nested `FXOB` blob, spans as sparse stamp arrays).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        out.extend_from_slice(&BATCH_MAGIC);
        out.extend_from_slice(&BATCH_VERSION.to_le_bytes());
        assert!(self.origin.len() <= u16::MAX as usize, "origin too long");
        out.extend_from_slice(&(self.origin.len() as u16).to_le_bytes());
        out.extend_from_slice(self.origin.as_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        let blob = self.snapshot.encode();
        out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
        out.extend_from_slice(&blob);
        out.extend_from_slice(&(self.spans.len() as u32).to_le_bytes());
        for span in &self.spans {
            out.extend_from_slice(&span.job.to_le_bytes());
            out.extend_from_slice(&span.func.to_le_bytes());
            match span.trace {
                Some(id) => {
                    out.push(1);
                    out.extend_from_slice(&id.to_le_bytes());
                }
                None => out.push(0),
            }
            // Stamp count travels explicitly so peers with a different
            // stage vocabulary still decode the prefix they know.
            out.extend_from_slice(&(STAGE_COUNT as u16).to_le_bytes());
            for stamp in &span.stamps {
                out.extend_from_slice(&stamp.unwrap_or(u64::MAX).to_le_bytes());
            }
        }
        out
    }

    /// Total decoder for [`TelemetryBatch::encode`]'s output. Stamp
    /// arrays longer than this build's [`STAGE_COUNT`] are truncated,
    /// shorter ones padded with `None` — both directions of a stage
    /// vocabulary skew decode cleanly.
    ///
    /// # Errors
    ///
    /// Any malformed input yields a [`SnapshotError`] (the batch codec
    /// shares the snapshot codec's error vocabulary); trailing bytes
    /// are rejected.
    pub fn decode(bytes: &[u8]) -> Result<TelemetryBatch, SnapshotError> {
        let truncated = |need: usize, have: usize| SnapshotError::Truncated { need, have };
        let mut at = 0usize;
        let take = |at: &mut usize, n: usize| -> Result<&[u8], SnapshotError> {
            if bytes.len() - *at < n {
                return Err(truncated(n, bytes.len() - *at));
            }
            let s = &bytes[*at..*at + n];
            *at += n;
            Ok(s)
        };
        let magic: [u8; 4] = take(&mut at, 4)?.try_into().expect("4 bytes");
        if magic != BATCH_MAGIC {
            return Err(SnapshotError::BadMagic(magic));
        }
        let version = u16::from_le_bytes(take(&mut at, 2)?.try_into().expect("2 bytes"));
        if version != BATCH_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let olen = u16::from_le_bytes(take(&mut at, 2)?.try_into().expect("2 bytes")) as usize;
        let origin = std::str::from_utf8(take(&mut at, olen)?)
            .map_err(|_| SnapshotError::BadKey)?
            .to_string();
        let seq = u64::from_le_bytes(take(&mut at, 8)?.try_into().expect("8 bytes"));
        let blen = u32::from_le_bytes(take(&mut at, 4)?.try_into().expect("4 bytes")) as usize;
        let snapshot = MetricsSnapshot::decode(take(&mut at, blen)?)?;
        let nspans = u32::from_le_bytes(take(&mut at, 4)?.try_into().expect("4 bytes")) as usize;
        // Guard the count against the bytes actually present (each span
        // needs at least job + func + flag + stamp count).
        let min_span = 8 + 4 + 1 + 2;
        if nspans.saturating_mul(min_span) > bytes.len() - at {
            return Err(truncated(nspans * min_span, bytes.len() - at));
        }
        let mut spans = Vec::with_capacity(nspans);
        for _ in 0..nspans {
            let job = u64::from_le_bytes(take(&mut at, 8)?.try_into().expect("8 bytes"));
            let func = u32::from_le_bytes(take(&mut at, 4)?.try_into().expect("4 bytes"));
            let trace = match take(&mut at, 1)?[0] {
                0 => None,
                _ => Some(u64::from_le_bytes(
                    take(&mut at, 8)?.try_into().expect("8 bytes"),
                )),
            };
            let nstamps =
                u16::from_le_bytes(take(&mut at, 2)?.try_into().expect("2 bytes")) as usize;
            let mut stamps = [None; STAGE_COUNT];
            for i in 0..nstamps {
                let raw = u64::from_le_bytes(take(&mut at, 8)?.try_into().expect("8 bytes"));
                if i < STAGE_COUNT && raw != u64::MAX {
                    stamps[i] = Some(raw);
                }
            }
            spans.push(Span {
                job,
                func,
                trace,
                stamps,
            });
        }
        if at != bytes.len() {
            return Err(SnapshotError::TrailingBytes(bytes.len() - at));
        }
        Ok(TelemetryBatch {
            origin,
            seq,
            snapshot,
            spans,
        })
    }
}

/// Where a ship attempt went wrong (carried back to the exporter for
/// retry/backoff accounting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkError(pub String);

impl fmt::Display for SinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "telemetry sink error: {}", self.0)
    }
}

impl std::error::Error for SinkError {}

/// Destination for telemetry batches. Implementations must not block
/// indefinitely — the exporter thread is the only caller, but a wedged
/// sink would stall the export schedule (never serving itself).
pub trait TelemetrySink: Send {
    /// Ships one batch. An `Err` leaves the batch buffered for retry.
    ///
    /// # Errors
    ///
    /// [`SinkError`] when delivery failed; the exporter retries with
    /// backoff and eventually drops (counted) under buffer pressure.
    fn ship(&mut self, batch: &TelemetryBatch) -> Result<(), SinkError>;
}

/// In-memory [`TelemetrySink`] for tests: stores shipped batches in a
/// shared vector and fails on demand via a shared switch.
#[derive(Debug, Default)]
pub struct MemorySink {
    store: Arc<Mutex<Vec<TelemetryBatch>>>,
    fail: Arc<AtomicBool>,
}

impl MemorySink {
    /// An empty, succeeding sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared handle to the shipped batches (observe from the test
    /// thread while the exporter owns the sink).
    pub fn store(&self) -> Arc<Mutex<Vec<TelemetryBatch>>> {
        Arc::clone(&self.store)
    }

    /// Shared failure switch: while `true`, every ship fails.
    pub fn fail_switch(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.fail)
    }
}

impl TelemetrySink for MemorySink {
    fn ship(&mut self, batch: &TelemetryBatch) -> Result<(), SinkError> {
        if self.fail.load(Ordering::Acquire) {
            return Err(SinkError("memory sink switched to fail".into()));
        }
        self.store
            .lock()
            .expect("sink store poisoned")
            .push(batch.clone());
        Ok(())
    }
}

/// Exporter tuning knobs.
#[derive(Debug, Clone)]
pub struct ExporterConfig {
    /// Tick period for [`TelemetryExporter::spawn`].
    pub interval: Duration,
    /// Maximum batches held while the sink fails; beyond this the
    /// oldest batch is dropped and counted.
    pub buffer: usize,
    /// Backoff cap after consecutive failures, in ticks (backoff grows
    /// 1, 2, 4, … up to this).
    pub max_backoff_ticks: u32,
}

impl Default for ExporterConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(250),
            buffer: 64,
            max_backoff_ticks: 32,
        }
    }
}

/// What one [`TelemetryExporter::tick`] did (for tests and logs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TickReport {
    /// Batches shipped this tick.
    pub shipped: usize,
    /// Batches dropped to the bounded buffer this tick.
    pub dropped: usize,
    /// Batches still buffered after the tick.
    pub buffered: usize,
    /// True when shipping was skipped because a backoff is in effect.
    pub backing_off: bool,
}

/// The push-mode telemetry loop. See the module docs for semantics.
pub struct TelemetryExporter {
    origin: String,
    metrics: Arc<MetricsRegistry>,
    spans: Option<Arc<SpanRecorder>>,
    sink: Box<dyn TelemetrySink>,
    config: ExporterConfig,
    seq: u64,
    /// Exclusive lower watermark: spans with `job <= watermark` were
    /// already collected into a batch.
    span_watermark: Option<u64>,
    buffer: VecDeque<TelemetryBatch>,
    /// Consecutive ship failures (drives the exponential backoff).
    failure_streak: u32,
    /// Ticks to skip before the next ship attempt.
    backoff_left: u32,
    shipped: Arc<Counter>,
    dropped: Arc<Counter>,
    failures: Arc<Counter>,
}

impl TelemetryExporter {
    /// An exporter reading `metrics`, shipping as `origin` through
    /// `sink`, with the default [`ExporterConfig`].
    ///
    /// The exporter's own counters ([`M_EXPORTER_SHIPPED`],
    /// [`M_EXPORTER_DROPPED`], [`M_EXPORTER_FAILURES`]) register into
    /// the same source registry, so they travel inside the very
    /// snapshots they describe.
    pub fn new(
        origin: impl Into<String>,
        metrics: Arc<MetricsRegistry>,
        sink: Box<dyn TelemetrySink>,
    ) -> Self {
        Self {
            origin: origin.into(),
            shipped: metrics.counter(M_EXPORTER_SHIPPED),
            dropped: metrics.counter(M_EXPORTER_DROPPED),
            failures: metrics.counter(M_EXPORTER_FAILURES),
            metrics,
            spans: None,
            sink,
            config: ExporterConfig::default(),
            seq: 0,
            span_watermark: None,
            buffer: VecDeque::new(),
            failure_streak: 0,
            backoff_left: 0,
        }
    }

    /// Also ship new spans from `spans` in every batch.
    pub fn with_spans(mut self, spans: Arc<SpanRecorder>) -> Self {
        self.spans = Some(spans);
        self
    }

    /// Replaces the default configuration.
    pub fn with_config(mut self, config: ExporterConfig) -> Self {
        assert!(config.buffer > 0, "exporter buffer must be >= 1");
        self.config = config;
        self
    }

    /// Origin label batches are stamped with.
    pub fn origin(&self) -> &str {
        &self.origin
    }

    /// One steppable pass: collect a batch, then try to drain the
    /// buffer oldest-first (unless backing off). Deterministic given
    /// the registry/ring/sink states — no clock, no time.
    pub fn tick(&mut self) -> TickReport {
        let mut report = TickReport::default();

        // Collect. Only spans newer than the watermark travel, so
        // batches partition the span stream.
        let spans = match &self.spans {
            Some(rec) => {
                let mut new: Vec<Span> = rec
                    .dump()
                    .into_iter()
                    .filter(|s| self.span_watermark.is_none_or(|w| s.job > w))
                    .collect();
                new.sort_by_key(|s| s.job);
                if let Some(last) = new.last() {
                    self.span_watermark = Some(last.job);
                }
                new
            }
            None => Vec::new(),
        };
        let batch = TelemetryBatch {
            origin: self.origin.clone(),
            seq: self.seq,
            snapshot: self.metrics.snapshot(),
            spans,
        };
        self.seq += 1;
        if self.buffer.len() == self.config.buffer {
            self.buffer.pop_front();
            self.dropped.inc();
            report.dropped += 1;
        }
        self.buffer.push_back(batch);

        // Ship, honouring the backoff schedule.
        if self.backoff_left > 0 {
            self.backoff_left -= 1;
            report.backing_off = true;
            report.buffered = self.buffer.len();
            return report;
        }
        while let Some(front) = self.buffer.front() {
            match self.sink.ship(front) {
                Ok(()) => {
                    self.buffer.pop_front();
                    self.shipped.inc();
                    self.failure_streak = 0;
                    report.shipped += 1;
                }
                Err(_) => {
                    self.failures.inc();
                    self.failure_streak = self.failure_streak.saturating_add(1);
                    let ticks = 1u32 << (self.failure_streak - 1).min(31);
                    self.backoff_left = ticks.min(self.config.max_backoff_ticks);
                    report.backing_off = true;
                    break;
                }
            }
        }
        report.buffered = self.buffer.len();
        report
    }

    /// Runs the loop on a background thread, ticking every
    /// [`ExporterConfig::interval`]. Stop via the returned handle.
    pub fn spawn(self) -> ExporterHandle {
        let interval = self.config.interval;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name("flexsfu-exporter".into())
            .spawn(move || {
                let mut exporter = self;
                while !thread_stop.load(Ordering::Acquire) {
                    exporter.tick();
                    std::thread::park_timeout(interval);
                }
                // One final collect-and-ship so a clean shutdown
                // flushes whatever accumulated since the last tick.
                exporter.tick();
            })
            .expect("spawn exporter thread");
        ExporterHandle { stop, join }
    }
}

/// Handle to a spawned background exporter.
pub struct ExporterHandle {
    stop: Arc<AtomicBool>,
    join: std::thread::JoinHandle<()>,
}

impl ExporterHandle {
    /// Stops the loop (after one final flush tick) and joins the
    /// thread.
    pub fn stop(self) {
        self.stop.store(true, Ordering::Release);
        self.join.thread().unpark();
        self.join.join().expect("exporter thread panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, ManualClock};
    use crate::span::{SampleRate, Stage};

    fn exporter_with(sink: MemorySink, buffer: usize) -> (TelemetryExporter, Arc<MetricsRegistry>) {
        let metrics = Arc::new(MetricsRegistry::new());
        let exporter = TelemetryExporter::new("test", Arc::clone(&metrics), Box::new(sink))
            .with_config(ExporterConfig {
                buffer,
                max_backoff_ticks: 4,
                ..ExporterConfig::default()
            });
        (exporter, metrics)
    }

    #[test]
    fn batch_codec_round_trips() {
        let metrics = MetricsRegistry::new();
        metrics.counter("c").add(3);
        let clock = Arc::new(ManualClock::new());
        let rec = SpanRecorder::new(8, SampleRate::ALL, clock.clone() as Arc<dyn Clock>);
        let local = rec.try_start(1).unwrap();
        clock.set(50);
        rec.stamp(&local, Stage::Submit);
        let traced = rec.adopt(2, 77);
        rec.stamp(&traced, Stage::Enqueue);
        let batch = TelemetryBatch {
            origin: "shard0".into(),
            seq: 9,
            snapshot: metrics.snapshot(),
            spans: rec.dump(),
        };
        let bytes = batch.encode();
        assert_eq!(TelemetryBatch::decode(&bytes).unwrap(), batch);
    }

    #[test]
    fn batch_decode_is_total() {
        let batch = TelemetryBatch {
            origin: "o".into(),
            seq: 0,
            snapshot: MetricsSnapshot::new(),
            spans: vec![Span {
                job: 1,
                func: 2,
                trace: Some(3),
                stamps: [None; STAGE_COUNT],
            }],
        };
        let good = batch.encode();
        assert_eq!(
            TelemetryBatch::decode(b"NOPE"),
            Err(SnapshotError::BadMagic(*b"NOPE"))
        );
        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(
            TelemetryBatch::decode(&trailing),
            Err(SnapshotError::TrailingBytes(1))
        );
        for cut in 0..good.len() {
            assert!(TelemetryBatch::decode(&good[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn ticks_ship_disjoint_span_sets() {
        let sink = MemorySink::new();
        let store = sink.store();
        let (exporter, _metrics) = exporter_with(sink, 8);
        let clock = Arc::new(ManualClock::new());
        let rec = Arc::new(SpanRecorder::new(
            64,
            SampleRate::ALL,
            clock as Arc<dyn Clock>,
        ));
        let mut exporter = exporter.with_spans(Arc::clone(&rec));

        rec.try_start(0).unwrap();
        rec.try_start(1).unwrap();
        assert_eq!(exporter.tick().shipped, 1);
        rec.try_start(2).unwrap();
        assert_eq!(exporter.tick().shipped, 1);
        exporter.tick(); // nothing new

        let batches = store.lock().unwrap();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].seq, 0);
        let jobs0: Vec<u64> = batches[0].spans.iter().map(|s| s.job).collect();
        let jobs1: Vec<u64> = batches[1].spans.iter().map(|s| s.job).collect();
        assert_eq!(jobs0, [0, 1]);
        assert_eq!(jobs1, [2]);
        assert!(batches[2].spans.is_empty());
    }

    #[test]
    fn failed_ships_buffer_then_drop_oldest_counted() {
        let sink = MemorySink::new();
        let fail = sink.fail_switch();
        let store = sink.store();
        let (mut exporter, metrics) = exporter_with(sink, 2);

        fail.store(true, Ordering::Release);
        // Tick 1 fails (streak 1, backoff 1 tick), ticks 2-3 alternate
        // between backing off and failing again; buffer caps at 2.
        let mut dropped = 0;
        for _ in 0..6 {
            dropped += exporter.tick().dropped;
        }
        assert!(dropped > 0, "bounded buffer never dropped");
        assert_eq!(
            metrics.snapshot().counter(M_EXPORTER_DROPPED),
            Some(dropped as u64)
        );
        assert!(metrics.snapshot().counter(M_EXPORTER_FAILURES).unwrap() > 0);
        assert!(store.lock().unwrap().is_empty());

        // Sink recovers: once the backoff lapses, buffered batches
        // drain oldest-first (the backoff can be up to 4 ticks deep).
        fail.store(false, Ordering::Release);
        let mut shipped = 0;
        for _ in 0..12 {
            let r = exporter.tick();
            shipped += r.shipped;
            if r.buffered == 0 {
                break;
            }
        }
        assert!(shipped >= 2, "recovery never drained the buffer");
        let seqs: Vec<u64> = store.lock().unwrap().iter().map(|b| b.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "batches shipped out of order");
    }

    #[test]
    fn backoff_grows_and_resets_after_success() {
        let sink = MemorySink::new();
        let fail = sink.fail_switch();
        let (mut exporter, _metrics) = exporter_with(sink, 64);
        fail.store(true, Ordering::Release);
        // streak 1 -> backoff 1; streak 2 -> backoff 2; streak 3 -> 4
        // (capped at 4 by the test config).
        let mut attempts = Vec::new();
        for _ in 0..12 {
            let r = exporter.tick();
            attempts.push(!r.backing_off || r.shipped > 0);
        }
        fail.store(false, Ordering::Release);
        // Let the backoff lapse, then everything drains.
        let mut drained = false;
        for _ in 0..8 {
            if exporter.tick().buffered == 0 {
                drained = true;
                break;
            }
        }
        assert!(drained, "buffer never drained after recovery");
        assert_eq!(exporter.failure_streak, 0);
    }

    #[test]
    fn spawned_exporter_ships_and_flushes_on_stop() {
        let sink = MemorySink::new();
        let store = sink.store();
        let metrics = Arc::new(MetricsRegistry::new());
        metrics.counter("c").add(1);
        let exporter = TelemetryExporter::new("bg", Arc::clone(&metrics), Box::new(sink))
            .with_config(ExporterConfig {
                interval: Duration::from_millis(5),
                ..ExporterConfig::default()
            });
        let handle = exporter.spawn();
        std::thread::sleep(Duration::from_millis(30));
        handle.stop();
        let batches = store.lock().unwrap();
        assert!(!batches.is_empty(), "background exporter never shipped");
        assert_eq!(batches[0].origin, "bg");
        assert_eq!(batches[0].snapshot.counter("c"), Some(1));
    }
}
