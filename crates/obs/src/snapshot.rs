//! Owned metric snapshots: the mergeable fleet view and its two
//! exposition formats.
//!
//! A [`MetricsSnapshot`] is plain data copied out of a live
//! [`crate::MetricsRegistry`]. It travels two ways: a **versioned binary
//! codec** (magic `FXOB`, total decoding with typed errors — the wire
//! `Stats` frame carries exactly this blob) and a **Prometheus text
//! rendering** for humans and scrapers. Snapshots merge exactly
//! (counters and gauges add, histograms add bucket-wise), and
//! [`MetricsSnapshot::with_label`] stamps a label onto every key so
//! per-shard snapshots stay distinguishable inside one merged view.

use crate::metrics::{bucket_upper, HistogramSnapshot, HIST_BUCKETS};
use std::fmt;

/// Codec magic: identifies a serialized snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"FXOB";
/// Current codec version.
pub const SNAPSHOT_VERSION: u16 = 1;

/// Why a snapshot blob failed to decode. Decoding is total: every
/// byte-level malformation maps to one of these, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Ran out of bytes: needed `need` more, had `have`.
    Truncated {
        /// Bytes the decoder needed next.
        need: usize,
        /// Bytes that remained.
        have: usize,
    },
    /// First four bytes were not [`SNAPSHOT_MAGIC`].
    BadMagic([u8; 4]),
    /// Version newer than this decoder understands.
    UnsupportedVersion(u16),
    /// A metric key was not UTF-8.
    BadKey,
    /// A histogram bucket index at or above [`HIST_BUCKETS`].
    BucketOutOfRange(u16),
    /// Bytes left over after a complete decode.
    TrailingBytes(usize),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { need, have } => {
                write!(f, "snapshot truncated: needed {need} bytes, had {have}")
            }
            SnapshotError::BadMagic(m) => write!(f, "bad snapshot magic {m:02x?}"),
            SnapshotError::UnsupportedVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::BadKey => write!(f, "snapshot key is not valid UTF-8"),
            SnapshotError::BucketOutOfRange(i) => write!(f, "histogram bucket {i} out of range"),
            SnapshotError::TrailingBytes(n) => write!(f, "{n} trailing bytes after snapshot"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Sorted, owned copy of every metric in a registry at one instant.
///
/// Entries are sorted by key; all constructors and transformations
/// preserve that invariant, which is what makes equality comparisons
/// (and the `scrape_all == merge of shards` acceptance check)
/// meaningful.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(key, total)` pairs, sorted by key.
    pub counters: Vec<(String, u64)>,
    /// `(key, value)` pairs, sorted by key.
    pub gauges: Vec<(String, f64)>,
    /// `(key, histogram)` pairs, sorted by key.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counter total by exact key.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// Gauge value by exact key.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.gauges[i].1)
    }

    /// Histogram by exact key.
    pub fn histogram(&self, key: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| &self.histograms[i].1)
    }

    /// Folds `other` into `self`: counters and gauges **add** on key
    /// collision, histograms merge bucket-wise. Addition keeps merging
    /// associative and commutative; where summing a gauge would be
    /// meaningless (say, two shards' drift scores), give the sources
    /// distinct labels first — see [`MetricsSnapshot::with_label`].
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            match self.counters.binary_search_by(|(s, _)| s.cmp(k)) {
                Ok(i) => self.counters[i].1 = self.counters[i].1.wrapping_add(*v),
                Err(i) => self.counters.insert(i, (k.clone(), *v)),
            }
        }
        for (k, v) in &other.gauges {
            match self.gauges.binary_search_by(|(s, _)| s.cmp(k)) {
                Ok(i) => self.gauges[i].1 += *v,
                Err(i) => self.gauges.insert(i, (k.clone(), *v)),
            }
        }
        for (k, h) in &other.histograms {
            match self.histograms.binary_search_by(|(s, _)| s.cmp(k)) {
                Ok(i) => self.histograms[i].1.merge(h),
                Err(i) => self.histograms.insert(i, (k.clone(), h.clone())),
            }
        }
    }

    /// Returns a copy with `label="value"` appended to every key's label
    /// set (`m` → `m{shard="0"}`, `m{f="g"}` → `m{f="g",shard="0"}`),
    /// re-sorted.
    pub fn with_label(&self, label: &str, value: &str) -> MetricsSnapshot {
        fn relabel(key: &str, label: &str, value: &str) -> String {
            match key.strip_suffix('}') {
                Some(open) => format!("{open},{label}=\"{value}\"}}"),
                None => format!("{key}{{{label}=\"{value}\"}}"),
            }
        }
        let mut out = MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (relabel(k, label, value), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(k, v)| (relabel(k, label, value), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| (relabel(k, label, value), h.clone()))
                .collect(),
        };
        out.counters.sort_by(|a, b| a.0.cmp(&b.0));
        out.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        out.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Serializes to the `FXOB` binary form (the payload of the wire
    /// `Stats` frame). Histogram buckets are sparse-encoded: only
    /// nonzero buckets travel.
    pub fn encode(&self) -> Vec<u8> {
        fn put_key(out: &mut Vec<u8>, key: &str) {
            assert!(key.len() <= u16::MAX as usize, "metric key too long");
            out.extend_from_slice(&(key.len() as u16).to_le_bytes());
            out.extend_from_slice(key.as_bytes());
        }
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.counters.len() as u32).to_le_bytes());
        for (k, v) in &self.counters {
            put_key(&mut out, k);
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.gauges.len() as u32).to_le_bytes());
        for (k, v) in &self.gauges {
            put_key(&mut out, k);
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        out.extend_from_slice(&(self.histograms.len() as u32).to_le_bytes());
        for (k, h) in &self.histograms {
            put_key(&mut out, k);
            out.extend_from_slice(&h.sum.to_le_bytes());
            let nonzero: Vec<(usize, u64)> = h
                .counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c != 0)
                .map(|(i, &c)| (i, c))
                .collect();
            out.extend_from_slice(&(nonzero.len() as u16).to_le_bytes());
            for (i, c) in nonzero {
                out.extend_from_slice(&(i as u16).to_le_bytes());
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        out
    }

    /// Total decoder for [`MetricsSnapshot::encode`]'s output.
    ///
    /// # Errors
    ///
    /// Any malformed input yields a [`SnapshotError`]; trailing bytes
    /// after a complete snapshot are rejected.
    pub fn decode(bytes: &[u8]) -> Result<MetricsSnapshot, SnapshotError> {
        let mut c = Cur { b: bytes, at: 0 };
        let magic = c.take::<4>()?;
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic(magic));
        }
        let version = u16::from_le_bytes(c.take::<2>()?);
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }

        let n = c.count(2 + 8)?;
        let mut counters = Vec::with_capacity(n);
        for _ in 0..n {
            let k = c.key()?;
            let v = u64::from_le_bytes(c.take::<8>()?);
            counters.push((k, v));
        }
        let n = c.count(2 + 8)?;
        let mut gauges = Vec::with_capacity(n);
        for _ in 0..n {
            let k = c.key()?;
            let v = f64::from_bits(u64::from_le_bytes(c.take::<8>()?));
            gauges.push((k, v));
        }
        let n = c.count(2 + 8 + 2)?;
        let mut histograms = Vec::with_capacity(n);
        for _ in 0..n {
            let k = c.key()?;
            let sum = u64::from_le_bytes(c.take::<8>()?);
            let nonzero = u16::from_le_bytes(c.take::<2>()?) as usize;
            let mut h = HistogramSnapshot::new();
            h.sum = sum;
            for _ in 0..nonzero {
                let idx = u16::from_le_bytes(c.take::<2>()?);
                let cnt = u64::from_le_bytes(c.take::<8>()?);
                if idx as usize >= HIST_BUCKETS {
                    return Err(SnapshotError::BucketOutOfRange(idx));
                }
                h.counts[idx as usize] = h.counts[idx as usize].wrapping_add(cnt);
            }
            histograms.push((k, h));
        }
        if c.at != bytes.len() {
            return Err(SnapshotError::TrailingBytes(bytes.len() - c.at));
        }
        let mut out = MetricsSnapshot {
            counters,
            gauges,
            histograms,
        };
        // Re-establish the sort invariant even for blobs a foreign
        // encoder emitted unsorted.
        out.counters.sort_by(|a, b| a.0.cmp(&b.0));
        out.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        out.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// Renders the snapshot in Prometheus text exposition format:
    /// `# TYPE` comments, one sample line per metric, histograms as
    /// cumulative `_bucket{le=…}` series plus `_sum`/`_count`.
    /// Output is deterministic (keys sorted, buckets ascending), which
    /// the golden-format test relies on.
    pub fn render_prometheus(&self) -> String {
        use std::collections::BTreeMap;
        // Split `name{labels}` into (name, Some(labels)) so samples can
        // be grouped under one TYPE comment per base name.
        fn split(key: &str) -> (&str, Option<&str>) {
            match key.find('{') {
                Some(i) => (&key[..i], Some(&key[i + 1..key.len() - 1])),
                None => (key, None),
            }
        }
        fn line(out: &mut String, base: &str, labels: Option<&str>, value: &str) {
            out.push_str(base);
            if let Some(l) = labels {
                out.push('{');
                out.push_str(&escape_labels(l));
                out.push('}');
            }
            out.push(' ');
            out.push_str(value);
            out.push('\n');
        }

        let mut out = String::new();
        let mut groups: BTreeMap<&str, Vec<(Option<&str>, &u64)>> = BTreeMap::new();
        for (k, v) in &self.counters {
            let (base, labels) = split(k);
            groups.entry(base).or_default().push((labels, v));
        }
        for (base, samples) in &groups {
            out.push_str(&format!("# TYPE {base} counter\n"));
            for (labels, v) in samples {
                line(&mut out, base, *labels, &v.to_string());
            }
        }

        let mut groups: BTreeMap<&str, Vec<(Option<&str>, &f64)>> = BTreeMap::new();
        for (k, v) in &self.gauges {
            let (base, labels) = split(k);
            groups.entry(base).or_default().push((labels, v));
        }
        for (base, samples) in &groups {
            out.push_str(&format!("# TYPE {base} gauge\n"));
            for (labels, v) in samples {
                line(&mut out, base, *labels, &v.to_string());
            }
        }

        let mut groups: BTreeMap<&str, Vec<(Option<&str>, &HistogramSnapshot)>> = BTreeMap::new();
        for (k, h) in &self.histograms {
            let (base, labels) = split(k);
            groups.entry(base).or_default().push((labels, h));
        }
        for (base, samples) in &groups {
            out.push_str(&format!("# TYPE {base} histogram\n"));
            for (labels, h) in samples {
                let bucket = |le: &str| match labels {
                    Some(l) => format!("{l},le=\"{le}\""),
                    None => format!("le=\"{le}\""),
                };
                let mut cum = 0u64;
                for (i, &c) in h.counts.iter().enumerate() {
                    if c != 0 {
                        cum = cum.wrapping_add(c);
                        line(
                            &mut out,
                            &format!("{base}_bucket"),
                            Some(&bucket(&bucket_upper(i).to_string())),
                            &cum.to_string(),
                        );
                    }
                }
                line(
                    &mut out,
                    &format!("{base}_bucket"),
                    Some(&bucket("+Inf")),
                    &cum.to_string(),
                );
                line(
                    &mut out,
                    &format!("{base}_sum"),
                    *labels,
                    &h.sum.to_string(),
                );
                line(
                    &mut out,
                    &format!("{base}_count"),
                    *labels,
                    &h.count().to_string(),
                );
            }
        }
        out
    }
}

/// Escapes label *values* for the Prometheus text format: `\` → `\\`,
/// `"` → `\"`, newline → `\n`.
///
/// Registry keys embed label values raw (`name{k="v"}` — the rendered
/// string *is* the handle identity, so construction never rewrites it);
/// the text exposition is where escaping is required, so the renderer
/// re-parses the label block here. A value's closing quote is the `"`
/// that ends the block or is followed by a `,key="` pair boundary —
/// unambiguous for every value a single hostile label can produce
/// (embedded quotes, trailing backslashes, newlines).
fn escape_labels(labels: &str) -> String {
    fn push_escaped(out: &mut String, value: &str) {
        for ch in value.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
    }
    /// Does `rest` (the text after a candidate closing quote) start a
    /// new `,key="` pair (or end the block)?
    fn pair_boundary(rest: &str) -> bool {
        let b = rest.as_bytes();
        if b.first() != Some(&b',') {
            return false;
        }
        let mut k = 1;
        while k < b.len() && b[k] != b'=' && b[k] != b',' && b[k] != b'"' {
            k += 1;
        }
        k > 1 && k + 1 < b.len() && b[k] == b'=' && b[k + 1] == b'"'
    }

    let mut out = String::with_capacity(labels.len());
    let mut rest = labels;
    loop {
        // Copy `key="` through verbatim.
        let Some(eq) = rest.find("=\"") else {
            out.push_str(rest);
            return out;
        };
        out.push_str(&rest[..eq + 2]);
        let value_and_on = &rest[eq + 2..];
        // Find the closing quote of this value.
        let mut probe = 0;
        let close = loop {
            match value_and_on[probe..].find('"') {
                // Unterminated (malformed key): treat the remainder as
                // the value and close it ourselves.
                None => break value_and_on.len(),
                Some(off) => {
                    let q = probe + off;
                    if q + 1 == value_and_on.len() || pair_boundary(&value_and_on[q + 1..]) {
                        break q;
                    }
                    probe = q + 1;
                }
            }
        };
        push_escaped(&mut out, &value_and_on[..close]);
        out.push('"');
        if close >= value_and_on.len().saturating_sub(1) {
            return out;
        }
        rest = &value_and_on[close + 1..];
    }
}

struct Cur<'a> {
    b: &'a [u8],
    at: usize,
}

impl Cur<'_> {
    fn take<const N: usize>(&mut self) -> Result<[u8; N], SnapshotError> {
        if self.b.len() - self.at < N {
            return Err(SnapshotError::Truncated {
                need: N,
                have: self.b.len() - self.at,
            });
        }
        let mut out = [0u8; N];
        out.copy_from_slice(&self.b[self.at..self.at + N]);
        self.at += N;
        Ok(out)
    }

    /// Reads a `u32` entry count and sanity-checks it against the bytes
    /// actually remaining (each entry needs at least `min_entry` bytes),
    /// so a hostile count cannot force a huge allocation.
    fn count(&mut self, min_entry: usize) -> Result<usize, SnapshotError> {
        let n = u32::from_le_bytes(self.take::<4>()?) as usize;
        let have = self.b.len() - self.at;
        if n.saturating_mul(min_entry) > have {
            return Err(SnapshotError::Truncated {
                need: n * min_entry,
                have,
            });
        }
        Ok(n)
    }

    fn key(&mut self) -> Result<String, SnapshotError> {
        let len = u16::from_le_bytes(self.take::<2>()?) as usize;
        if self.b.len() - self.at < len {
            return Err(SnapshotError::Truncated {
                need: len,
                have: self.b.len() - self.at,
            });
        }
        let s = std::str::from_utf8(&self.b[self.at..self.at + len])
            .map_err(|_| SnapshotError::BadKey)?;
        self.at += len;
        Ok(s.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{bucket_index, MetricsRegistry};

    fn sample() -> MetricsSnapshot {
        let r = MetricsRegistry::new();
        r.counter("req_total").add(42);
        r.counter("req_total{function=\"gelu\"}").add(12);
        r.gauge("queue_depth").set(3.0);
        let h = r.histogram("eval_ns");
        h.record(100);
        h.record(100);
        h.record(5000);
        r.snapshot()
    }

    #[test]
    fn codec_round_trips() {
        let s = sample();
        let bytes = s.encode();
        assert_eq!(MetricsSnapshot::decode(&bytes).unwrap(), s);
        // Empty snapshot round-trips too.
        let empty = MetricsSnapshot::new();
        assert_eq!(MetricsSnapshot::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn decode_rejects_malformed_blobs() {
        let good = sample().encode();
        assert_eq!(
            MetricsSnapshot::decode(b"NOPE"),
            Err(SnapshotError::BadMagic(*b"NOPE"))
        );
        let mut wrong_ver = good.clone();
        wrong_ver[4] = 0xff;
        assert!(matches!(
            MetricsSnapshot::decode(&wrong_ver),
            Err(SnapshotError::UnsupportedVersion(_))
        ));
        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(
            MetricsSnapshot::decode(&trailing),
            Err(SnapshotError::TrailingBytes(1))
        );
        // Every truncation point decodes to an error, never a panic.
        for cut in 0..good.len() {
            assert!(MetricsSnapshot::decode(&good[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn hostile_count_does_not_allocate() {
        let mut blob = Vec::new();
        blob.extend_from_slice(&SNAPSHOT_MAGIC);
        blob.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        blob.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd count
        assert!(matches!(
            MetricsSnapshot::decode(&blob),
            Err(SnapshotError::Truncated { .. })
        ));
    }

    #[test]
    fn merge_adds_and_inserts() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.counter("req_total"), Some(84));
        assert_eq!(a.gauge("queue_depth"), Some(6.0));
        assert_eq!(a.histogram("eval_ns").unwrap().count(), 6);
        let mut base = MetricsSnapshot::new();
        base.merge(&b);
        assert_eq!(base, b);
    }

    #[test]
    fn with_label_rewrites_every_key() {
        let s = sample().with_label("shard", "1");
        assert_eq!(s.counter("req_total{shard=\"1\"}"), Some(42));
        assert_eq!(
            s.counter("req_total{function=\"gelu\",shard=\"1\"}"),
            Some(12)
        );
        assert_eq!(s.gauge("queue_depth{shard=\"1\"}"), Some(3.0));
        assert!(s.histogram("eval_ns{shard=\"1\"}").is_some());
    }

    /// Golden test for the escaping satellite: hostile label values
    /// (embedded quote, backslash — including a trailing one — and a
    /// newline) must render as valid Prometheus text, escaped exactly.
    #[test]
    fn prometheus_escapes_hostile_label_values() {
        let r = MetricsRegistry::new();
        r.counter("req_total{path=\"a\\b\"c\nd\"}").add(7);
        r.counter("req_total{trail=\"x\\\"}").add(1);
        r.gauge("depth{f=\"he said \"hi\"\",shard=\"0\"}").set(2.0);
        let h = r.histogram("lat_ns{name=\"q\"uote\"}");
        h.record(100);
        let text = r.snapshot().render_prometheus();
        let b100 = bucket_upper(bucket_index(100)).to_string();
        let expect = format!(
            "# TYPE req_total counter\n\
             req_total{{path=\"a\\\\b\\\"c\\nd\"}} 7\n\
             req_total{{trail=\"x\\\\\"}} 1\n\
             # TYPE depth gauge\n\
             depth{{f=\"he said \\\"hi\\\"\",shard=\"0\"}} 2\n\
             # TYPE lat_ns histogram\n\
             lat_ns_bucket{{name=\"q\\\"uote\",le=\"{b100}\"}} 1\n\
             lat_ns_bucket{{name=\"q\\\"uote\",le=\"+Inf\"}} 1\n\
             lat_ns_sum{{name=\"q\\\"uote\"}} 100\n\
             lat_ns_count{{name=\"q\\\"uote\"}} 1\n"
        );
        assert_eq!(text, expect);
        // The hostile newline was escaped, not emitted: the exposition
        // has exactly one line per sample/TYPE comment.
        assert_eq!(text.lines().count(), 10);
    }

    #[test]
    fn prometheus_rendering_is_stable() {
        let text = sample().render_prometheus();
        let b100 = bucket_upper(bucket_index(100)).to_string();
        let b5000 = bucket_upper(bucket_index(5000)).to_string();
        let expect = format!(
            "# TYPE req_total counter\n\
             req_total 42\n\
             req_total{{function=\"gelu\"}} 12\n\
             # TYPE queue_depth gauge\n\
             queue_depth 3\n\
             # TYPE eval_ns histogram\n\
             eval_ns_bucket{{le=\"{b100}\"}} 2\n\
             eval_ns_bucket{{le=\"{b5000}\"}} 3\n\
             eval_ns_bucket{{le=\"+Inf\"}} 3\n\
             eval_ns_sum 5200\n\
             eval_ns_count 3\n"
        );
        assert_eq!(text, expect);
    }
}
