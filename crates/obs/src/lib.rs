//! Observability core for the Flex-SFU serving stack.
//!
//! Hand-rolled, std-only, zero-dep — in the house style of the serve
//! oneshot and the wire codec. Three pillars:
//!
//! 1. **Metrics** ([`metrics`]): a [`MetricsRegistry`] of sharded atomic
//!    [`Counter`]s, [`Gauge`]s, and fixed-boundary log-scale
//!    [`LogHistogram`]s. Handles resolve once (locked, allocating) and
//!    record forever after with no locks and zero heap — cheap enough
//!    for the flush hot path, and pinned there by a counting-allocator
//!    test.
//! 2. **Tracing** ([`span`]): a sampled [`SpanRecorder`] ring of per-job
//!    [`Stage`] timestamps (submit → enqueue → flush-plan → backend eval
//!    → scatter-back → wire write), stamped through a [`Clock`] trait so
//!    production uses monotonic time while trace replays use a
//!    [`ManualClock`] and produce bit-identical spans.
//! 3. **Exposition** ([`snapshot`]): mergeable [`MetricsSnapshot`]s with
//!    a versioned `FXOB` binary codec (total decoding — this is the wire
//!    `Stats` frame payload) and a Prometheus text rendering.
//!
//! The serving layers (`flexsfu-serve`, `flexsfu-wire`, `flexsfu-shard`,
//! `flexsfu-traffic`) each accept an optional handle into this crate and
//! stay zero-overhead when observability is off.

pub mod clock;
pub mod metrics;
pub mod snapshot;
pub mod span;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use metrics::{
    bucket_index, bucket_upper, labeled, Counter, Gauge, HistogramSnapshot, LogHistogram,
    MetricsRegistry, COUNTER_SHARDS, HIST_BUCKETS,
};
pub use snapshot::{MetricsSnapshot, SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use span::{SampleRate, Span, SpanCell, SpanRecorder, Stage, STAGES, STAGE_COUNT};
