//! Observability core for the Flex-SFU serving stack.
//!
//! Hand-rolled, std-only, zero-dep — in the house style of the serve
//! oneshot and the wire codec. Three pillars:
//!
//! 1. **Metrics** ([`metrics`]): a [`MetricsRegistry`] of sharded atomic
//!    [`Counter`]s, [`Gauge`]s, and fixed-boundary log-scale
//!    [`LogHistogram`]s. Handles resolve once (locked, allocating) and
//!    record forever after with no locks and zero heap — cheap enough
//!    for the flush hot path, and pinned there by a counting-allocator
//!    test.
//! 2. **Tracing** ([`span`]): a sampled [`SpanRecorder`] ring of per-job
//!    [`Stage`] timestamps (submit → enqueue → flush-plan → backend eval
//!    → scatter-back → wire write), stamped through a [`Clock`] trait so
//!    production uses monotonic time while trace replays use a
//!    [`ManualClock`] and produce bit-identical spans.
//! 3. **Exposition** ([`snapshot`]): mergeable [`MetricsSnapshot`]s with
//!    a versioned `FXOB` binary codec (total decoding — this is the wire
//!    `Stats` frame payload) and a Prometheus text rendering.
//! 4. **Distributed tracing** ([`trace`]): spans carry a u64 trace id
//!    across process boundaries (the router mints it, the shard adopts
//!    it off the wire) and the [`TraceAssembler`] joins per-process
//!    span rings into per-request waterfalls with provable
//!    cross-process stage ordering.
//! 5. **Push + alerting** ([`export`], [`slo`]): a background
//!    [`TelemetryExporter`] ships periodic snapshot+span
//!    [`TelemetryBatch`]es through a [`TelemetrySink`] with bounded
//!    buffering and counted drops, and the [`SloEvaluator`] turns
//!    declarative [`SloRule`]s into edge-triggered firing/resolved
//!    alerts published back into the registry.
//!
//! The serving layers (`flexsfu-serve`, `flexsfu-wire`, `flexsfu-shard`,
//! `flexsfu-traffic`) each accept an optional handle into this crate and
//! stay zero-overhead when observability is off.

pub mod clock;
pub mod export;
pub mod metrics;
pub mod slo;
pub mod snapshot;
pub mod span;
pub mod trace;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use export::{
    ExporterConfig, ExporterHandle, MemorySink, SinkError, TelemetryBatch, TelemetryExporter,
    TelemetrySink, TickReport, BATCH_MAGIC, BATCH_VERSION, M_EXPORTER_DROPPED, M_EXPORTER_FAILURES,
    M_EXPORTER_SHIPPED,
};
pub use metrics::{
    bucket_index, bucket_upper, labeled, Counter, Gauge, HistogramSnapshot, LogHistogram,
    MetricsRegistry, COUNTER_SHARDS, HIST_BUCKETS,
};
pub use slo::{
    SloAlert, SloEvaluator, SloKind, SloRule, M_SLO_FIRED, M_SLO_FIRING, M_SLO_RESOLVED,
};
pub use snapshot::{MetricsSnapshot, SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use span::{SampleRate, Span, SpanCell, SpanRecorder, Stage, STAGES, STAGE_COUNT};
pub use trace::{AssembledTrace, OriginSpan, TraceAssembler, WaterfallStep};
