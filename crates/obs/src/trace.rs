//! Cross-process trace assembly: joining span rings into waterfalls.
//!
//! A distributed request leaves one [`Span`] per process it crosses —
//! the router's span carries the routing stages
//! ([`Stage::RouteSelect`], [`Stage::Retry`], [`Stage::WireSubmit`])
//! and mints the trace id, the serving shard's span carries the queue
//! and backend stages and *adopts* that id off the wire. The
//! [`TraceAssembler`] collects `dump()`s from any number of origins
//! (the same collection sweep `scrape_all` does for metrics) and joins
//! them by trace id into [`AssembledTrace`]s: one per-request waterfall
//! with every stamped stage from every process, in provable order.
//!
//! Ordering across processes is only meaningful when the origins stamp
//! from comparable clocks — in tests, one shared
//! [`crate::ManualClock`]; in production, co-located monotonic clocks.
//! [`AssembledTrace::is_consistent`] checks the resulting waterfall
//! never steps backwards in pipeline order, which is exactly the
//! cross-process claim a shared manual clock lets a test prove
//! bit-exactly.

use crate::span::{Span, Stage, STAGES};

/// One process's span inside an assembled trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OriginSpan {
    /// Label of the ring this span came from (e.g. `router`, `shard0`).
    pub origin: String,
    /// The span itself (its `trace` field equals the trace's id).
    pub span: Span,
}

/// One stamped stage inside a waterfall, in flattened order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaterfallStep {
    /// Origin label of the span that stamped this stage.
    pub origin: String,
    /// The stage that was stamped.
    pub stage: Stage,
    /// The stamp, in the origin clock's nanoseconds.
    pub at_ns: u64,
}

/// Every span sharing one trace id, joined across processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssembledTrace {
    /// The shared trace id (minted by the root span's recorder).
    pub trace_id: u64,
    /// Member spans, in origin registration order (root origin first
    /// when it was added first), then by job id within an origin.
    pub spans: Vec<OriginSpan>,
}

impl AssembledTrace {
    /// Flattens every stamped stage into one sequence ordered by
    /// timestamp, ties broken by pipeline position — so a frozen
    /// manual clock (all stamps equal) still yields pipeline order.
    pub fn waterfall(&self) -> Vec<WaterfallStep> {
        let mut steps: Vec<WaterfallStep> = Vec::new();
        for member in &self.spans {
            for &stage in &STAGES {
                if let Some(at_ns) = member.span.stage(stage) {
                    steps.push(WaterfallStep {
                        origin: member.origin.clone(),
                        stage,
                        at_ns,
                    });
                }
            }
        }
        steps.sort_by_key(|s| (s.at_ns, s.stage as usize));
        steps
    }

    /// True when the waterfall never moves backwards: timestamps are
    /// non-decreasing (guaranteed by construction) *and* pipeline
    /// positions are non-decreasing — i.e. no shard stage is stamped
    /// before a router stage that precedes it in the pipeline, across
    /// process boundaries.
    pub fn is_consistent(&self) -> bool {
        let steps = self.waterfall();
        steps
            .windows(2)
            .all(|w| w[0].stage as usize <= w[1].stage as usize)
    }

    /// End-to-end duration: first stamp anywhere to last stamp
    /// anywhere (saturating); `None` for an empty trace.
    pub fn total_ns(&self) -> Option<u64> {
        let steps = self.waterfall();
        let first = steps.first()?.at_ns;
        let last = steps.last()?.at_ns;
        Some(last.saturating_sub(first))
    }

    /// Multi-line human rendering of the waterfall, one stage per
    /// line: `origin  stage  @ ns`.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace {} ({} span{})",
            self.trace_id,
            self.spans.len(),
            if self.spans.len() == 1 { "" } else { "s" }
        );
        for step in self.waterfall() {
            let _ = writeln!(
                out,
                "  {:<10} {:<13} @ {} ns",
                step.origin,
                step.stage.name(),
                step.at_ns
            );
        }
        out
    }
}

/// Joins span dumps from many origins into per-request traces.
///
/// Feed it `dump()`s (router ring, each shard's ring); `assemble()`
/// groups every span that carries a trace id by that id and returns
/// the traces sorted by id. Untraced local samples are skipped — they
/// belong to exactly one process and need no assembly.
#[derive(Debug, Default)]
pub struct TraceAssembler {
    origins: Vec<(String, Vec<Span>)>,
}

impl TraceAssembler {
    /// An assembler with no origins yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one origin's span dump under `label`. Add the trace-root
    /// origin (the router) first so its span leads each trace.
    pub fn add_origin(&mut self, label: impl Into<String>, spans: Vec<Span>) -> &mut Self {
        self.origins.push((label.into(), spans));
        self
    }

    /// Groups spans by trace id; traces sorted ascending by id, member
    /// spans in origin order then job order — fully deterministic for
    /// a replayed deployment.
    pub fn assemble(&self) -> Vec<AssembledTrace> {
        let mut traces: Vec<AssembledTrace> = Vec::new();
        for (label, spans) in &self.origins {
            let mut sorted: Vec<&Span> = spans.iter().filter(|s| s.trace.is_some()).collect();
            sorted.sort_by_key(|s| s.job);
            for span in sorted {
                let id = span.trace.expect("filtered to traced spans");
                let member = OriginSpan {
                    origin: label.clone(),
                    span: span.clone(),
                };
                match traces.iter_mut().find(|t| t.trace_id == id) {
                    Some(t) => t.spans.push(member),
                    None => traces.push(AssembledTrace {
                        trace_id: id,
                        spans: vec![member],
                    }),
                }
            }
        }
        traces.sort_by_key(|t| t.trace_id);
        traces
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, ManualClock};
    use crate::span::{SampleRate, SpanRecorder};
    use std::sync::Arc;

    /// Router + shard rings on ONE manual clock: the assembled order
    /// must interleave the two processes' stages in pipeline order.
    #[test]
    fn cross_process_ordering_is_proven_on_a_manual_clock() {
        let clock = Arc::new(ManualClock::new());
        let router = SpanRecorder::new(16, SampleRate::ALL, clock.clone() as Arc<dyn Clock>);
        let shard = SpanRecorder::new(16, SampleRate::ALL, clock.clone() as Arc<dyn Clock>);

        let root = router.start_trace(3).expect("rate 1 samples");
        let id = root.trace().unwrap();
        clock.set(10);
        router.stamp(&root, Stage::RouteSelect);
        clock.set(20);
        router.stamp(&root, Stage::WireSubmit);

        let adopted = shard.adopt(3, id);
        clock.set(30);
        shard.stamp(&adopted, Stage::Submit);
        clock.set(40);
        shard.stamp(&adopted, Stage::Enqueue);
        clock.set(50);
        shard.stamp(&adopted, Stage::FlushPlan);
        clock.set(60);
        shard.stamp(&adopted, Stage::BackendEval);
        clock.set(70);
        shard.stamp(&adopted, Stage::ScatterBack);
        clock.set(80);
        shard.stamp(&adopted, Stage::WireWrite);

        let mut asm = TraceAssembler::new();
        asm.add_origin("router", router.dump());
        asm.add_origin("shard0", shard.dump());
        let traces = asm.assemble();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.trace_id, id);
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.spans[0].origin, "router");
        assert_eq!(t.spans[1].origin, "shard0");
        assert!(t.is_consistent(), "waterfall stepped backwards");
        assert_eq!(t.total_ns(), Some(70));

        let stages: Vec<Stage> = t.waterfall().iter().map(|s| s.stage).collect();
        assert_eq!(
            stages,
            [
                Stage::RouteSelect,
                Stage::WireSubmit,
                Stage::Submit,
                Stage::Enqueue,
                Stage::FlushPlan,
                Stage::BackendEval,
                Stage::ScatterBack,
                Stage::WireWrite,
            ]
        );
    }

    /// A frozen clock (every stamp identical) still yields pipeline
    /// order via the tie-break, so replays assemble bit-identically.
    #[test]
    fn frozen_clock_ties_break_to_pipeline_order() {
        let clock = Arc::new(ManualClock::new());
        clock.set(500);
        let router = SpanRecorder::new(16, SampleRate::ALL, clock.clone() as Arc<dyn Clock>);
        let shard = SpanRecorder::new(16, SampleRate::ALL, clock.clone() as Arc<dyn Clock>);
        let root = router.start_trace(0).unwrap();
        router.stamp(&root, Stage::RouteSelect);
        router.stamp(&root, Stage::WireSubmit);
        let adopted = shard.adopt(0, root.trace().unwrap());
        shard.stamp(&adopted, Stage::Submit);
        shard.stamp(&adopted, Stage::WireWrite);

        let mut asm = TraceAssembler::new();
        asm.add_origin("router", router.dump());
        asm.add_origin("shard0", shard.dump());
        let traces = asm.assemble();
        assert!(traces[0].is_consistent());
        let stages: Vec<Stage> = traces[0].waterfall().iter().map(|s| s.stage).collect();
        assert_eq!(
            stages,
            [
                Stage::RouteSelect,
                Stage::WireSubmit,
                Stage::Submit,
                Stage::WireWrite
            ]
        );
    }

    #[test]
    fn untraced_spans_are_skipped_and_traces_sort_by_id() {
        let clock = Arc::new(ManualClock::new());
        let rec = SpanRecorder::new(16, SampleRate::ALL, clock as Arc<dyn Clock>);
        let _local = rec.try_start(0); // no trace id
        let b = rec.adopt(0, 9);
        let a = rec.adopt(0, 4);
        rec.stamp(&a, Stage::Submit);
        rec.stamp(&b, Stage::Submit);

        let mut asm = TraceAssembler::new();
        asm.add_origin("only", rec.dump());
        let traces = asm.assemble();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].trace_id, 4);
        assert_eq!(traces[1].trace_id, 9);
    }

    #[test]
    fn inconsistent_order_is_detected() {
        let clock = Arc::new(ManualClock::new());
        let rec = SpanRecorder::new(16, SampleRate::ALL, clock.clone() as Arc<dyn Clock>);
        let cell = rec.adopt(0, 1);
        clock.set(100);
        rec.stamp(&cell, Stage::Submit);
        clock.set(50); // enqueue "before" submit: broken clock domain
        rec.stamp(&cell, Stage::Enqueue);
        let mut asm = TraceAssembler::new();
        asm.add_origin("only", rec.dump());
        let traces = asm.assemble();
        assert!(!traces[0].is_consistent());
    }

    #[test]
    fn render_lists_one_line_per_stamped_stage() {
        let clock = Arc::new(ManualClock::new());
        let rec = SpanRecorder::new(16, SampleRate::ALL, clock as Arc<dyn Clock>);
        let cell = rec.adopt(7, 42);
        rec.stamp(&cell, Stage::Submit);
        rec.stamp(&cell, Stage::ScatterBack);
        let mut asm = TraceAssembler::new();
        asm.add_origin("shard0", rec.dump());
        let text = asm.assemble()[0].render();
        assert!(text.starts_with("trace 42 (1 span)"));
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("submit"));
        assert!(text.contains("scatter_back"));
    }
}
