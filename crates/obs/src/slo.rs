//! Declarative SLO rules over metric snapshots, with typed alert
//! transitions.
//!
//! An [`SloEvaluator`] holds a handful of [`SloRule`]s — a histogram
//! quantile ceiling, a gauge ceiling, a counter-ratio ceiling — and
//! [`SloEvaluator::eval`]uates them against any [`MetricsSnapshot`]
//! (a local scrape, a `scrape_all`, a collector's merged view). It is
//! edge-triggered: only **transitions** come back, [`SloAlert::Firing`]
//! when a rule first breaches and [`SloAlert::Resolved`] when it
//! recovers, never a steady-state repeat.
//!
//! Wired to a registry ([`SloEvaluator::with_metrics`]), the evaluator
//! publishes its state into the same telemetry it watches: a per-rule
//! `flexsfu_slo_firing{rule=…}` gauge (1 firing / 0 resolved) and
//! transition counters — the retuner-style loop pattern, now covering
//! operability.
//!
//! A rule whose metric is absent from the snapshot is *not evaluated*
//! (no data is not a breach); it keeps whatever state it had.

use crate::metrics::{Gauge, MetricsRegistry};
use crate::snapshot::MetricsSnapshot;
use crate::{labeled, Counter};
use std::sync::Arc;

/// Gauge (per rule, `rule` label): 1 while the rule fires, else 0.
pub const M_SLO_FIRING: &str = "flexsfu_slo_firing";
/// Counter (per rule, `rule` label): transitions into firing.
pub const M_SLO_FIRED: &str = "flexsfu_slo_fired_total";
/// Counter (per rule, `rule` label): transitions back to resolved.
pub const M_SLO_RESOLVED: &str = "flexsfu_slo_resolved_total";

/// What a rule measures and the ceiling it enforces.
#[derive(Debug, Clone, PartialEq)]
pub enum SloKind {
    /// Histogram `metric`'s `q`-quantile must stay at or below
    /// `ceiling` (same unit as the histogram's samples).
    QuantileCeiling {
        /// Histogram key, exactly as it appears in the snapshot.
        metric: String,
        /// Quantile in `[0, 1]` (e.g. `0.99`).
        q: f64,
        /// Inclusive ceiling on the quantile.
        ceiling: u64,
    },
    /// Gauge `metric` must stay at or below `ceiling`.
    GaugeCeiling {
        /// Gauge key, exactly as it appears in the snapshot.
        metric: String,
        /// Inclusive ceiling on the gauge value.
        ceiling: f64,
    },
    /// `numerator / denominator` (two counters) must stay at or below
    /// `ceiling`. A zero denominator reads as ratio 0 (no traffic, no
    /// breach).
    RatioCeiling {
        /// Numerator counter key (e.g. an error total).
        numerator: String,
        /// Denominator counter key (e.g. a request total).
        denominator: String,
        /// Inclusive ceiling on the ratio.
        ceiling: f64,
    },
}

/// A named SLO rule.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// Stable rule name (lands in the `rule` label).
    pub name: String,
    /// What to measure and the ceiling.
    pub kind: SloKind,
}

impl SloRule {
    /// `metric`'s p99 must stay at or below `ceiling`.
    pub fn p99_ceiling(name: &str, metric: &str, ceiling: u64) -> Self {
        Self {
            name: name.to_string(),
            kind: SloKind::QuantileCeiling {
                metric: metric.to_string(),
                q: 0.99,
                ceiling,
            },
        }
    }

    /// Gauge `metric` must stay at or below `ceiling`.
    pub fn gauge_ceiling(name: &str, metric: &str, ceiling: f64) -> Self {
        Self {
            name: name.to_string(),
            kind: SloKind::GaugeCeiling {
                metric: metric.to_string(),
                ceiling,
            },
        }
    }

    /// `numerator / denominator` must stay at or below `ceiling`.
    pub fn ratio_ceiling(name: &str, numerator: &str, denominator: &str, ceiling: f64) -> Self {
        Self {
            name: name.to_string(),
            kind: SloKind::RatioCeiling {
                numerator: numerator.to_string(),
                denominator: denominator.to_string(),
                ceiling,
            },
        }
    }
}

/// One edge-triggered alert transition.
#[derive(Debug, Clone, PartialEq)]
pub enum SloAlert {
    /// The rule just breached its ceiling.
    Firing {
        /// Rule name.
        rule: String,
        /// Measured value at the breach.
        value: f64,
        /// The ceiling it crossed.
        ceiling: f64,
    },
    /// The rule just recovered.
    Resolved {
        /// Rule name.
        rule: String,
        /// Measured value at recovery.
        value: f64,
    },
}

struct RuleState {
    rule: SloRule,
    firing: bool,
    gauge: Option<Arc<Gauge>>,
    fired: Option<Arc<Counter>>,
    resolved: Option<Arc<Counter>>,
}

/// Evaluates a rule set against snapshots, emitting transitions.
#[derive(Default)]
pub struct SloEvaluator {
    rules: Vec<RuleState>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl SloEvaluator {
    /// An evaluator with no rules yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes rule state into `metrics`: [`M_SLO_FIRING`]`{rule=…}`
    /// gauges and [`M_SLO_FIRED`]/[`M_SLO_RESOLVED`] transition
    /// counters. Call before adding rules (or existing rules are wired
    /// up retroactively).
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        for state in &mut self.rules {
            wire(state, &metrics);
        }
        self.metrics = Some(metrics);
        self
    }

    /// Adds a rule (builder form).
    pub fn rule(mut self, rule: SloRule) -> Self {
        self.add_rule(rule);
        self
    }

    /// Adds a rule, starting in the resolved state.
    pub fn add_rule(&mut self, rule: SloRule) {
        let mut state = RuleState {
            rule,
            firing: false,
            gauge: None,
            fired: None,
            resolved: None,
        };
        if let Some(m) = &self.metrics {
            wire(&mut state, m);
        }
        self.rules.push(state);
    }

    /// Rule names, in addition order.
    pub fn rules(&self) -> Vec<&str> {
        self.rules.iter().map(|s| s.rule.name.as_str()).collect()
    }

    /// True while `name` is in the firing state.
    pub fn is_firing(&self, name: &str) -> bool {
        self.rules.iter().any(|s| s.rule.name == name && s.firing)
    }

    /// Evaluates every rule against `snapshot` and returns the
    /// transitions (empty when nothing changed state). Rules whose
    /// metrics are absent keep their previous state.
    pub fn eval(&mut self, snapshot: &MetricsSnapshot) -> Vec<SloAlert> {
        let mut alerts = Vec::new();
        for state in &mut self.rules {
            let measured = match &state.rule.kind {
                SloKind::QuantileCeiling { metric, q, ceiling } => snapshot
                    .histogram(metric)
                    .map(|h| (h.quantile(*q) as f64, *ceiling as f64)),
                SloKind::GaugeCeiling { metric, ceiling } => {
                    snapshot.gauge(metric).map(|v| (v, *ceiling))
                }
                SloKind::RatioCeiling {
                    numerator,
                    denominator,
                    ceiling,
                } => snapshot.counter(denominator).map(|d| {
                    let n = snapshot.counter(numerator).unwrap_or(0) as f64;
                    let ratio = if d == 0 { 0.0 } else { n / d as f64 };
                    (ratio, *ceiling)
                }),
            };
            let Some((value, ceiling)) = measured else {
                continue;
            };
            let breach = value > ceiling;
            if breach && !state.firing {
                state.firing = true;
                if let Some(g) = &state.gauge {
                    g.set(1.0);
                }
                if let Some(c) = &state.fired {
                    c.inc();
                }
                alerts.push(SloAlert::Firing {
                    rule: state.rule.name.clone(),
                    value,
                    ceiling,
                });
            } else if !breach && state.firing {
                state.firing = false;
                if let Some(g) = &state.gauge {
                    g.set(0.0);
                }
                if let Some(c) = &state.resolved {
                    c.inc();
                }
                alerts.push(SloAlert::Resolved {
                    rule: state.rule.name.clone(),
                    value,
                });
            }
        }
        alerts
    }
}

fn wire(state: &mut RuleState, metrics: &MetricsRegistry) {
    let labels = [("rule", state.rule.name.as_str())];
    let gauge = metrics.gauge(&labeled(M_SLO_FIRING, &labels));
    gauge.set(if state.firing { 1.0 } else { 0.0 });
    state.gauge = Some(gauge);
    state.fired = Some(metrics.counter(&labeled(M_SLO_FIRED, &labels)));
    state.resolved = Some(metrics.counter(&labeled(M_SLO_RESOLVED, &labels)));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot_with(gauge: f64, errors: u64, reqs: u64, evals: &[u64]) -> MetricsSnapshot {
        let r = MetricsRegistry::new();
        r.gauge("queue_depth").set(gauge);
        r.counter("errors_total").add(errors);
        r.counter("requests_total").add(reqs);
        let h = r.histogram("eval_ns");
        for &v in evals {
            h.record(v);
        }
        r.snapshot()
    }

    fn evaluator() -> SloEvaluator {
        SloEvaluator::new()
            .rule(SloRule::p99_ceiling("eval_p99", "eval_ns", 10_000))
            .rule(SloRule::gauge_ceiling("queue", "queue_depth", 8.0))
            .rule(SloRule::ratio_ceiling(
                "errors",
                "errors_total",
                "requests_total",
                0.01,
            ))
    }

    #[test]
    fn transitions_fire_once_and_resolve_once() {
        let mut slo = evaluator();
        // Healthy: nothing fires.
        assert!(slo
            .eval(&snapshot_with(2.0, 0, 100, &[100, 200]))
            .is_empty());
        // Queue spikes: exactly one firing transition …
        let alerts = slo.eval(&snapshot_with(20.0, 0, 100, &[100]));
        assert_eq!(alerts.len(), 1);
        assert!(matches!(
            &alerts[0],
            SloAlert::Firing { rule, value, ceiling } if rule == "queue" && *value == 20.0 && *ceiling == 8.0
        ));
        assert!(slo.is_firing("queue"));
        // … and a steady breach stays silent.
        assert!(slo.eval(&snapshot_with(25.0, 0, 100, &[100])).is_empty());
        // Recovery: exactly one resolved transition.
        let alerts = slo.eval(&snapshot_with(1.0, 0, 100, &[100]));
        assert_eq!(alerts.len(), 1);
        assert!(matches!(&alerts[0], SloAlert::Resolved { rule, .. } if rule == "queue"));
        assert!(!slo.is_firing("queue"));
    }

    #[test]
    fn quantile_and_ratio_rules_measure_correctly() {
        let mut slo = evaluator();
        // p99 over ceiling.
        let alerts = slo.eval(&snapshot_with(0.0, 0, 100, &[1_000_000]));
        assert!(alerts
            .iter()
            .any(|a| matches!(a, SloAlert::Firing { rule, .. } if rule == "eval_p99")));
        // Error ratio 5/100 over the 1% ceiling.
        let alerts = slo.eval(&snapshot_with(0.0, 5, 100, &[1_000_000]));
        assert!(alerts
            .iter()
            .any(|a| matches!(a, SloAlert::Firing { rule, .. } if rule == "errors")));
        // Zero denominator is not a breach.
        let mut fresh = evaluator();
        let alerts = fresh.eval(&snapshot_with(0.0, 5, 0, &[100]));
        assert!(!alerts
            .iter()
            .any(|a| matches!(a, SloAlert::Firing { rule, .. } if rule == "errors")));
    }

    #[test]
    fn absent_metrics_keep_state() {
        let mut slo = evaluator();
        slo.eval(&snapshot_with(20.0, 0, 100, &[100]));
        assert!(slo.is_firing("queue"));
        // An empty snapshot says nothing about the queue.
        assert!(slo.eval(&MetricsSnapshot::new()).is_empty());
        assert!(slo.is_firing("queue"));
    }

    #[test]
    fn state_publishes_into_the_registry() {
        let metrics = Arc::new(MetricsRegistry::new());
        let mut slo = evaluator().with_metrics(Arc::clone(&metrics));
        slo.eval(&snapshot_with(20.0, 0, 100, &[100]));
        let snap = metrics.snapshot();
        assert_eq!(snap.gauge("flexsfu_slo_firing{rule=\"queue\"}"), Some(1.0));
        assert_eq!(
            snap.counter("flexsfu_slo_fired_total{rule=\"queue\"}"),
            Some(1)
        );
        slo.eval(&snapshot_with(1.0, 0, 100, &[100]));
        let snap = metrics.snapshot();
        assert_eq!(snap.gauge("flexsfu_slo_firing{rule=\"queue\"}"), Some(0.0));
        assert_eq!(
            snap.counter("flexsfu_slo_resolved_total{rule=\"queue\"}"),
            Some(1)
        );
    }
}
