//! Hot-path metric primitives: sharded counters, gauges, and
//! fixed-boundary log-scale histograms.
//!
//! Everything here is built for the flush hot path: the record/increment
//! operations touch only pre-resolved atomics — no locks, no heap, no
//! formatting. Handles are resolved **once** through the
//! [`MetricsRegistry`] (which does lock and allocate) and then cached by
//! the instrumented layer; a counting-allocator test in this crate pins
//! the warm record path at zero allocations.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// Shards per [`Counter`]. Increments from different threads usually
/// land on different cache lines; reads sum all shards.
pub const COUNTER_SHARDS: usize = 8;

/// Sub-buckets per power-of-two octave in [`LogHistogram`]. Four
/// sub-buckets bound the relative quantile error at 25%.
const SUBS: usize = 4;
const SUB_BITS: u32 = 2; // log2(SUBS)

/// Total fixed bucket count of a [`LogHistogram`]: values `0..4` get an
/// exact bucket each, then every octave `[2^k, 2^(k+1))` for
/// `k in 2..=63` is split into four linear sub-buckets.
pub const HIST_BUCKETS: usize = SUBS + (64 - SUB_BITS as usize) * SUBS; // 252

// Per-thread shard slot, assigned round-robin on first use. Const-init
// so first access performs no lazy heap initialisation.
thread_local! {
    static SHARD_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

#[inline]
fn shard_slot() -> usize {
    SHARD_SLOT.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_SLOT.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
            s.set(v);
            v
        }
    })
}

/// One cache line worth of counter shard, padded so neighbouring shards
/// do not false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

/// Monotone event counter, sharded across cache-padded atomics.
///
/// [`Counter::add`] is wait-free and allocation-free; [`Counter::get`]
/// sums the shards (reads may race concurrent increments, as any
/// snapshot of a live counter must).
#[derive(Debug, Default)]
pub struct Counter {
    shards: [PaddedU64; COUNTER_SHARDS],
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_slot()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }
}

/// Last-write-wins instantaneous value, stored as `f64` bits in one
/// atomic. Set and read are single atomic ops; [`Gauge::add`] is a CAS
/// loop. All allocation-free.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// A gauge at 0.0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    #[inline]
    pub fn add(&self, d: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + d).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Bucket index for a recorded value. Values `0..4` map to themselves;
/// larger values land in one of four linear sub-buckets of their
/// power-of-two octave, so the bucket width is always ≤ 25% of the
/// value.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < (1 << SUB_BITS) {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let sub = ((v >> (msb - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
        SUBS + (msb - SUB_BITS) as usize * SUBS + sub
    }
}

/// Inclusive upper bound of bucket `idx` — the value [`HistogramSnapshot`]
/// quantiles report.
///
/// # Panics
///
/// Panics if `idx >= HIST_BUCKETS`.
pub fn bucket_upper(idx: usize) -> u64 {
    assert!(idx < HIST_BUCKETS, "bucket {idx} out of range");
    if idx < SUBS {
        idx as u64
    } else {
        let oct = (idx - SUBS) / SUBS + SUB_BITS as usize;
        let sub = ((idx - SUBS) % SUBS) as u64;
        let base = 1u64 << oct;
        let step = 1u64 << (oct - SUB_BITS as usize);
        // `base - 1 + ...` keeps the top bucket from overflowing u64.
        base - 1 + (sub + 1) * step
    }
}

/// Fixed-boundary log-scale histogram of `u64` samples (typically
/// nanoseconds or element counts).
///
/// Recording is two relaxed `fetch_add`s into a fixed array — wait-free,
/// allocation-free, and mergeable: every histogram shares the same
/// [`HIST_BUCKETS`] boundaries, so snapshots add bucket-wise.
#[derive(Debug)]
pub struct LogHistogram {
    counts: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            counts: [ZERO; HIST_BUCKETS],
            sum: AtomicU64::new(0),
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Copies the live buckets into an owned, mergeable snapshot.
    ///
    /// The total count is derived from the buckets so count and buckets
    /// are always consistent with each other; `sum` is read separately
    /// and may trail a racing `record` by one sample's value.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            sum: self.sum.load(Ordering::Relaxed),
            counts,
        }
    }
}

/// Owned copy of a [`LogHistogram`]: plain data, safe to merge, encode,
/// and query for quantiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts, length [`HIST_BUCKETS`].
    pub counts: Vec<u64>,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            counts: vec![0; HIST_BUCKETS],
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().fold(0u64, |a, &c| a.wrapping_add(c))
    }

    /// True iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Adds `other` bucket-wise. Since all histograms share one fixed
    /// boundary set, merging is exact — and associative and commutative,
    /// which the property tests pin.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        debug_assert_eq!(self.counts.len(), other.counts.len());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.wrapping_add(*b);
        }
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (rank `ceil(q·n)`, clamped to `[1, n]`).
    /// The reported value is within one bucket boundary (≤ 25% relative)
    /// of the exact order statistic.
    ///
    /// **Empty histograms return the sentinel `0`** — pinned contract,
    /// not an accident: `0` never exceeds any ceiling, so SLO rules
    /// and dashboards comparing against an idle histogram read "no
    /// data" as "no breach" instead of a fake latency. The sentinel
    /// coincides with the report for all-zero samples (bucket 0's
    /// upper bound is 0); callers that must distinguish "empty" from
    /// "every sample was zero" check [`HistogramSnapshot::count`]
    /// first.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(self.counts.len() - 1)
    }

    /// Median bucket bound.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile bucket bound.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile bucket bound.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// Renders a metric key with labels: `name{k="v",…}`. Keys are plain
/// strings — the registry and snapshot treat the rendered form as the
/// identity, so the same name+labels always resolves to the same handle.
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
    out
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<LogHistogram>>,
}

/// Get-or-create directory of named metrics.
///
/// Resolution takes a lock and may allocate; it is meant to run at
/// set-up (or first sight of a function name), after which the returned
/// `Arc` handles are cached and every record is lock- and
/// allocation-free. Keys carry their labels inline — see [`labeled`].
///
/// A key identifies exactly one metric kind; resolving the same key as
/// two different kinds is a caller bug (both metrics would exist and
/// collide in rendered output).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: RwLock<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves (creating if absent) the counter named `key`.
    pub fn counter(&self, key: &str) -> Arc<Counter> {
        if let Some(c) = self.inner.read().unwrap().counters.get(key) {
            return Arc::clone(c);
        }
        let mut inner = self.inner.write().unwrap();
        Arc::clone(inner.counters.entry(key.to_string()).or_default())
    }

    /// Resolves (creating if absent) the gauge named `key`.
    pub fn gauge(&self, key: &str) -> Arc<Gauge> {
        if let Some(g) = self.inner.read().unwrap().gauges.get(key) {
            return Arc::clone(g);
        }
        let mut inner = self.inner.write().unwrap();
        Arc::clone(inner.gauges.entry(key.to_string()).or_default())
    }

    /// Resolves (creating if absent) the histogram named `key`.
    pub fn histogram(&self, key: &str) -> Arc<LogHistogram> {
        if let Some(h) = self.inner.read().unwrap().histograms.get(key) {
            return Arc::clone(h);
        }
        let mut inner = self.inner.write().unwrap();
        Arc::clone(inner.histograms.entry(key.to_string()).or_default())
    }

    /// Copies every registered metric into an owned
    /// [`crate::MetricsSnapshot`], sorted by key.
    pub fn snapshot(&self) -> crate::MetricsSnapshot {
        let inner = self.inner.read().unwrap();
        crate::MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_shards() {
        let c = Counter::new();
        for _ in 0..10 {
            c.inc();
        }
        c.add(90);
        assert_eq!(c.get(), 100);
    }

    #[test]
    fn gauge_set_add_get() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(2.5);
        g.add(-1.0);
        assert_eq!(g.get(), 1.5);
    }

    #[test]
    fn bucket_round_trip_brackets_every_value() {
        let probes = [
            0u64,
            1,
            2,
            3,
            4,
            5,
            7,
            8,
            9,
            15,
            16,
            17,
            1000,
            4095,
            4096,
            123_456_789,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &probes {
            let i = bucket_index(v);
            assert!(i < HIST_BUCKETS, "index {i} for {v}");
            assert!(v <= bucket_upper(i), "{v} above its bucket bound");
            if i > 0 {
                assert!(v > bucket_upper(i - 1), "{v} below previous bound");
            }
        }
    }

    #[test]
    fn bucket_bounds_are_strictly_increasing() {
        for i in 1..HIST_BUCKETS {
            assert!(bucket_upper(i) > bucket_upper(i - 1), "bucket {i}");
        }
        assert_eq!(bucket_upper(HIST_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_land_in_the_right_bucket() {
        let h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.sum, 500_500);
        // Exact p50 is 500; the reported bound must share its bucket.
        assert_eq!(bucket_index(s.p50()), bucket_index(500));
        assert_eq!(bucket_index(s.p99()), bucket_index(990));
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_snapshot_is_quiet() {
        let s = HistogramSnapshot::new();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    /// Pins the documented empty-histogram contract: every quantile of
    /// an empty histogram — including out-of-range `q` — is the
    /// sentinel `0`, any nonzero sample reports above the sentinel,
    /// and `count()` is the disambiguator for all-zero data.
    #[test]
    fn empty_quantile_sentinel_is_pinned() {
        let empty = HistogramSnapshot::new();
        for q in [-1.0, 0.0, 0.5, 0.95, 0.99, 1.0, 2.0] {
            assert_eq!(empty.quantile(q), 0, "q={q}");
        }
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.p99(), 0);
        assert_eq!(empty.count(), 0);
        let h = LogHistogram::new();
        h.record(1);
        assert!(
            h.snapshot().quantile(0.5) > 0,
            "real samples report above the sentinel"
        );
        // All-zero data coincides with the sentinel; count() tells them apart.
        let zeros = LogHistogram::new();
        zeros.record(0);
        let s = zeros.snapshot();
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn merge_adds_bucket_wise() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        a.record(10);
        b.record(10);
        b.record(1_000_000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 3);
        assert_eq!(m.counts[bucket_index(10)], 2);
        assert_eq!(m.sum, 1_000_020);
    }

    #[test]
    fn labeled_renders_and_registry_dedupes() {
        assert_eq!(labeled("m", &[]), "m");
        assert_eq!(
            labeled("m", &[("a", "x"), ("b", "y")]),
            "m{a=\"x\",b=\"y\"}"
        );
        let r = MetricsRegistry::new();
        let c1 = r.counter("hits");
        let c2 = r.counter("hits");
        c1.inc();
        assert_eq!(c2.get(), 1);
        assert!(Arc::ptr_eq(&c1, &c2));
    }

    #[test]
    fn registry_snapshot_lists_everything_sorted() {
        let r = MetricsRegistry::new();
        r.counter("b_total").add(2);
        r.counter("a_total").add(1);
        r.gauge("depth").set(3.0);
        r.histogram("lat_ns").record(7);
        let s = r.snapshot();
        assert_eq!(
            s.counters,
            vec![("a_total".into(), 1), ("b_total".into(), 2)]
        );
        assert_eq!(s.gauges, vec![("depth".into(), 3.0)]);
        assert_eq!(s.histograms.len(), 1);
        assert_eq!(s.histograms[0].1.count(), 1);
    }
}
