//! Allocator-traffic pinning for the warm metric-record path — the
//! contract that lets the serve flush loop and the wire pump record
//! telemetry unconditionally: once a handle is resolved and a thread's
//! counter slot is warm, `Counter::inc`/`add`, `Gauge::set`/`add`,
//! `LogHistogram::record`, `SpanCell::record`, and the unsampled
//! `SpanRecorder::try_start` fast path touch the heap **zero** times.
//!
//! This binary holds exactly one test so the counting global allocator
//! observes only the measured region; resolution (which locks and
//! allocates, by design) happens before the baseline is read.

use flexsfu_obs::{ManualClock, MetricsRegistry, SampleRate, SpanRecorder, Stage};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// System allocator with global counters.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static NET_BYTES: AtomicI64 = AtomicI64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        NET_BYTES.fetch_add(layout.size() as i64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        NET_BYTES.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        NET_BYTES.fetch_add(new_size as i64 - layout.size() as i64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

const STEPS: u64 = 10_000;

#[test]
fn warm_record_path_never_touches_the_heap() {
    // Resolution phase: registry handles (lock + allocate, once) and a
    // span ring whose sampling rate exceeds the step count, so inside
    // the measured region only the unsampled fast path runs.
    let registry = MetricsRegistry::new();
    let counter = registry.counter("req_total{function=\"gelu\"}");
    let gauge = registry.gauge("queue_depth");
    let hist = registry.histogram("eval_ns");
    let spans = SpanRecorder::new(
        64,
        SampleRate(STEPS as u32 * 2),
        Arc::new(ManualClock::new()),
    );

    // Warm-up: the first record on a thread initializes its counter
    // shard slot, and the sampled try_start path allocates its cell —
    // both deliberately outside the measured region.
    counter.inc();
    gauge.set(1.0);
    hist.record(1);
    let cell = spans.try_start(0).expect("job 0 is sampled");
    cell.record(Stage::Submit, 1);

    let before_calls = ALLOC_CALLS.load(Ordering::Relaxed);
    let before_net = NET_BYTES.load(Ordering::Relaxed);
    for i in 1..=STEPS {
        counter.inc();
        counter.add(3);
        gauge.set(i as f64);
        gauge.add(0.5);
        hist.record(i * 37);
        cell.record(Stage::BackendEval, i);
        // Jobs 1..=STEPS are all unsampled at this rate: the fast path
        // is a counter bump and a branch, no cell, no ring traffic.
        assert!(spans.try_start(1).is_none());
    }
    let d_calls = ALLOC_CALLS.load(Ordering::Relaxed) - before_calls;
    let d_net = NET_BYTES.load(Ordering::Relaxed) - before_net;

    assert_eq!(
        d_calls, 0,
        "warm record path allocated {d_calls} times over {STEPS} steps"
    );
    assert_eq!(d_net, 0, "heap grew by {d_net} bytes over {STEPS} steps");

    // The records all landed: totals are exact, not sampled.
    assert_eq!(counter.get(), 1 + 4 * STEPS);
    assert_eq!(gauge.get(), STEPS as f64 + 0.5);
    let snap = hist.snapshot();
    assert_eq!(snap.count(), 1 + STEPS);
    assert_eq!(spans.submitted(), 1 + STEPS);
}
