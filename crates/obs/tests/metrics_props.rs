//! Property battery for the metrics core — the algebra the fleet view
//! stands on:
//!
//! * snapshot **merge is commutative and associative** (counters and
//!   histogram buckets add exactly; gauge values are generated
//!   integer-valued so float addition is exact too), with the empty
//!   snapshot as identity,
//! * a histogram **quantile is the bucket bound of the exact order
//!   statistic**: `quantile(q)` equals `bucket_upper(bucket_index(x))`
//!   for the rank-`ceil(q·n)` sample `x` — within one bucket of exact,
//!   by construction,
//! * the **codec round-trips** any registry-built snapshot bit-for-bit
//!   and is **total**: arbitrary bytes and corrupted blobs decode or
//!   fail typed, never panic.

use flexsfu_obs::{bucket_index, bucket_upper, LogHistogram, MetricsRegistry, MetricsSnapshot};
use proptest::prelude::*;

/// Builds a snapshot from op words: each word encodes a metric kind, a
/// key from a small pool (labelled and bare), and a value. Gauges stay
/// integer-valued so merging them is exact float arithmetic.
fn snapshot_from(ops: &[u64]) -> MetricsSnapshot {
    const KEYS: [&str; 5] = [
        "req_total",
        "req_total{function=\"gelu\"}",
        "queue_depth",
        "eval_ns",
        "eval_ns{function=\"tanh\"}",
    ];
    let r = MetricsRegistry::new();
    for &op in ops {
        let key = KEYS[(op >> 2) as usize % KEYS.len()];
        match op % 3 {
            0 => r.counter(key).add((op >> 5) % 1_000_000),
            1 => r.gauge(key).add(((op >> 5) % 1_000) as f64),
            _ => r.histogram(key).record(op >> 5),
        }
    }
    r.snapshot()
}

fn merged(a: &MetricsSnapshot, b: &MetricsSnapshot) -> MetricsSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

fn ops() -> proptest::collection::VecStrategy<std::ops::RangeInclusive<u64>> {
    proptest::collection::vec(0u64..=u64::MAX, 0..24)
}

proptest! {
    #[test]
    fn merge_is_commutative(a in ops(), b in ops()) {
        let (a, b) = (snapshot_from(&a), snapshot_from(&b));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn merge_is_associative(a in ops(), b in ops(), c in ops()) {
        let (a, b, c) = (snapshot_from(&a), snapshot_from(&b), snapshot_from(&c));
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    #[test]
    fn empty_snapshot_is_the_merge_identity(a in ops()) {
        let a = snapshot_from(&a);
        let empty = MetricsSnapshot::new();
        prop_assert_eq!(merged(&a, &empty), a.clone());
        prop_assert_eq!(merged(&empty, &a), a);
    }

    /// `quantile(q)` reports exactly the upper bound of the bucket the
    /// exact order statistic fell into — never more than one log-bucket
    /// (≤ 25% relative) away from the true value.
    #[test]
    fn quantiles_are_the_exact_order_statistic_bucket(
        mut values in proptest::collection::vec(0u64..=u64::MAX, 1..64),
        q in 0.0f64..=1.0,
    ) {
        let h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        values.sort_unstable();
        let n = values.len() as u64;
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let exact = values[rank as usize - 1];
        prop_assert_eq!(snap.quantile(q), bucket_upper(bucket_index(exact)));
    }

    /// Bucket geometry: indexing is monotone in the sample and the
    /// reported bound never undercuts the sample it stands for.
    #[test]
    fn bucket_bounds_cover_their_samples(v in 0u64..=u64::MAX, w in 0u64..=u64::MAX) {
        prop_assert!(bucket_upper(bucket_index(v)) >= v);
        if v <= w {
            prop_assert!(bucket_index(v) <= bucket_index(w));
        }
    }

    #[test]
    fn codec_round_trips_bit_for_bit(a in ops()) {
        let a = snapshot_from(&a);
        prop_assert_eq!(MetricsSnapshot::decode(&a.encode()), Ok(a));
    }

    /// Totality on arbitrary input: decoding returns, panic-free, on
    /// any byte soup.
    #[test]
    fn decode_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        let _ = MetricsSnapshot::decode(&bytes);
    }

    /// Totality under single-byte corruption of a valid blob: decodes
    /// (possibly to different data) or fails typed — and truncation at
    /// any point before the end is always an error, never a partial
    /// parse.
    #[test]
    fn corrupted_and_truncated_blobs_fail_typed(a in ops(), at in 0usize..4096, bit in 0u8..8) {
        let a = snapshot_from(&a);
        let good = a.encode();
        let mut bad = good.clone();
        let at = at % bad.len();
        bad[at] ^= 1 << bit;
        let _ = MetricsSnapshot::decode(&bad);
        for cut in 0..good.len() {
            prop_assert!(MetricsSnapshot::decode(&good[..cut]).is_err(), "cut {}", cut);
        }
    }
}
