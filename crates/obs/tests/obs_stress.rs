//! Concurrency battery for the metrics core: many threads hammering
//! shared handles must lose nothing — counter totals are exact (the
//! shards repartition the count, never drop it), histogram bucket sums
//! are exact, the span ring's bookkeeping stays consistent under
//! eviction races, and snapshots taken from two racing registries merge
//! to the combined totals.

use flexsfu_obs::{labeled, ManualClock, MetricsRegistry, SampleRate, SpanRecorder, STAGES};
use flexsfu_serve::testkit::with_watchdog;
use std::sync::Arc;

const THREADS: usize = 8;
const OPS: u64 = 50_000;

#[test]
fn concurrent_recording_loses_nothing() {
    with_watchdog(60, "concurrent_recording_loses_nothing", || {
        let registry = Arc::new(MetricsRegistry::new());
        let spans = Arc::new(SpanRecorder::new(
            256,
            SampleRate(16),
            Arc::new(ManualClock::new()),
        ));

        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let registry = Arc::clone(&registry);
                let spans = Arc::clone(&spans);
                std::thread::spawn(move || {
                    // Every thread resolves the same keys — handle
                    // resolution itself is part of the race.
                    let shared = registry.counter("ops_total");
                    let own =
                        registry.counter(&labeled("ops_total", &[("thread", &t.to_string())]));
                    let gauge = registry.gauge("last_op");
                    let hist = registry.histogram("op_ns");
                    for i in 0..OPS {
                        shared.inc();
                        own.inc();
                        gauge.set(i as f64);
                        hist.record(i % 1024);
                        if let Some(cell) = spans.try_start(t as u32) {
                            for &stage in &STAGES {
                                cell.record(stage, i);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("recorder thread panicked");
        }

        let total = THREADS as u64 * OPS;
        let snap = registry.snapshot();
        assert_eq!(snap.counter("ops_total"), Some(total));
        for t in 0..THREADS {
            assert_eq!(
                snap.counter(&labeled("ops_total", &[("thread", &t.to_string())])),
                Some(OPS)
            );
        }
        let hist = snap.histogram("op_ns").expect("histogram present");
        assert_eq!(hist.count(), total);
        // Sum of (i % 1024) over OPS iterations, once per thread.
        let per_thread: u64 = (0..OPS).map(|i| i % 1024).sum();
        assert_eq!(hist.sum, THREADS as u64 * per_thread);
        // The gauge holds one thread's final write, whichever raced last.
        assert_eq!(snap.gauge("last_op"), Some((OPS - 1) as f64));

        // Span accounting balances: every submit claimed exactly one
        // sequence number, and sampled cells are either retained or
        // counted as dropped.
        assert_eq!(spans.submitted(), total);
        let sampled = total.div_ceil(16);
        let dump = spans.dump();
        assert_eq!(dump.len() as u64 + spans.dropped(), sampled);
        assert_eq!(dump.len(), 256, "ring full after {sampled} samples");
        for span in &dump {
            // Fully stamped: the recording threads stamp every stage
            // before moving on.
            for &stage in &STAGES {
                assert!(span.stage(stage).is_some());
            }
        }
    });
}

/// Two registries raced independently still merge to combined totals —
/// the property `scrape_all` relies on when it folds per-shard
/// snapshots, here pinned under concurrent mutation.
#[test]
fn racing_registries_merge_to_combined_totals() {
    with_watchdog(60, "racing_registries_merge_to_combined_totals", || {
        let a = Arc::new(MetricsRegistry::new());
        let b = Arc::new(MetricsRegistry::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let r = if t % 2 == 0 {
                    Arc::clone(&a)
                } else {
                    Arc::clone(&b)
                };
                std::thread::spawn(move || {
                    let c = r.counter("ops_total");
                    let h = r.histogram("op_ns");
                    for i in 0..OPS {
                        c.inc();
                        h.record(i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("recorder thread panicked");
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let total = THREADS as u64 * OPS;
        assert_eq!(merged.counter("ops_total"), Some(total));
        assert_eq!(merged.histogram("op_ns").expect("present").count(), total);
    });
}
