//! Two's-complement fixed-point Q formats.

/// A signed fixed-point format with `bits` total bits (8, 16 or 32) and
/// `frac` fractional bits (a "Q(bits-frac-1).(frac)" format).
///
/// Values are stored as two's-complement integer codes scaled by `2^-frac`.
/// Encoding uses round-to-nearest-even with saturation at the format's
/// representable range, matching typical DNN-accelerator quantizer
/// behaviour.
///
/// # Examples
///
/// ```
/// use flexsfu_formats::FixedFormat;
///
/// // Q4.3: 8 bits, 3 fractional → resolution 0.125, range [-16, 15.875]
/// let q = FixedFormat::new(8, 3);
/// assert_eq!(q.resolution(), 0.125);
/// assert_eq!(q.quantize(0.3), 0.25);
/// assert_eq!(q.quantize(1000.0), q.max_value()); // saturates
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FixedFormat {
    bits: u8,
    frac: u8,
}

impl FixedFormat {
    /// Creates a fixed-point format.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not 8, 16 or 32, or if `frac >= bits`.
    pub fn new(bits: u8, frac: u8) -> Self {
        assert!(
            matches!(bits, 8 | 16 | 32),
            "fixed-point width must be 8, 16 or 32 bits, got {bits}"
        );
        assert!(
            frac < bits,
            "fractional bits ({frac}) must be smaller than total bits ({bits})"
        );
        Self { bits, frac }
    }

    /// Picks the format with the most fractional bits whose range still
    /// covers `[lo, hi]`.
    ///
    /// This is how the hardware-model tests choose a sensible Q format for
    /// a given activation's input/output range.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`, if either bound is not finite, or if the range
    /// does not fit the widest integer part available.
    ///
    /// # Examples
    ///
    /// ```
    /// use flexsfu_formats::FixedFormat;
    /// let q = FixedFormat::for_range(16, -8.0, 8.0);
    /// // Needs 4 integer bits (+ sign) for ±8 → 11 fractional bits left.
    /// assert_eq!(q.frac_bits(), 11);
    /// ```
    pub fn for_range(bits: u8, lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad range");
        let mag = lo.abs().max(hi.abs()).max(f64::MIN_POSITIVE);
        // Smallest `int_bits` with 2^int_bits > mag (two's complement covers
        // [-2^i, 2^i - res]; we keep one spare code for simplicity).
        let mut int_bits = 0u8;
        while int_bits < bits && ((1u64 << int_bits) as f64) <= mag {
            int_bits += 1;
        }
        assert!(
            int_bits < bits,
            "range ±{mag} does not fit in {bits}-bit fixed point"
        );
        Self::new(bits, bits - 1 - int_bits)
    }

    /// Total bit width (8, 16 or 32).
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of fractional bits.
    pub fn frac_bits(&self) -> u8 {
        self.frac
    }

    /// The quantization step `2^-frac`.
    pub fn resolution(&self) -> f64 {
        (-(self.frac as f64)).exp2()
    }

    /// Largest representable value: `(2^(bits-1) - 1) · 2^-frac`.
    pub fn max_value(&self) -> f64 {
        (self.max_code() as f64) * self.resolution()
    }

    /// Smallest (most negative) representable value: `-2^(bits-1) · 2^-frac`.
    pub fn min_value(&self) -> f64 {
        (self.min_code() as f64) * self.resolution()
    }

    fn max_code(&self) -> i64 {
        (1i64 << (self.bits - 1)) - 1
    }

    fn min_code(&self) -> i64 {
        -(1i64 << (self.bits - 1))
    }

    /// Encodes `x` into its integer code (two's complement value), with
    /// round-to-nearest-even and saturation. NaN encodes as 0.
    ///
    /// # Examples
    ///
    /// ```
    /// use flexsfu_formats::FixedFormat;
    /// let q = FixedFormat::new(8, 3);
    /// assert_eq!(q.encode(0.25), 2);
    /// assert_eq!(q.encode(-1.0), -8);
    /// assert_eq!(q.encode(f64::INFINITY), 127);
    /// ```
    pub fn encode(&self, x: f64) -> i64 {
        if x.is_nan() {
            return 0;
        }
        if x.is_infinite() {
            return if x > 0.0 {
                self.max_code()
            } else {
                self.min_code()
            };
        }
        let scaled = x / self.resolution();
        // Round half to even, like hardware quantizers.
        let code = round_half_even(scaled);
        code.clamp(self.min_code(), self.max_code())
    }

    /// Decodes an integer code back to its real value.
    ///
    /// # Panics
    ///
    /// Panics if `code` is outside the format's code range.
    pub fn decode(&self, code: i64) -> f64 {
        assert!(
            (self.min_code()..=self.max_code()).contains(&code),
            "code {code} out of range for {self:?}"
        );
        code as f64 * self.resolution()
    }

    /// Quantizes `x` through the format (encode then decode).
    pub fn quantize(&self, x: f64) -> f64 {
        self.decode(self.encode(x))
    }

    /// Reinterprets the signed code as the raw `bits`-wide bit pattern
    /// (zero-extended into a `u32`), as stored in the SIMD memories.
    pub fn code_to_bits(&self, code: i64) -> u32 {
        let mask = if self.bits == 32 {
            u32::MAX
        } else {
            (1u32 << self.bits) - 1
        };
        (code as i32 as u32) & mask
    }

    /// Inverse of [`FixedFormat::code_to_bits`] (sign-extends the pattern).
    pub fn bits_to_code(&self, bits: u32) -> i64 {
        let shift = 32 - self.bits as u32;
        (((bits << shift) as i32) >> shift) as i64
    }
}

/// Rounds to the nearest integer, ties to even, returning an `i64`.
fn round_half_even(x: f64) -> i64 {
    let floor = x.floor();
    let diff = x - floor;
    let f = floor as i64;
    if diff > 0.5 || (diff == 0.5 && f % 2 != 0) {
        f + 1
    } else {
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_and_range() {
        let q = FixedFormat::new(8, 3);
        assert_eq!(q.resolution(), 0.125);
        assert_eq!(q.max_value(), 15.875);
        assert_eq!(q.min_value(), -16.0);
    }

    #[test]
    fn encode_decode_roundtrip_all_codes_q8() {
        let q = FixedFormat::new(8, 5);
        for code in -128..=127i64 {
            let v = q.decode(code);
            assert_eq!(q.encode(v), code, "code {code}");
            assert_eq!(q.bits_to_code(q.code_to_bits(code)), code);
        }
    }

    #[test]
    fn round_half_even_ties() {
        let q = FixedFormat::new(8, 1); // resolution 0.5
        assert_eq!(q.quantize(0.25), 0.0); // tie → even code 0
        assert_eq!(q.quantize(0.75), 1.0); // tie → even code 2
        assert_eq!(q.quantize(-0.25), 0.0);
        assert_eq!(q.quantize(-0.75), -1.0);
    }

    #[test]
    fn saturation() {
        let q = FixedFormat::new(8, 3);
        assert_eq!(q.quantize(100.0), q.max_value());
        assert_eq!(q.quantize(-100.0), q.min_value());
        assert_eq!(q.quantize(f64::INFINITY), q.max_value());
        assert_eq!(q.quantize(f64::NEG_INFINITY), q.min_value());
        assert_eq!(q.encode(f64::NAN), 0);
    }

    #[test]
    fn quantization_error_bounded_by_half_resolution() {
        let q = FixedFormat::new(16, 8);
        for i in 0..1000 {
            let x = -10.0 + i as f64 * 0.02;
            let e = (q.quantize(x) - x).abs();
            assert!(e <= q.resolution() / 2.0 + 1e-12, "x={x}, err={e}");
        }
    }

    #[test]
    fn for_range_fits_and_maximizes_precision() {
        let q = FixedFormat::for_range(16, -8.0, 8.0);
        assert!(q.min_value() <= -8.0 && q.max_value() >= 8.0 - q.resolution());
        assert_eq!(q.frac_bits(), 11);
        let tight = FixedFormat::for_range(8, -0.9, 0.9);
        assert_eq!(tight.frac_bits(), 7);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn for_range_rejects_oversized_range() {
        FixedFormat::for_range(8, -1e9, 1e9);
    }

    #[test]
    #[should_panic(expected = "width must be")]
    fn rejects_odd_width() {
        FixedFormat::new(12, 4);
    }

    #[test]
    fn bit_patterns_are_twos_complement() {
        let q = FixedFormat::new(8, 0);
        assert_eq!(q.code_to_bits(-1), 0xFF);
        assert_eq!(q.code_to_bits(-128), 0x80);
        assert_eq!(q.code_to_bits(127), 0x7F);
        let q32 = FixedFormat::new(32, 16);
        assert_eq!(q32.code_to_bits(-1), 0xFFFF_FFFF);
    }

    #[test]
    fn quantize_is_idempotent() {
        let q = FixedFormat::new(16, 10);
        for i in -50..50 {
            let x = i as f64 * 0.137;
            let once = q.quantize(x);
            assert_eq!(q.quantize(once), once);
        }
    }
}
