//! SIMD lane packing into 32-bit memory words.
//!
//! The ADU and LTC use four 8-bit-wide single-port memories per cluster
//! (paper, Figure 3). A 32-bit datum occupies one slice of each memory; two
//! 16-bit data occupy two slices each; four 8-bit data occupy one slice
//! each. This module packs/unpacks element bit patterns into the 32-bit
//! word layout those memories store, little-endian in lane order (lane 0 in
//! the least significant bits, matching slice `b₀`).

use crate::format::ElemSize;

/// Packs up to `lanes_per_word` element patterns into one 32-bit word.
///
/// Lane 0 goes to the least-significant bits. Missing trailing lanes are
/// zero-filled (hardware leaves unused slices idle).
///
/// # Panics
///
/// Panics if more lanes are supplied than fit, or if any element exceeds
/// its width.
///
/// # Examples
///
/// ```
/// use flexsfu_formats::pack::pack_word;
/// use flexsfu_formats::ElemSize;
///
/// assert_eq!(pack_word(&[0xAB, 0xCD, 0x01, 0x23], ElemSize::B8), 0x2301CDAB);
/// assert_eq!(pack_word(&[0xBEEF, 0xDEAD], ElemSize::B16), 0xDEADBEEF);
/// assert_eq!(pack_word(&[0x12345678], ElemSize::B32), 0x12345678);
/// ```
pub fn pack_word(lanes: &[u32], size: ElemSize) -> u32 {
    let n = size.lanes_per_word();
    assert!(
        lanes.len() <= n,
        "{} lanes supplied but {size:?} fits only {n} per word",
        lanes.len()
    );
    let width = size.bits() as u32;
    let lane_mask = if width == 32 {
        u32::MAX
    } else {
        (1 << width) - 1
    };
    let mut word = 0u32;
    for (i, &lane) in lanes.iter().enumerate() {
        assert!(
            lane <= lane_mask,
            "lane {i} value {lane:#x} exceeds {width} bits"
        );
        word |= lane << (i as u32 * width);
    }
    word
}

/// Unpacks a 32-bit word into its element patterns (inverse of
/// [`pack_word`], always returning a full `lanes_per_word()` vector).
///
/// # Examples
///
/// ```
/// use flexsfu_formats::pack::{pack_word, unpack_word};
/// use flexsfu_formats::ElemSize;
///
/// let word = pack_word(&[1, 2], ElemSize::B16);
/// assert_eq!(unpack_word(word, ElemSize::B16), vec![1, 2]);
/// ```
pub fn unpack_word(word: u32, size: ElemSize) -> Vec<u32> {
    let width = size.bits() as u32;
    let lane_mask = if width == 32 {
        u32::MAX
    } else {
        (1 << width) - 1
    };
    (0..size.lanes_per_word())
        .map(|i| (word >> (i as u32 * width)) & lane_mask)
        .collect()
}

/// Packs a stream of element patterns into 32-bit words, zero-padding the
/// final word. This is the layout `exe.af()` consumes: the DCU receives
/// 32-bit beats and fans the lanes out to the comparators.
///
/// # Examples
///
/// ```
/// use flexsfu_formats::pack::pack_stream;
/// use flexsfu_formats::ElemSize;
///
/// let words = pack_stream(&[1, 2, 3, 4, 5], ElemSize::B8);
/// assert_eq!(words.len(), 2); // 5 bytes → 2 words
/// ```
pub fn pack_stream(elems: &[u32], size: ElemSize) -> Vec<u32> {
    elems
        .chunks(size.lanes_per_word())
        .map(|chunk| pack_word(chunk, size))
        .collect()
}

/// Unpacks a word stream back into exactly `count` element patterns.
///
/// # Panics
///
/// Panics if the words cannot hold `count` elements.
pub fn unpack_stream(words: &[u32], size: ElemSize, count: usize) -> Vec<u32> {
    let capacity = words.len() * size.lanes_per_word();
    assert!(
        count <= capacity,
        "cannot unpack {count} elements from {capacity} lanes"
    );
    let mut out = Vec::with_capacity(count);
    'outer: for &w in words {
        for lane in unpack_word(w, size) {
            if out.len() == count {
                break 'outer;
            }
            out.push(lane);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pack_unpack_roundtrip_exact_words() {
        for size in [ElemSize::B8, ElemSize::B16, ElemSize::B32] {
            let n = size.lanes_per_word();
            let lanes: Vec<u32> = (0..n as u32).map(|i| i + 1).collect();
            let w = pack_word(&lanes, size);
            assert_eq!(unpack_word(w, size), lanes);
        }
    }

    #[test]
    fn partial_word_zero_fills() {
        let w = pack_word(&[0xFF], ElemSize::B8);
        assert_eq!(w, 0xFF);
        assert_eq!(unpack_word(w, ElemSize::B8), vec![0xFF, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "exceeds 8 bits")]
    fn oversized_lane_panics() {
        pack_word(&[0x100], ElemSize::B8);
    }

    #[test]
    #[should_panic(expected = "fits only")]
    fn too_many_lanes_panics() {
        pack_word(&[0, 0], ElemSize::B32);
    }

    #[test]
    fn stream_roundtrip_with_padding() {
        let elems: Vec<u32> = (0..7).collect();
        let words = pack_stream(&elems, ElemSize::B8);
        assert_eq!(words.len(), 2);
        assert_eq!(unpack_stream(&words, ElemSize::B8, 7), elems);
    }

    #[test]
    #[should_panic(expected = "cannot unpack")]
    fn unpack_stream_over_capacity_panics() {
        unpack_stream(&[0], ElemSize::B32, 2);
    }

    proptest! {
        #[test]
        fn prop_stream_roundtrip_b16(elems in proptest::collection::vec(0u32..=0xFFFF, 0..64)) {
            let words = pack_stream(&elems, ElemSize::B16);
            prop_assert_eq!(unpack_stream(&words, ElemSize::B16, elems.len()), elems);
        }

        #[test]
        fn prop_word_roundtrip_b8(lanes in proptest::collection::vec(0u32..=0xFF, 4)) {
            let w = pack_word(&lanes, ElemSize::B8);
            prop_assert_eq!(unpack_word(w, ElemSize::B8), lanes);
        }
    }
}
