//! The unified [`DataFormat`] the Flex-SFU datapath is generic over.

use crate::cmp;
use crate::fixed::FixedFormat;
use crate::minifloat::FloatFormat;

/// Element width of a SIMD computation: the paper's Flex-SFU processes
/// four 8-bit, two 16-bit or one 32-bit element(s) per cycle per cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemSize {
    /// 8-bit elements, 4 lanes per 32-bit word.
    B8,
    /// 16-bit elements, 2 lanes per 32-bit word.
    B16,
    /// 32-bit elements, 1 lane per 32-bit word.
    B32,
}

impl ElemSize {
    /// Element width in bits.
    pub fn bits(&self) -> u8 {
        match self {
            ElemSize::B8 => 8,
            ElemSize::B16 => 16,
            ElemSize::B32 => 32,
        }
    }

    /// Number of elements packed in one 32-bit word (4, 2 or 1).
    pub fn lanes_per_word(&self) -> usize {
        32 / self.bits() as usize
    }

    /// The size matching a bit width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not 8, 16 or 32.
    pub fn from_bits(bits: u8) -> Self {
        match bits {
            8 => ElemSize::B8,
            16 => ElemSize::B16,
            32 => ElemSize::B32,
            other => panic!("unsupported element width: {other} bits"),
        }
    }
}

/// A concrete number format: fixed-point or floating-point, 8/16/32 bits.
///
/// This is the type the hardware model is parameterized by — breakpoints,
/// coefficients and input data are all stored and compared in one
/// `DataFormat`.
///
/// # Examples
///
/// ```
/// use flexsfu_formats::{DataFormat, FixedFormat, FloatFormat};
///
/// let q = DataFormat::Fixed(FixedFormat::new(16, 8));
/// let f = DataFormat::Float(FloatFormat::FP16);
/// assert_eq!(q.bits(), 16);
/// assert_eq!(f.bits(), 16);
/// assert_eq!(q.quantize(0.50001), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataFormat {
    /// Two's-complement fixed point.
    Fixed(FixedFormat),
    /// IEEE-style floating point.
    Float(FloatFormat),
}

impl DataFormat {
    /// Total storage width in bits (8, 16 or 32).
    pub fn bits(&self) -> u8 {
        match self {
            DataFormat::Fixed(f) => f.bits(),
            DataFormat::Float(f) => f.bits(),
        }
    }

    /// The SIMD element size of this format.
    pub fn elem_size(&self) -> ElemSize {
        ElemSize::from_bits(self.bits())
    }

    /// Encodes `x` into the raw bit pattern stored in the SIMD memories.
    pub fn encode(&self, x: f64) -> u32 {
        match self {
            DataFormat::Fixed(f) => f.code_to_bits(f.encode(x)),
            DataFormat::Float(f) => f.encode(x),
        }
    }

    /// Decodes a raw bit pattern back to its real value.
    ///
    /// # Panics
    ///
    /// Panics if the pattern is wider than the format.
    pub fn decode(&self, pattern: u32) -> f64 {
        match self {
            DataFormat::Fixed(f) => f.decode(f.bits_to_code(pattern)),
            DataFormat::Float(f) => f.decode(pattern),
        }
    }

    /// Quantizes `x` through the format (encode then decode).
    pub fn quantize(&self, x: f64) -> f64 {
        self.decode(self.encode(x))
    }

    /// Maps a bit pattern to its *monotone comparison key*: an unsigned
    /// integer whose order matches the numeric order of the decoded values.
    ///
    /// This is the operation the ADU's SIMD comparator performs — one
    /// unsigned comparator circuit serves both fixed- and floating-point
    /// data. See [`cmp`](crate::cmp) for the underlying transforms.
    pub fn compare_key(&self, pattern: u32) -> u32 {
        match self {
            DataFormat::Fixed(f) => cmp::fixed_key(pattern, f.bits()),
            DataFormat::Float(f) => cmp::float_key(pattern, f.bits()),
        }
    }

    /// Largest representable finite value.
    pub fn max_value(&self) -> f64 {
        match self {
            DataFormat::Fixed(f) => f.max_value(),
            DataFormat::Float(f) => f.max_finite(),
        }
    }

    /// Smallest representable finite value (most negative).
    pub fn min_value(&self) -> f64 {
        match self {
            DataFormat::Fixed(f) => f.min_value(),
            DataFormat::Float(f) => -f.max_finite(),
        }
    }

    /// A human-readable label like `"q8.3"` or `"fp16"`, used by reports.
    pub fn label(&self) -> String {
        match self {
            DataFormat::Fixed(f) => {
                format!("q{}.{}", f.bits() - 1 - f.frac_bits(), f.frac_bits())
            }
            DataFormat::Float(f) => match (f.exp_bits(), f.man_bits()) {
                (4, 3) => "fp8".to_string(),
                (5, 10) => "fp16".to_string(),
                (8, 7) => "bf16".to_string(),
                (8, 23) => "fp32".to_string(),
                (e, m) => format!("e{e}m{m}"),
            },
        }
    }

    /// The standard float format of each width (FP8 / FP16 / FP32).
    pub fn standard_float(size: ElemSize) -> Self {
        DataFormat::Float(match size {
            ElemSize::B8 => FloatFormat::FP8,
            ElemSize::B16 => FloatFormat::FP16,
            ElemSize::B32 => FloatFormat::FP32,
        })
    }

    /// A fixed-point format of the given width covering `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Propagates the panics of [`FixedFormat::for_range`].
    pub fn fixed_for_range(size: ElemSize, lo: f64, hi: f64) -> Self {
        DataFormat::Fixed(FixedFormat::for_range(size.bits(), lo, hi))
    }
}

impl std::fmt::Display for DataFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elem_size_lanes() {
        assert_eq!(ElemSize::B8.lanes_per_word(), 4);
        assert_eq!(ElemSize::B16.lanes_per_word(), 2);
        assert_eq!(ElemSize::B32.lanes_per_word(), 1);
    }

    #[test]
    #[should_panic(expected = "unsupported element width")]
    fn elem_size_rejects_odd_width() {
        ElemSize::from_bits(24);
    }

    #[test]
    fn labels() {
        assert_eq!(DataFormat::Float(FloatFormat::FP16).label(), "fp16");
        assert_eq!(DataFormat::Fixed(FixedFormat::new(8, 3)).label(), "q4.3");
        assert_eq!(DataFormat::Float(FloatFormat::new(3, 2)).label(), "e3m2");
        assert_eq!(format!("{}", DataFormat::Float(FloatFormat::FP8)), "fp8");
    }

    #[test]
    fn quantize_roundtrip_both_families() {
        let formats = [
            DataFormat::Fixed(FixedFormat::new(16, 8)),
            DataFormat::Float(FloatFormat::FP16),
        ];
        for fmt in formats {
            for i in -100..=100 {
                let x = i as f64 * 0.07;
                let q = fmt.quantize(x);
                // Idempotent and close.
                assert_eq!(fmt.quantize(q), q);
                assert!((q - x).abs() < 0.01, "{fmt}: {x} → {q}");
            }
        }
    }

    #[test]
    fn compare_keys_are_monotone_across_formats() {
        let formats = [
            DataFormat::Fixed(FixedFormat::new(8, 4)),
            DataFormat::Float(FloatFormat::FP8),
            DataFormat::Float(FloatFormat::FP16),
        ];
        for fmt in formats {
            let xs: Vec<f64> = (-60..=60).map(|i| i as f64 * 0.11).collect();
            let mut prev_key = None;
            let mut prev_val = f64::NEG_INFINITY;
            for &x in &xs {
                let q = fmt.quantize(x);
                if q <= prev_val {
                    continue; // quantization collapsed adjacent values
                }
                let key = fmt.compare_key(fmt.encode(q));
                if let Some(pk) = prev_key {
                    assert!(key > pk, "{fmt}: key order broken at {x}");
                }
                prev_key = Some(key);
                prev_val = q;
            }
        }
    }

    #[test]
    fn standard_float_widths() {
        assert_eq!(DataFormat::standard_float(ElemSize::B8).bits(), 8);
        assert_eq!(DataFormat::standard_float(ElemSize::B16).bits(), 16);
        assert_eq!(DataFormat::standard_float(ElemSize::B32).bits(), 32);
    }

    #[test]
    fn fixed_for_range_covers_interval() {
        let f = DataFormat::fixed_for_range(ElemSize::B16, -8.0, 8.0);
        assert!(f.min_value() <= -8.0);
        assert!(f.max_value() >= 7.99);
    }
}
