//! Generic IEEE-754-style minifloat codec.

/// A binary floating-point format with a sign bit, `exp_bits` exponent bits
/// and `man_bits` mantissa bits, following IEEE-754 conventions (biased
/// exponent, hidden leading one, subnormals, exponent-all-ones = Inf/NaN).
///
/// The four formats used by the Flex-SFU datapath are provided as
/// constants: [`FloatFormat::FP8`] (E4M3), [`FloatFormat::FP16`] (E5M10),
/// [`FloatFormat::BF16`] (E8M7) and [`FloatFormat::FP32`] (E8M23).
///
/// Note: production FP8-E4M3 (the OCP variant) drops infinities to extend
/// the max magnitude to 448; we keep IEEE semantics uniformly across
/// formats for simplicity — the approximation experiments never exercise
/// values near the FP8 saturation point.
///
/// # Examples
///
/// ```
/// use flexsfu_formats::FloatFormat;
///
/// let f16 = FloatFormat::FP16;
/// assert_eq!(f16.bits(), 16);
/// // Round-trip through the 16-bit encoding:
/// let q = f16.decode(f16.encode(1.0 / 3.0));
/// assert!((q - 1.0 / 3.0).abs() < 1e-4);
/// // f32 round-trips exactly:
/// let f32f = FloatFormat::FP32;
/// assert_eq!(f32f.decode(f32f.encode(0.1)), 0.1f32 as f64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FloatFormat {
    exp_bits: u8,
    man_bits: u8,
}

impl FloatFormat {
    /// 8-bit E4M3 minifloat.
    pub const FP8: Self = Self {
        exp_bits: 4,
        man_bits: 3,
    };
    /// IEEE half precision (E5M10).
    pub const FP16: Self = Self {
        exp_bits: 5,
        man_bits: 10,
    };
    /// bfloat16 (E8M7).
    pub const BF16: Self = Self {
        exp_bits: 8,
        man_bits: 7,
    };
    /// IEEE single precision (E8M23).
    pub const FP32: Self = Self {
        exp_bits: 8,
        man_bits: 23,
    };

    /// Creates a custom format.
    ///
    /// # Panics
    ///
    /// Panics if `exp_bits` is not in `2..=8`, `man_bits` not in `1..=23`,
    /// or the total width `1 + exp_bits + man_bits` exceeds 32.
    pub fn new(exp_bits: u8, man_bits: u8) -> Self {
        assert!(
            (2..=8).contains(&exp_bits),
            "exponent width must be in 2..=8, got {exp_bits}"
        );
        assert!(
            (1..=23).contains(&man_bits),
            "mantissa width must be in 1..=23, got {man_bits}"
        );
        assert!(1 + exp_bits + man_bits <= 32, "format exceeds 32 bits");
        Self { exp_bits, man_bits }
    }

    /// Total storage width in bits (`1 + exp_bits + man_bits`).
    pub fn bits(&self) -> u8 {
        1 + self.exp_bits + self.man_bits
    }

    /// Exponent field width.
    pub fn exp_bits(&self) -> u8 {
        self.exp_bits
    }

    /// Mantissa field width.
    pub fn man_bits(&self) -> u8 {
        self.man_bits
    }

    /// Exponent bias `2^(exp_bits-1) - 1`.
    pub fn bias(&self) -> i32 {
        (1 << (self.exp_bits - 1)) - 1
    }

    /// Minimum normal (unbiased) exponent, `1 - bias`.
    fn emin(&self) -> i32 {
        1 - self.bias()
    }

    /// Maximum finite (unbiased) exponent, equal to the bias.
    fn emax(&self) -> i32 {
        self.bias()
    }

    /// Largest finite value `(2 - 2^-man_bits) · 2^emax`.
    ///
    /// # Examples
    ///
    /// ```
    /// use flexsfu_formats::FloatFormat;
    /// assert_eq!(FloatFormat::FP16.max_finite(), 65504.0);
    /// ```
    pub fn max_finite(&self) -> f64 {
        (2.0 - (-(self.man_bits as f64)).exp2()) * (self.emax() as f64).exp2()
    }

    /// Smallest positive normal value `2^emin`.
    pub fn min_positive_normal(&self) -> f64 {
        (self.emin() as f64).exp2()
    }

    /// Smallest positive subnormal value `2^(emin - man_bits)`.
    pub fn min_positive_subnormal(&self) -> f64 {
        ((self.emin() - self.man_bits as i32) as f64).exp2()
    }

    fn exp_field_max(&self) -> u32 {
        (1 << self.exp_bits) - 1
    }

    fn man_mask(&self) -> u32 {
        (1 << self.man_bits) - 1
    }

    fn sign_bit(&self) -> u32 {
        1 << (self.bits() - 1)
    }

    /// Encodes `x` to the format's bit pattern (round-to-nearest-even).
    ///
    /// Values overflowing the format become ±Inf; NaN encodes to a quiet
    /// NaN pattern; underflow goes through subnormals to ±0.
    pub fn encode(&self, x: f64) -> u32 {
        let sign = if x.is_sign_negative() {
            self.sign_bit()
        } else {
            0
        };
        if x.is_nan() {
            // Quiet NaN: exponent all ones, MSB of mantissa set.
            return self.exp_field_max() << self.man_bits | (1 << (self.man_bits - 1));
        }
        let a = x.abs();
        if a == 0.0 {
            return sign;
        }
        if a.is_infinite() {
            return sign | self.exp_field_max() << self.man_bits;
        }
        // Unbiased exponent of `a` taken from the f64 representation
        // (f64 subnormals are far below any minifloat subnormal → exp
        // saturates low and the value rounds to zero naturally).
        let f64_bits = a.to_bits();
        let e_f64 = ((f64_bits >> 52) & 0x7FF) as i32 - 1023;
        let e = e_f64.max(self.emin() - self.man_bits as i32 - 2);
        // The rounding quantum is 2^(max(e, emin) - man_bits).
        let q_exp = e.max(self.emin()) - self.man_bits as i32;
        // Multiplying by a power of two is exact in f64 for our ranges.
        let scaled = a * (-(q_exp as f64)).exp2();
        let r = round_half_even_u64(scaled);
        if r == 0 {
            return sign; // underflow to zero
        }
        let man_one = 1u64 << self.man_bits;
        let (exp_unbiased, mantissa) = if e.max(self.emin()) == self.emin() && r < man_one {
            // Subnormal result: exponent field 0.
            return sign | r as u32;
        } else if r >= 2 * man_one {
            // Rounding carried into the next binade.
            (e.max(self.emin()) + 1, 0u64)
        } else if r >= man_one {
            (e.max(self.emin()), r - man_one)
        } else {
            // r in [1, man_one): can only happen when e == emin exactly and
            // the value rounded down into the subnormal range.
            return sign | r as u32;
        };
        if exp_unbiased > self.emax() {
            return sign | self.exp_field_max() << self.man_bits; // overflow → Inf
        }
        let biased = (exp_unbiased + self.bias()) as u32;
        sign | biased << self.man_bits | mantissa as u32
    }

    /// Decodes a bit pattern to its exact `f64` value.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` has bits set above the format width.
    pub fn decode(&self, pattern: u32) -> f64 {
        assert!(
            self.bits() == 32 || pattern < (1u32 << self.bits()),
            "pattern {pattern:#x} wider than {} bits",
            self.bits()
        );
        let sign = if pattern & self.sign_bit() != 0 {
            -1.0
        } else {
            1.0
        };
        let exp_field = (pattern >> self.man_bits) & self.exp_field_max();
        let man = pattern & self.man_mask();
        if exp_field == self.exp_field_max() {
            return if man == 0 {
                sign * f64::INFINITY
            } else {
                f64::NAN
            };
        }
        let scale = ((self.emin() - self.man_bits as i32) as f64).exp2();
        if exp_field == 0 {
            sign * man as f64 * scale
        } else {
            let significand = (1u64 << self.man_bits) + man as u64;
            sign * significand as f64
                * ((exp_field as i32 - self.bias() - self.man_bits as i32) as f64).exp2()
        }
    }

    /// Quantizes `x` through the format (encode, then decode).
    pub fn quantize(&self, x: f64) -> f64 {
        self.decode(self.encode(x))
    }

    /// The unit in the last place at magnitude `|v|`: the spacing between
    /// consecutive representable values in `v`'s binade.
    pub fn ulp_at(&self, v: f64) -> f64 {
        let a = v.abs();
        if a == 0.0 || !a.is_finite() {
            return self.min_positive_subnormal();
        }
        let e_f64 = ((a.to_bits() >> 52) & 0x7FF) as i32 - 1023;
        let e = e_f64.max(self.emin());
        ((e - self.man_bits as i32) as f64).exp2()
    }
}

/// Rounds a non-negative `f64` to the nearest integer, ties to even.
fn round_half_even_u64(x: f64) -> u64 {
    debug_assert!(x >= 0.0);
    let floor = x.floor();
    let diff = x - floor;
    let f = floor as u64;
    if diff > 0.5 || (diff == 0.5 && !f.is_multiple_of(2)) {
        f + 1
    } else {
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp16_well_known_constants() {
        let f = FloatFormat::FP16;
        assert_eq!(f.bits(), 16);
        assert_eq!(f.bias(), 15);
        assert_eq!(f.max_finite(), 65504.0);
        assert_eq!(f.min_positive_normal(), 6.103515625e-5);
        assert_eq!(f.min_positive_subnormal(), 5.960464477539063e-8);
    }

    #[test]
    fn fp16_known_encodings() {
        let f = FloatFormat::FP16;
        // Values from the IEEE-754 half-precision examples.
        assert_eq!(f.encode(1.0), 0x3C00);
        assert_eq!(f.encode(-2.0), 0xC000);
        assert_eq!(f.encode(65504.0), 0x7BFF);
        assert_eq!(f.encode(0.0), 0x0000);
        assert_eq!(f.encode(-0.0), 0x8000);
        assert_eq!(f.encode(f64::INFINITY), 0x7C00);
        assert_eq!(f.encode(6.103515625e-5), 0x0400); // min normal
        assert_eq!(f.encode(5.960464477539063e-8), 0x0001); // min subnormal
        assert_eq!(f.encode(0.333251953125), 0x3555); // nearest f16 to 1/3
    }

    #[test]
    fn decode_inverts_encode_on_all_fp16_patterns() {
        let f = FloatFormat::FP16;
        for pattern in 0u32..=0xFFFF {
            let v = f.decode(pattern);
            if v.is_nan() {
                let back = f.encode(v);
                assert!(f.decode(back).is_nan());
                continue;
            }
            let back = f.encode(v);
            // -0.0 and 0.0 are distinct patterns but both valid.
            assert_eq!(
                f.decode(back).to_bits(),
                v.to_bits(),
                "pattern {pattern:#06x} → {v} → {back:#06x}"
            );
        }
    }

    #[test]
    fn decode_inverts_encode_on_all_fp8_patterns() {
        let f = FloatFormat::FP8;
        for pattern in 0u32..=0xFF {
            let v = f.decode(pattern);
            if v.is_nan() {
                continue;
            }
            assert_eq!(f.decode(f.encode(v)).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn fp32_matches_native_f32() {
        let f = FloatFormat::FP32;
        for &x in &[
            0.0,
            -0.0,
            1.0,
            -1.5,
            0.1,
            std::f64::consts::PI,
            1e-40, // f32 subnormal
            3.4e38,
            1e39, // overflows f32 → inf
            -2.5e-45,
        ] {
            let want = x as f32;
            let got = f.decode(f.encode(x));
            assert_eq!(
                got.to_bits(),
                (want as f64).to_bits(),
                "x = {x}: got {got}, want {want}"
            );
        }
        assert_eq!(f.encode(1.0f64), 1.0f32.to_bits());
        assert_eq!(f.encode(-0.375), (-0.375f32).to_bits());
    }

    #[test]
    fn fp32_random_values_match_native() {
        // Deterministic LCG so the test is reproducible without rand.
        let mut state = 0x1234_5678_9abc_def0u64;
        let f = FloatFormat::FP32;
        for _ in 0..10_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (state >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
            let v = (x - 0.5) * 1e6;
            assert_eq!(f.quantize(v), v as f32 as f64, "v = {v}");
        }
    }

    #[test]
    fn rne_ties_to_even() {
        let f = FloatFormat::FP8; // 3 mantissa bits: values 1.0, 1.125, ...
                                  // 1.0625 is exactly halfway between 1.0 (even mantissa 000) and
                                  // 1.125 (odd mantissa 001) → rounds to 1.0.
        assert_eq!(f.quantize(1.0625), 1.0);
        // 1.1875 is halfway between 1.125 (001) and 1.25 (010) → 1.25.
        assert_eq!(f.quantize(1.1875), 1.25);
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        let f = FloatFormat::FP16;
        assert_eq!(f.quantize(1e6), f64::INFINITY);
        assert_eq!(f.quantize(-1e6), f64::NEG_INFINITY);
        // Largest value that still rounds down to max_finite.
        assert_eq!(f.quantize(65519.0), 65504.0);
        assert_eq!(f.quantize(65520.0), f64::INFINITY);
    }

    #[test]
    fn underflow_to_zero_and_subnormals() {
        let f = FloatFormat::FP16;
        let min_sub = f.min_positive_subnormal();
        assert_eq!(f.quantize(min_sub), min_sub);
        assert_eq!(f.quantize(min_sub * 0.49), 0.0);
        assert_eq!(f.quantize(min_sub * 0.51), min_sub);
        assert_eq!(f.quantize(1e-300), 0.0);
    }

    #[test]
    fn nan_roundtrips_as_nan() {
        for f in [FloatFormat::FP8, FloatFormat::FP16, FloatFormat::BF16] {
            assert!(f.decode(f.encode(f64::NAN)).is_nan());
        }
    }

    #[test]
    fn bf16_truncates_f32_exponent_range() {
        let f = FloatFormat::BF16;
        assert_eq!(f.bias(), 127);
        // bf16 covers the f32 exponent range.
        assert!(f.quantize(1e38).is_finite());
        assert!((f.quantize(1e38) - 1e38).abs() / 1e38 < 0.01);
    }

    #[test]
    fn quantization_error_bounded_by_half_ulp() {
        let f = FloatFormat::FP16;
        for i in 1..2000 {
            let x = i as f64 * 0.01 - 10.0;
            if x == 0.0 {
                continue;
            }
            let err = (f.quantize(x) - x).abs();
            assert!(
                err <= f.ulp_at(x) / 2.0 + 1e-18,
                "x = {x}: err {err} > ulp/2 {}",
                f.ulp_at(x) / 2.0
            );
        }
    }

    #[test]
    fn ulp_at_one_is_two_pow_neg_man_bits() {
        assert_eq!(FloatFormat::FP16.ulp_at(1.0), 2f64.powi(-10));
        assert_eq!(FloatFormat::FP8.ulp_at(1.0), 0.125);
        assert_eq!(FloatFormat::FP32.ulp_at(1.0), 2f64.powi(-23));
    }

    #[test]
    #[should_panic(expected = "wider than")]
    fn decode_rejects_wide_patterns() {
        FloatFormat::FP8.decode(0x100);
    }

    #[test]
    fn quantize_is_idempotent() {
        for f in [FloatFormat::FP8, FloatFormat::FP16, FloatFormat::BF16] {
            for i in -100..100 {
                let x = i as f64 * 0.173;
                let once = f.quantize(x);
                assert_eq!(f.quantize(once), once, "{f:?} at {x}");
            }
        }
    }
}
