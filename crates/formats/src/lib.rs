//! # flexsfu-formats
//!
//! Number-format substrate for the Flex-SFU hardware model.
//!
//! The paper's accelerator supports **8-, 16- and 32-bit fixed-point and
//! floating-point** inputs (Section III). This crate implements, from
//! scratch (bit-level, no `half`/`fixed` dependencies):
//!
//! * [`FixedFormat`] — runtime-parameterized two's-complement Q formats with
//!   round-to-nearest-even and saturation,
//! * [`FloatFormat`] — a generic IEEE-754-style minifloat codec covering
//!   FP8 (E4M3), FP16 (E5M10), BF16 (E8M7) and FP32 (E8M23), including
//!   subnormals and round-to-nearest-even,
//! * [`DataFormat`] — the tagged union the datapath is generic over,
//! * [`cmp`] — the *monotone integer comparison key* trick used by the
//!   ADU's SIMD comparator: floats and fixed-point codes are mapped to
//!   unsigned keys whose integer order equals the numeric order, which is
//!   how a single hardware comparator serves every supported format,
//! * [`pack`] — SIMD lane packing of 8/16/32-bit elements into the 32-bit
//!   memory words used by the ADU/LTC single-port memories,
//! * [`ulp`] — unit-in-the-last-place helpers, including the paper's
//!   "1 Float16 ULP at base 1" threshold lines of Figure 5.
//!
//! # Examples
//!
//! ```
//! use flexsfu_formats::{DataFormat, FloatFormat};
//!
//! let f16 = DataFormat::Float(FloatFormat::FP16);
//! // Quantizing through the format: encode then decode.
//! let q = f16.quantize(0.1);
//! assert!((q - 0.1).abs() < 1e-4);
//! ```

pub mod cmp;
pub mod pack;
pub mod ulp;

mod fixed;
mod format;
mod minifloat;

pub use fixed::FixedFormat;
pub use format::{DataFormat, ElemSize};
pub use minifloat::FloatFormat;
