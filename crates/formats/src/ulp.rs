//! Unit-in-the-last-place thresholds.
//!
//! Figure 5 of the paper draws two horizontal reference lines: the MAE and
//! MSE corresponding to "1 Float16 ULP, defined as the single-bit error at
//! a base of 1". A half-precision number at magnitude 1 has a mantissa
//! quantum of `2^-10`; an approximation whose maximum absolute error stays
//! below that is indistinguishable from FP16 rounding at base 1, and an
//! approximation whose *mean squared* error stays below `(2^-10)²` has an
//! RMS error below one such ULP.

use crate::minifloat::FloatFormat;

/// One Float16 ULP at base 1: `2^-10 ≈ 9.77e-4`.
///
/// # Examples
///
/// ```
/// assert_eq!(flexsfu_formats::ulp::F16_ULP_AT_1, 2f64.powi(-10));
/// ```
pub const F16_ULP_AT_1: f64 = 0.0009765625;

/// The Figure 5 MAE reference line: one Float16 ULP at base 1.
pub fn f16_one_ulp_mae() -> f64 {
    F16_ULP_AT_1
}

/// The Figure 5 MSE reference line: the square of one Float16 ULP at base 1
/// (an MSE below this means the RMS error is below one ULP).
pub fn f16_one_ulp_mse() -> f64 {
    F16_ULP_AT_1 * F16_ULP_AT_1
}

/// Measures the error of `approx` relative to `exact` in ULPs of the given
/// format at the exact value's magnitude.
///
/// # Examples
///
/// ```
/// use flexsfu_formats::{ulp, FloatFormat};
/// // Half an ULP of error at base 1:
/// let e = ulp::error_in_ulps(1.0 + 2f64.powi(-11), 1.0, FloatFormat::FP16);
/// assert!((e - 0.5).abs() < 1e-12);
/// ```
pub fn error_in_ulps(approx: f64, exact: f64, format: FloatFormat) -> f64 {
    (approx - exact).abs() / format.ulp_at(exact)
}

/// Measures the error of `approx` relative to `exact` in ULPs of the
/// format **at a fixed reference magnitude** — the unit the paper's
/// Figure 5 threshold lines use ("1 Float16 ULP at base 1").
///
/// Relative-to-exact ULP counts ([`error_in_ulps`]) explode when the
/// exact value sits near zero (an asymptote's tail), even though the
/// absolute error is tiny and irrelevant; error budgets for quantized
/// datapaths are therefore declared at a base magnitude instead.
///
/// # Examples
///
/// ```
/// use flexsfu_formats::{ulp, FloatFormat};
/// // One FP16 ULP-at-1 of absolute error counts as 1.0 regardless of
/// // where the exact value lies.
/// let e = ulp::error_in_ulps_at(1e-6 + ulp::F16_ULP_AT_1, 1e-6, FloatFormat::FP16, 1.0);
/// assert!((e - 1.0).abs() < 1e-9);
/// ```
pub fn error_in_ulps_at(approx: f64, exact: f64, format: FloatFormat, base: f64) -> f64 {
    (approx - exact).abs() / format.ulp_at(base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_ulp_constant_matches_format() {
        assert_eq!(F16_ULP_AT_1, FloatFormat::FP16.ulp_at(1.0));
        assert_eq!(f16_one_ulp_mae(), F16_ULP_AT_1);
        assert_eq!(f16_one_ulp_mse(), F16_ULP_AT_1.powi(2));
    }

    #[test]
    fn mse_line_is_below_mae_line() {
        // With ULP < 1 the squared threshold is the stricter one, matching
        // the relative position of the two lines in Figure 5.
        assert!(f16_one_ulp_mse() < f16_one_ulp_mae());
    }

    #[test]
    fn error_in_ulps_scales_with_binade() {
        let f = FloatFormat::FP16;
        // Same absolute error is more ULPs at smaller magnitudes.
        let e_small = error_in_ulps(0.25 + 1e-4, 0.25, f);
        let e_large = error_in_ulps(4.0 + 1e-4, 4.0, f);
        assert!(e_small > e_large);
    }

    #[test]
    fn ulps_at_base_ignore_the_exact_magnitude() {
        let f = FloatFormat::FP16;
        let err = 3.0 * F16_ULP_AT_1;
        for exact in [0.0, 1e-9, 0.5, 4.0] {
            let e = error_in_ulps_at(exact + err, exact, f, 1.0);
            assert!((e - 3.0).abs() < 1e-9, "exact {exact}: {e}");
        }
    }

    #[test]
    fn fp16_quantization_is_at_most_half_ulp() {
        let f = FloatFormat::FP16;
        for i in 1..500 {
            let x = i as f64 * 0.013;
            let q = f.quantize(x);
            assert!(error_in_ulps(q, x, f) <= 0.5 + 1e-9, "x = {x}");
        }
    }
}
