//! Monotone integer comparison keys.
//!
//! The ADU contains a *single* SIMD comparator circuit that must order both
//! two's-complement fixed-point codes and sign-magnitude floating-point
//! patterns (paper, Section III: "a SIMD comparator supporting both
//! fixed-point and floating-point number formats"). Hardware does this by
//! remapping each pattern to an unsigned key whose integer order equals the
//! numeric order:
//!
//! * **fixed point** (two's complement): flip the sign bit
//!   (`key = code XOR 0x80…0`), the classic bias trick;
//! * **floating point** (sign-magnitude): if the sign bit is set, invert
//!   all bits; otherwise set the sign bit. Positive floats then sort by
//!   magnitude and negatives sort reversed, exactly as required.
//!
//! Both transforms are pure bit manipulation — one XOR-with-mask layer in
//! front of an unsigned comparator.

/// Width mask for `bits`-wide patterns stored in a `u32`.
fn mask(bits: u8) -> u32 {
    if bits == 32 {
        u32::MAX
    } else {
        (1u32 << bits) - 1
    }
}

/// Monotone key for a `bits`-wide two's-complement code.
///
/// # Examples
///
/// ```
/// use flexsfu_formats::cmp::fixed_key;
/// // -1 (0xFF) must sort below 0 (0x00) and 1 (0x01):
/// assert!(fixed_key(0xFF, 8) < fixed_key(0x00, 8));
/// assert!(fixed_key(0x00, 8) < fixed_key(0x01, 8));
/// ```
pub fn fixed_key(pattern: u32, bits: u8) -> u32 {
    debug_assert!(pattern <= mask(bits));
    pattern ^ (1u32 << (bits - 1))
}

/// Monotone key for a `bits`-wide IEEE-style (sign-magnitude) float pattern.
///
/// NaN patterns are not ordered by this key; the hardware never stores NaN
/// breakpoints (the loader rejects them), so the comparator only ever sees
/// ordered values.
///
/// # Examples
///
/// ```
/// use flexsfu_formats::cmp::float_key;
/// // f32 bit patterns: -1.0 < -0.5 < 0.0 < 0.5 < 1.0
/// let patterns = [
///     (-1.0f32).to_bits(), (-0.5f32).to_bits(), 0.0f32.to_bits(),
///     0.5f32.to_bits(), 1.0f32.to_bits(),
/// ];
/// let keys: Vec<u32> = patterns.iter().map(|&p| float_key(p, 32)).collect();
/// assert!(keys.windows(2).all(|w| w[0] < w[1]));
/// ```
pub fn float_key(pattern: u32, bits: u8) -> u32 {
    debug_assert!(pattern <= mask(bits));
    let sign = 1u32 << (bits - 1);
    if pattern & sign != 0 {
        // Negative: invert everything so larger magnitudes sort lower.
        !pattern & mask(bits)
    } else {
        // Positive: bias above all negatives.
        pattern | sign
    }
}

/// Compares two same-format patterns via their keys, returning `true` when
/// `a` decodes to a value strictly greater than `b` — the `cmpo` signal of
/// the paper's Figure 3.
pub fn cmp_greater(a_key: u32, b_key: u32) -> bool {
    a_key > b_key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::FixedFormat;
    use crate::minifloat::FloatFormat;
    use proptest::prelude::*;

    #[test]
    fn fixed_key_orders_all_i8_codes() {
        let f = FixedFormat::new(8, 4);
        let mut pairs: Vec<(f64, u32)> = (-128..=127i64)
            .map(|c| (f.decode(c), fixed_key(f.code_to_bits(c), 8)))
            .collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in pairs.windows(2) {
            assert!(
                w[0].1 < w[1].1,
                "key order broken at {} vs {}",
                w[0].0,
                w[1].0
            );
        }
    }

    #[test]
    fn float_key_orders_all_finite_fp16_patterns() {
        let f = FloatFormat::FP16;
        let mut vals: Vec<(f64, u32)> = (0u32..=0xFFFF)
            .filter_map(|p| {
                let v = f.decode(p);
                if v.is_finite() {
                    Some((v, float_key(p, 16)))
                } else {
                    None
                }
            })
            .collect();
        vals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in vals.windows(2) {
            if w[0].0 == w[1].0 {
                continue; // ±0 decode equal; keys differ but order is fine
            }
            assert!(
                w[0].1 < w[1].1,
                "float key order broken between {} and {}",
                w[0].0,
                w[1].0
            );
        }
    }

    #[test]
    fn zero_handling() {
        // +0.0 and -0.0 are numerically equal; the keys differ by exactly 1,
        // with -0.0 just below +0.0, preserving weak ordering.
        let pos = float_key(0x0000, 16);
        let neg = float_key(0x8000, 16);
        assert_eq!(pos, neg + 1);
    }

    proptest! {
        #[test]
        fn prop_f32_keys_match_f64_order(a in -1e30f32..1e30, b in -1e30f32..1e30) {
            let ka = float_key(a.to_bits(), 32);
            let kb = float_key(b.to_bits(), 32);
            if a < b {
                prop_assert!(ka < kb);
            } else if a > b {
                prop_assert!(ka > kb);
            }
        }

        #[test]
        fn prop_fixed_keys_match_value_order(a in -32768i64..=32767, b in -32768i64..=32767) {
            let f = FixedFormat::new(16, 7);
            let ka = fixed_key(f.code_to_bits(a), 16);
            let kb = fixed_key(f.code_to_bits(b), 16);
            prop_assert_eq!(a.cmp(&b), ka.cmp(&kb));
        }

        #[test]
        fn prop_cmp_greater_matches_decoded_comparison(x in -100.0f64..100.0, y in -100.0f64..100.0) {
            let f = FloatFormat::FP16;
            let (px, py) = (f.encode(x), f.encode(y));
            let (vx, vy) = (f.decode(px), f.decode(py));
            let g = cmp_greater(float_key(px, 16), float_key(py, 16));
            if vx != vy {
                prop_assert_eq!(g, vx > vy);
            }
        }
    }
}
