//! Telemetry over the wire: a TCP [`TelemetrySink`] and the collector
//! it ships to.
//!
//! The push pipeline reuses the serving protocol's own machinery
//! instead of inventing a second one: a [`WireSink`] carries each
//! [`TelemetryBatch`] as the blob of a [`Frame::Stats`] frame (the
//! same frame a scrape answer uses, flowing the other way) and waits
//! for the collector's [`Frame::Ack`] — delivery is confirmed, not
//! fire-and-forget, so the exporter's retry/backoff accounting is
//! truthful. The [`TelemetryCollector`] is a tiny TCP listener that
//! decodes batches, keeps the **latest** cumulative snapshot per
//! origin (counters are cumulative; summing overlapping batches would
//! double-count), **appends** spans (batches partition the span
//! stream), and can merge everything into one origin-labelled
//! [`MetricsSnapshot`] or feed a [`TraceAssembler`] for cross-process
//! waterfalls.
//!
//! Failure semantics match the exporter's contract: a dead or slow
//! collector surfaces as a [`SinkError`] (the sink reconnects lazily
//! on the next ship), the exporter buffers and eventually drops with
//! counted loss, and the serving hot path never notices any of it.

use crate::frame::{ErrorCode, Frame, FrameReader};
use flexsfu_obs::{
    MetricsSnapshot, SinkError, Span, TelemetryBatch, TelemetrySink, TraceAssembler,
};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A [`TelemetrySink`] that ships batches to a [`TelemetryCollector`]
/// over TCP, one `Stats` frame per batch, acknowledged per batch.
///
/// The connection is opened lazily on the first ship and re-opened
/// after any failure — a restarting collector needs no coordination,
/// the next ship simply reconnects (or fails and lets the exporter
/// buffer).
pub struct WireSink {
    addr: SocketAddr,
    timeout: Duration,
    conn: Option<SinkConn>,
}

struct SinkConn {
    stream: TcpStream,
    frames: FrameReader,
}

impl WireSink {
    /// A sink for the collector at `addr` with a 1-second per-ship
    /// timeout.
    pub fn new(addr: SocketAddr) -> Self {
        Self::with_timeout(addr, Duration::from_secs(1))
    }

    /// A sink with an explicit bound on connect + ack latency per
    /// ship. Keep it well under the exporter's tick interval times its
    /// buffer — a wedged collector should fail fast into the bounded
    /// buffer, not stall the export schedule.
    pub fn with_timeout(addr: SocketAddr, timeout: Duration) -> Self {
        Self {
            addr,
            timeout,
            conn: None,
        }
    }

    fn conn(&mut self) -> Result<&mut SinkConn, SinkError> {
        if self.conn.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.timeout)
                .map_err(|e| SinkError(format!("connect {}: {e}", self.addr)))?;
            stream
                .set_nodelay(true)
                .map_err(|e| SinkError(format!("nodelay: {e}")))?;
            stream
                .set_read_timeout(Some(self.timeout))
                .map_err(|e| SinkError(format!("read timeout: {e}")))?;
            self.conn = Some(SinkConn {
                stream,
                frames: FrameReader::new(),
            });
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    fn ship_inner(&mut self, batch: &TelemetryBatch) -> Result<(), SinkError> {
        let nonce = batch.seq;
        let frame = Frame::Stats {
            nonce,
            snapshot: batch.encode(),
        };
        let deadline = Instant::now() + self.timeout;
        let conn = self.conn()?;
        conn.stream
            .write_all(&frame.encode())
            .map_err(|e| SinkError(format!("write: {e}")))?;
        // Await the matching ack; anything else from the collector is a
        // refusal.
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(reply) = conn
                .frames
                .next_frame()
                .map_err(|e| SinkError(format!("collector sent garbage: {e}")))?
            {
                return match reply {
                    Frame::Ack { req } if req == nonce => Ok(()),
                    Frame::Ack { req } => {
                        // A stale ack from a batch whose wait we abandoned;
                        // keep reading for ours.
                        let _ = req;
                        continue;
                    }
                    other => Err(SinkError(format!("collector refused batch: {other:?}"))),
                };
            }
            if Instant::now() >= deadline {
                return Err(SinkError("ack timeout".into()));
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => return Err(SinkError("collector closed connection".into())),
                Ok(n) => conn.frames.feed(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(SinkError("ack timeout".into()));
                }
                Err(e) => return Err(SinkError(format!("read: {e}"))),
            }
        }
    }
}

impl TelemetrySink for WireSink {
    fn ship(&mut self, batch: &TelemetryBatch) -> Result<(), SinkError> {
        let res = self.ship_inner(batch);
        if res.is_err() {
            // The stream may hold a half-written frame or a stale ack;
            // nothing on it is trustworthy. Reconnect on the next ship.
            self.conn = None;
        }
        res
    }
}

/// Per-origin accumulation: the latest cumulative snapshot (guarded by
/// batch sequence, so a reordered stale batch cannot roll telemetry
/// backwards) and every span received.
#[derive(Default)]
struct CollectorState {
    snapshots: HashMap<String, (u64, MetricsSnapshot)>,
    spans: HashMap<String, Vec<Span>>,
    batches: u64,
}

struct CollectorShared {
    stop: AtomicBool,
    poll_interval: Duration,
    state: Mutex<CollectorState>,
}

/// The receiving end of the push pipeline: accepts [`WireSink`]
/// connections, acks each decoded [`TelemetryBatch`], and merges
/// per-origin telemetry. Dropping the collector shuts it down; a
/// killed collector is exactly the failure the exporter's bounded
/// buffer absorbs.
pub struct TelemetryCollector {
    shared: Arc<CollectorShared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl TelemetryCollector {
    /// Binds `addr` (port 0 for ephemeral) and starts collecting.
    ///
    /// # Errors
    ///
    /// The bind error, if the address is unavailable.
    pub fn start(addr: SocketAddr) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(CollectorShared {
            stop: AtomicBool::new(false),
            poll_interval: Duration::from_millis(20),
            state: Mutex::new(CollectorState::default()),
        });
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let conn_threads = Arc::clone(&conn_threads);
            std::thread::Builder::new()
                .name("flexsfu-collector".into())
                .spawn(move || accept_loop(&listener, &shared, &conn_threads))
                .expect("spawn collector accept thread")
        };
        Ok(Self {
            shared,
            addr,
            accept: Some(accept),
            conn_threads,
        })
    }

    /// [`Self::start`] on `127.0.0.1:0`.
    ///
    /// # Errors
    ///
    /// As [`Self::start`].
    pub fn start_local() -> std::io::Result<Self> {
        Self::start(([127, 0, 0, 1], 0).into())
    }

    /// The bound address (hand this to [`WireSink::new`]).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Batches successfully decoded and acked so far.
    pub fn batches_received(&self) -> u64 {
        self.shared.state.lock().unwrap().batches
    }

    /// Origins that have shipped at least one batch, sorted.
    pub fn origins(&self) -> Vec<String> {
        let st = self.shared.state.lock().unwrap();
        let mut o: Vec<String> = st.snapshots.keys().cloned().collect();
        o.sort();
        o
    }

    /// The latest cumulative snapshot shipped by `origin`, if any.
    pub fn snapshot_for(&self, origin: &str) -> Option<MetricsSnapshot> {
        let st = self.shared.state.lock().unwrap();
        st.snapshots.get(origin).map(|(_, s)| s.clone())
    }

    /// Every span `origin` has shipped, in ship order.
    pub fn spans_for(&self, origin: &str) -> Vec<Span> {
        let st = self.shared.state.lock().unwrap();
        st.spans.get(origin).cloned().unwrap_or_default()
    }

    /// One fleet-wide snapshot: each origin's latest snapshot tagged
    /// `origin="…"` and merged — the collector-side equivalent of the
    /// shard router's `scrape_all`.
    pub fn merged(&self) -> MetricsSnapshot {
        let st = self.shared.state.lock().unwrap();
        let mut keys: Vec<&String> = st.snapshots.keys().collect();
        keys.sort();
        let mut out = MetricsSnapshot::new();
        for k in keys {
            out.merge(&st.snapshots[k].1.clone().with_label("origin", k));
        }
        out
    }

    /// A [`TraceAssembler`] over every origin's shipped spans — the
    /// collector-side path to cross-process waterfalls.
    pub fn assembler(&self) -> TraceAssembler {
        let st = self.shared.state.lock().unwrap();
        let mut keys: Vec<&String> = st.spans.keys().collect();
        keys.sort();
        let mut asm = TraceAssembler::new();
        for k in keys {
            asm.add_origin(k.clone(), st.spans[k].clone());
        }
        asm
    }

    /// Stops accepting, closes connections, joins threads. Equivalent
    /// to drop, but explicit.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept.take() {
            t.join().expect("collector accept thread panicked");
        }
        let threads: Vec<_> = self.conn_threads.lock().unwrap().drain(..).collect();
        for t in threads {
            t.join().expect("collector connection thread panicked");
        }
    }
}

impl Drop for TelemetryCollector {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<CollectorShared>,
    conn_threads: &Mutex<Vec<JoinHandle<()>>>,
) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                let t = std::thread::Builder::new()
                    .name("flexsfu-collector-conn".into())
                    .spawn(move || connection_loop(stream, &shared))
                    .expect("spawn collector connection thread");
                conn_threads.lock().unwrap().push(t);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// One exporter connection: `Stats` frames in, acks out. Torn frames
/// and garbage close the connection with a typed protocol error —
/// exactly the serving front-end's discipline.
fn connection_loop(mut stream: TcpStream, shared: &CollectorShared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.poll_interval));
    let mut reader = FrameReader::new();
    let mut chunk = [0u8; 64 * 1024];
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => reader.feed(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
        loop {
            match reader.next_frame() {
                Ok(Some(Frame::Stats { nonce, snapshot })) => {
                    match TelemetryBatch::decode(&snapshot) {
                        Ok(batch) => {
                            apply(&mut shared.state.lock().unwrap(), batch);
                            if stream
                                .write_all(&Frame::Ack { req: nonce }.encode())
                                .is_err()
                            {
                                return;
                            }
                        }
                        Err(_) => {
                            // A well-framed Stats whose blob is not a
                            // batch: refuse it but keep the connection —
                            // the framing is intact, later batches may
                            // be fine.
                            let refuse = Frame::Error {
                                req: nonce,
                                code: ErrorCode::Protocol,
                                detail: 0,
                            };
                            if stream.write_all(&refuse.encode()).is_err() {
                                return;
                            }
                        }
                    }
                }
                Ok(Some(_)) => {
                    // Only Stats frames belong on a telemetry connection.
                    let _ = stream.write_all(
                        &Frame::Error {
                            req: 0,
                            code: ErrorCode::Protocol,
                            detail: 0,
                        }
                        .encode(),
                    );
                    return;
                }
                Ok(None) => break,
                Err(_) => {
                    let _ = stream.write_all(
                        &Frame::Error {
                            req: 0,
                            code: ErrorCode::Protocol,
                            detail: 0,
                        }
                        .encode(),
                    );
                    return;
                }
            }
        }
    }
}

/// Folds one decoded batch into the collector state: snapshots
/// last-write-wins per origin by sequence, spans append.
fn apply(state: &mut CollectorState, batch: TelemetryBatch) {
    state.batches += 1;
    state
        .spans
        .entry(batch.origin.clone())
        .or_default()
        .extend(batch.spans);
    match state.snapshots.get(&batch.origin) {
        Some((seq, _)) if *seq > batch.seq => {} // stale reorder: keep newer
        _ => {
            state
                .snapshots
                .insert(batch.origin, (batch.seq, batch.snapshot));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfu_obs::{
        Clock, ExporterConfig, ManualClock, MetricsRegistry, SampleRate, SpanRecorder, Stage,
        TelemetryExporter, M_EXPORTER_DROPPED,
    };
    use std::net::Shutdown;

    fn batch(origin: &str, seq: u64, counter: u64) -> TelemetryBatch {
        let m = MetricsRegistry::new();
        m.counter("flexsfu_submits_total").add(counter);
        TelemetryBatch {
            origin: origin.into(),
            seq,
            snapshot: m.snapshot(),
            spans: Vec::new(),
        }
    }

    #[test]
    fn sink_ships_and_collector_keeps_latest_per_origin() {
        let collector = TelemetryCollector::start_local().unwrap();
        let mut sink = WireSink::new(collector.local_addr());
        sink.ship(&batch("a", 0, 1)).unwrap();
        sink.ship(&batch("a", 1, 5)).unwrap();
        sink.ship(&batch("b", 0, 7)).unwrap();
        assert_eq!(collector.batches_received(), 3);
        assert_eq!(collector.origins(), ["a", "b"]);
        // Latest per origin, not a sum of overlapping cumulative batches.
        assert_eq!(
            collector
                .snapshot_for("a")
                .unwrap()
                .counter("flexsfu_submits_total"),
            Some(5)
        );
        let merged = collector.merged();
        assert_eq!(
            merged.counter(&flexsfu_obs::labeled(
                "flexsfu_submits_total",
                &[("origin", "a")]
            )),
            Some(5)
        );
        assert_eq!(
            merged.counter(&flexsfu_obs::labeled(
                "flexsfu_submits_total",
                &[("origin", "b")]
            )),
            Some(7)
        );
        collector.shutdown();
    }

    #[test]
    fn collector_appends_spans_and_feeds_the_assembler() {
        let collector = TelemetryCollector::start_local().unwrap();
        let clock = Arc::new(ManualClock::new());
        let rec = SpanRecorder::new(8, SampleRate::ALL, clock.clone() as Arc<dyn Clock>);
        clock.set(10);
        let s = rec.adopt(0, 42);
        rec.stamp(&s, Stage::Submit);
        let mut sink = WireSink::new(collector.local_addr());
        sink.ship(&TelemetryBatch {
            origin: "shard0".into(),
            seq: 0,
            snapshot: MetricsSnapshot::new(),
            spans: rec.dump(),
        })
        .unwrap();
        assert_eq!(collector.spans_for("shard0").len(), 1);
        let traces = collector.assembler().assemble();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].trace_id, 42);
        collector.shutdown();
    }

    #[test]
    fn dead_collector_fails_ships_into_counted_drops_then_recovers() {
        let collector = TelemetryCollector::start_local().unwrap();
        let addr = collector.local_addr();
        let metrics = Arc::new(MetricsRegistry::new());
        let sink = WireSink::with_timeout(addr, Duration::from_millis(200));
        let mut exporter = TelemetryExporter::new("exp", Arc::clone(&metrics), Box::new(sink))
            .with_config(ExporterConfig {
                buffer: 2,
                max_backoff_ticks: 1,
                ..ExporterConfig::default()
            });
        assert_eq!(exporter.tick().shipped, 1);

        // Kill the collector: ships fail, the bounded buffer fills and
        // drops with every loss counted — and ticking never blocks
        // longer than the sink timeout.
        collector.shutdown();
        let mut dropped = 0;
        for _ in 0..6 {
            dropped += exporter.tick().dropped;
        }
        assert!(dropped > 0, "bounded buffer never dropped");
        assert_eq!(
            metrics.snapshot().counter(M_EXPORTER_DROPPED),
            Some(dropped as u64)
        );

        // A new collector on a fresh port: the sink reconnects lazily
        // and the buffered tail ships.
        let revived = TelemetryCollector::start_local().unwrap();
        let sink = WireSink::with_timeout(revived.local_addr(), Duration::from_millis(500));
        let mut exporter = TelemetryExporter::new("exp", metrics, Box::new(sink));
        let mut shipped = 0;
        for _ in 0..4 {
            shipped += exporter.tick().shipped;
        }
        assert!(shipped > 0, "sink never recovered");
        revived.shutdown();
    }

    #[test]
    fn torn_and_garbage_telemetry_connections_do_not_wedge_the_collector() {
        let collector = TelemetryCollector::start_local().unwrap();
        let addr = collector.local_addr();

        // Torn: a header promising more than ever arrives.
        let full = Frame::Stats {
            nonce: 1,
            snapshot: batch("x", 0, 1).encode(),
        }
        .encode();
        let mut torn = TcpStream::connect(addr).unwrap();
        torn.write_all(&full[..full.len() / 2]).unwrap();
        let _ = torn.shutdown(Shutdown::Write);
        drop(torn);

        // Garbage framing: closes with a protocol error, no panic.
        let mut garbage = TcpStream::connect(addr).unwrap();
        garbage.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let mut reply = Vec::new();
        let _ = garbage.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = garbage.read_to_end(&mut reply);
        drop(garbage);

        // A well-framed Stats whose blob is not a batch: refused with a
        // typed error, connection stays usable.
        let mut sink = WireSink::new(addr);
        let res = sink.ship(&batch("y", 0, 1));
        assert!(res.is_ok());
        // Nothing from the bad connections landed.
        assert_eq!(collector.origins(), ["y"]);
        collector.shutdown();
    }

    #[test]
    fn stale_reordered_batch_cannot_roll_an_origin_backwards() {
        let collector = TelemetryCollector::start_local().unwrap();
        let mut sink = WireSink::new(collector.local_addr());
        sink.ship(&batch("a", 5, 50)).unwrap();
        sink.ship(&batch("a", 3, 30)).unwrap(); // late duplicate path
        assert_eq!(
            collector
                .snapshot_for("a")
                .unwrap()
                .counter("flexsfu_submits_total"),
            Some(50)
        );
        assert_eq!(collector.batches_received(), 2);
        collector.shutdown();
    }
}
