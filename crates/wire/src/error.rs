//! The wire tier's error type — every protocol-level failure a client
//! (or the shard router) can observe, as a typed value.

use crate::frame::{ErrorCode, FrameError};
use std::time::Duration;

/// Everything that can go wrong between submitting a job over the wire
/// and receiving its result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// A socket operation failed (connect, read, write). Carries the
    /// [`std::io::ErrorKind`] — the error itself is not `Clone`, and
    /// retry decisions only need the kind.
    Io(std::io::ErrorKind),
    /// The peer sent bytes that do not decode as a frame.
    Protocol(FrameError),
    /// The *peer* reported that bytes we sent did not decode
    /// ([`ErrorCode::Protocol`]); it closes the connection after this.
    RemoteProtocol,
    /// The server does not know the submitted function id.
    UnknownFunction(u32),
    /// The function's backend has no lane for the submitted precision.
    PrecisionUnsupported(u32),
    /// Admission bounced: the server's queue is full. Retry after the
    /// hint — the protocol's backpressure signal, surfaced instead of
    /// blocking the connection.
    RetryAfter {
        /// Server-suggested backoff before resubmitting.
        hint: Duration,
    },
    /// The server is draining; submit to another shard.
    Draining,
    /// The serving back-end is shutting down.
    ShuttingDown,
    /// The job was accepted but the server's evaluation side failed to
    /// answer it (a dropped reply channel). Safe to retry.
    ServerInternal,
    /// The connection closed (or was already closed) before this
    /// request was answered.
    ConnectionClosed,
    /// A bounded wait ([`crate::WireTicket::wait_timeout`], health
    /// pings) elapsed before the answer arrived.
    Timeout,
    /// The server answered with a payload of the wrong shape for the
    /// request (e.g. an f32 result for an f64 submit) — a server bug
    /// surfaced as a typed error rather than a silent cast.
    UnexpectedPayload,
    /// A [`crate::Frame::Stats`] blob did not decode as a metrics
    /// snapshot (version skew or corruption) — the frame layer was
    /// fine, the snapshot inside it was not.
    BadSnapshot,
}

impl WireError {
    /// Maps a server [`ErrorCode`] (+ detail field) onto the typed
    /// error a caller matches on.
    pub(crate) fn from_code(code: ErrorCode, detail: u32) -> Self {
        match code {
            ErrorCode::UnknownFunction => Self::UnknownFunction(detail),
            ErrorCode::PrecisionUnsupported => Self::PrecisionUnsupported(detail),
            ErrorCode::RetryAfter => Self::RetryAfter {
                hint: Duration::from_micros(u64::from(detail)),
            },
            ErrorCode::Draining => Self::Draining,
            ErrorCode::ShuttingDown => Self::ShuttingDown,
            ErrorCode::Internal => Self::ServerInternal,
            ErrorCode::Protocol => Self::RemoteProtocol,
        }
    }

    /// Whether resubmitting the same job (possibly elsewhere) can
    /// succeed — the shard router's failover predicate. Rejections that
    /// would repeat on any shard (unknown function, wrong precision,
    /// malformed frames) are not retryable.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Self::RetryAfter { .. }
                | Self::Draining
                | Self::ShuttingDown
                | Self::ServerInternal
                | Self::ConnectionClosed
                | Self::Io(_)
                | Self::Timeout
        )
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(kind) => write!(f, "socket error: {kind}"),
            Self::Protocol(e) => write!(f, "protocol error: {e}"),
            Self::RemoteProtocol => write!(f, "peer rejected our framing as malformed"),
            Self::UnknownFunction(id) => write!(f, "function {id} is not registered"),
            Self::PrecisionUnsupported(id) => {
                write!(f, "function {id}'s backend lacks the submitted precision")
            }
            Self::RetryAfter { hint } => {
                write!(f, "queue full; retry after {hint:?}")
            }
            Self::Draining => write!(f, "server is draining"),
            Self::ShuttingDown => write!(f, "server is shutting down"),
            Self::ServerInternal => write!(f, "server failed to answer an accepted job"),
            Self::ConnectionClosed => write!(f, "connection closed before the answer"),
            Self::Timeout => write!(f, "timed out waiting for the answer"),
            Self::UnexpectedPayload => write!(f, "server answered with a mismatched payload"),
            Self::BadSnapshot => write!(f, "server's stats snapshot did not decode"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.kind())
    }
}

impl From<FrameError> for WireError {
    fn from(e: FrameError) -> Self {
        Self::Protocol(e)
    }
}
