//! Wire-tier observability: the metric names this crate emits and the
//! pre-resolved handle bundle its connection threads record through.
//!
//! A server started with [`crate::WireServer::start_with_obs`] counts
//! every frame and byte in both directions, classifies protocol errors
//! by code, and times the ack→answer window per accepted job. It also
//! reads back two serving-tier series ([`flexsfu_serve::obs`]) to fill
//! the telemetry tail of [`crate::Frame::Pong`], and serves the whole
//! registry as a [`crate::Frame::Stats`] snapshot — which is why the
//! wire server takes the *same* [`flexsfu_serve::ServeObs`] bundle as
//! the serving engine behind it.

use crate::frame::{ErrorCode, Frame};
use flexsfu_obs::{labeled, Counter, LogHistogram, MetricsRegistry, SpanRecorder};
use flexsfu_serve::ServeObs;
use std::sync::Arc;

/// Frames decoded off client connections (counter).
pub const M_FRAMES_IN: &str = "flexsfu_wire_frames_in_total";
/// Frames written back to clients (counter).
pub const M_FRAMES_OUT: &str = "flexsfu_wire_frames_out_total";
/// Raw bytes read off client connections (counter).
pub const M_BYTES_IN: &str = "flexsfu_wire_bytes_in_total";
/// Raw bytes written back to clients (counter).
pub const M_BYTES_OUT: &str = "flexsfu_wire_bytes_out_total";
/// Error frames sent, labelled `code="retry_after"|"draining"|…` (counter).
pub const M_ERRORS: &str = "flexsfu_wire_errors_total";
/// Ack write → answer write latency per accepted job (histogram, ns).
pub const M_ACK_TO_RESULT_NS: &str = "flexsfu_wire_ack_to_result_ns";

/// The label value for an [`ErrorCode`] on [`M_ERRORS`].
fn code_label(code: ErrorCode) -> &'static str {
    match code {
        ErrorCode::UnknownFunction => "unknown_function",
        ErrorCode::PrecisionUnsupported => "precision_unsupported",
        ErrorCode::RetryAfter => "retry_after",
        ErrorCode::Draining => "draining",
        ErrorCode::ShuttingDown => "shutting_down",
        ErrorCode::Internal => "internal",
        ErrorCode::Protocol => "protocol",
    }
}

const ERROR_CODES: [ErrorCode; 7] = [
    ErrorCode::UnknownFunction,
    ErrorCode::PrecisionUnsupported,
    ErrorCode::RetryAfter,
    ErrorCode::Draining,
    ErrorCode::ShuttingDown,
    ErrorCode::Internal,
    ErrorCode::Protocol,
];

/// Every handle the wire server's hot paths record through, resolved
/// once at start-up — recording is lock- and allocation-free.
pub(crate) struct WireObsState {
    pub(crate) spans: Arc<SpanRecorder>,
    pub(crate) frames_in: Arc<Counter>,
    pub(crate) frames_out: Arc<Counter>,
    pub(crate) bytes_in: Arc<Counter>,
    pub(crate) bytes_out: Arc<Counter>,
    /// Indexed by `ErrorCode as u8 - 1`.
    errors: [Arc<Counter>; 7],
    pub(crate) ack_to_result_ns: Arc<LogHistogram>,
    /// Serving-tier read-backs for the pong telemetry tail.
    pub(crate) flush_units: Arc<Counter>,
    pub(crate) eval_ns: Arc<LogHistogram>,
    pub(crate) metrics: Arc<MetricsRegistry>,
}

impl WireObsState {
    pub(crate) fn new(obs: &ServeObs) -> Self {
        let m = &obs.metrics;
        Self {
            spans: Arc::clone(&obs.spans),
            frames_in: m.counter(M_FRAMES_IN),
            frames_out: m.counter(M_FRAMES_OUT),
            bytes_in: m.counter(M_BYTES_IN),
            bytes_out: m.counter(M_BYTES_OUT),
            errors: ERROR_CODES
                .map(|code| m.counter(&labeled(M_ERRORS, &[("code", code_label(code))]))),
            ack_to_result_ns: m.histogram(M_ACK_TO_RESULT_NS),
            flush_units: m.counter(flexsfu_serve::obs::M_FLUSH_UNITS),
            eval_ns: m.histogram(flexsfu_serve::obs::M_EVAL_NS),
            metrics: Arc::clone(m),
        }
    }

    /// One clock read, off the span recorder's clock — so wire stamps
    /// and serve stamps share a timeline.
    #[inline]
    pub(crate) fn now_ns(&self) -> u64 {
        self.spans.now_ns()
    }

    /// Counts one outbound frame of `bytes` encoded length, bumping the
    /// matching per-code error series for [`Frame::Error`]s.
    pub(crate) fn count_outbound(&self, frame: &Frame, bytes: usize) {
        self.frames_out.inc();
        self.bytes_out.add(bytes as u64);
        if let Frame::Error { code, .. } = frame {
            self.errors[*code as usize - 1].inc();
        }
    }
}
