//! # flexsfu-wire
//!
//! A std-only wire protocol and TCP serving tier over
//! [`flexsfu_serve`] — the layer that lets the batched PWL serving
//! engine sit behind a socket instead of an `Arc`.
//!
//! Like the rest of the workspace, everything is hand-rolled on the
//! standard library: no async runtime, no serialization crate, no
//! protocol framework. The protocol is a length-prefixed binary
//! framing ([`Frame`]), chosen over anything textual because the
//! serving stack's headline guarantee is **bit-identity** — floats
//! travel as IEEE-754 bit patterns, so a tensor served over TCP equals
//! a tensor served in-process, bit for bit, NaN payloads included.
//!
//! The pieces:
//!
//! * [`Frame`] / [`FrameReader`] — the codec: total (never panics on
//!   input bytes), allocation-bounded ([`MAX_PAYLOAD`] is rejected
//!   before buffering), and incremental (frames reassemble identically
//!   from any byte-level chunking of the stream).
//! * [`WireServer`] — a TCP front-end over a
//!   [`flexsfu_serve::ServeHandle`]: per-connection multiplexing with
//!   out-of-order responses, admission through the non-blocking submit
//!   path so a full queue answers a typed
//!   [`WireError::RetryAfter`] hint instead of stalling the socket,
//!   health pings, and a draining mode for handoff.
//! * [`WireClient`] — the matching client: submit returns a
//!   [`WireTicket`] immediately, a reader thread completes tickets as
//!   responses arrive, and the server's **ack** is observable
//!   separately ([`WireTicket::was_acked`]) — the accepted/not-accepted
//!   boundary the sharded tier's zero-loss failover is built on.
//! * [`WireError`] — every failure as a typed value, with
//!   [`WireError::is_retryable`] as the failover predicate.
//! * [`obs`] — the wire tier's telemetry names and its
//!   [`flexsfu_obs`] wiring: frame/byte/error counters, the
//!   ack-to-result latency histogram, `Frame::Stats` carrying a whole
//!   metrics snapshot over the wire, and the extended `Pong` health
//!   tail (queue depth, flushes, eval p99) that older peers simply
//!   don't decode.
//! * [`telemetry`] — the push pipeline's transport: a [`WireSink`]
//!   shipping exporter batches as acknowledged `Stats` frames and the
//!   [`TelemetryCollector`] that merges per-origin snapshots and
//!   spans on the other end.
//!
//! The sharded deployment layer (hash routing, health checks, draining
//! handoff) lives one crate up in `flexsfu-shard`; this crate is the
//! single-server transport it composes.
//!
//! # Example
//!
//! ```
//! use flexsfu_core::init::uniform_pwl;
//! use flexsfu_funcs::Gelu;
//! use flexsfu_serve::{FunctionRegistry, PwlServer, ServeConfig};
//! use flexsfu_wire::{WireClient, WireConfig, WireServer};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(FunctionRegistry::new());
//! let gelu = registry.register("gelu", &uniform_pwl(&Gelu, 16, (-8.0, 8.0)));
//! let server = PwlServer::start(Arc::clone(&registry), ServeConfig::default());
//!
//! let wire = WireServer::start_local(server.handle(), WireConfig::default())?;
//! let client = WireClient::connect(wire.local_addr())?;
//!
//! let ticket = client.submit_f64(gelu.0, vec![-1.0, 0.0, 2.0])?;
//! let ys = ticket.wait()?;
//! assert_eq!(ys.len(), 3);
//!
//! // Bit-identical to in-process serving (and to direct evaluation).
//! use flexsfu_core::PwlEvaluator;
//! let direct = registry.engine(gelu).unwrap().engine().eval_batch(&[-1.0, 0.0, 2.0]);
//! assert!(ys.iter().zip(&direct).all(|(a, b)| a.to_bits() == b.to_bits()));
//!
//! drop(client);
//! wire.shutdown();
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod client;
mod error;
pub mod frame;
pub mod obs;
mod server;
pub mod telemetry;

pub use client::{AckProbe, Health, WireClient, WireTicket, WireTicketF32};
pub use error::WireError;
pub use frame::{Frame, FrameError, FrameReader, MAX_PAYLOAD};
pub use server::{WireConfig, WireServer};
pub use telemetry::{TelemetryCollector, WireSink};
