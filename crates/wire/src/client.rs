//! The multiplexing wire client: one TCP connection, many in-flight
//! requests, responses matched back by request id.
//!
//! [`WireClient::submit_f64`]/[`WireClient::submit_f32`] return
//! immediately with a [`WireTicket`]/[`WireTicketF32`]; a background
//! reader thread completes tickets as `Ack`/`Result`/`Error` frames
//! arrive — in whatever order the server finishes them. The ack is
//! tracked separately from the result ([`WireTicket::was_acked`]): a
//! job whose ack arrived is *accepted* and will be answered, which is
//! the zero-loss boundary the shard router's failover relies on (an
//! unacked job can be resubmitted elsewhere without double-serving).

use crate::error::WireError;
use crate::frame::{Frame, FrameReader};
use flexsfu_obs::MetricsSnapshot;
use flexsfu_serve::oneshot;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A completed job's payload, either lane.
enum Payload {
    F64(Vec<f64>),
    F32(Vec<f32>),
}

type JobResult = Result<Payload, WireError>;

/// One unanswered request in the client's mux table.
struct PendingEntry {
    tx: oneshot::Sender<JobResult>,
    acked: Arc<AtomicBool>,
}

/// A point-in-time health report from a [`WireClient::ping`] pong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Health {
    /// The server refuses new submits and is finishing accepted work.
    pub draining: bool,
    /// Elements sitting in the serving queue (pre-flush).
    pub queued_elems: u64,
    /// Wire jobs accepted but not yet answered, server-wide.
    pub inflight: u64,
    /// Jobs sitting in the serving queue (pre-flush).
    pub queued_jobs: u64,
    /// Flush units the server has dispatched (zero from a legacy peer
    /// or an unobserved server).
    pub flushes: u64,
    /// p99 backend evaluation time in microseconds (zero from a legacy
    /// peer or an unobserved server).
    pub eval_p99_us: u64,
}

/// Client-side shared state: the mux table and the connection-dead
/// latch.
struct ClientShared {
    pending: Mutex<HashMap<u64, PendingEntry>>,
    pings: Mutex<HashMap<u64, oneshot::Sender<Health>>>,
    stats: Mutex<HashMap<u64, oneshot::Sender<Vec<u8>>>>,
    closed: AtomicBool,
}

impl ClientShared {
    /// Fails every outstanding request and ping with `err`; called when
    /// the connection dies so no ticket waits forever.
    fn fail_all(&self, err: &WireError) {
        self.closed.store(true, Ordering::SeqCst);
        let entries: Vec<PendingEntry> = {
            let mut p = self.pending.lock().unwrap();
            p.drain().map(|(_, e)| e).collect()
        };
        for e in entries {
            e.tx.send(Err(err.clone()));
        }
        // Dropping the senders disconnects ping/scrape receivers, which
        // surfaces as a timeout/closed error at the caller.
        self.pings.lock().unwrap().clear();
        self.stats.lock().unwrap().clear();
    }
}

/// A connected wire client. Cheap handles are not provided — clone the
/// whole client per thread is unnecessary since submission is `&self`
/// and internally synchronized. Dropping the client closes the socket
/// and fails outstanding tickets with
/// [`WireError::ConnectionClosed`].
pub struct WireClient {
    shared: Arc<ClientShared>,
    writer: Mutex<TcpStream>,
    stream: TcpStream,
    next_req: AtomicU64,
    reader: Option<JoinHandle<()>>,
}

impl WireClient {
    /// Connects to a [`crate::WireServer`] at `addr`.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the connection fails.
    pub fn connect(addr: SocketAddr) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        let reader_stream = stream.try_clone()?;
        let shared = Arc::new(ClientShared {
            pending: Mutex::new(HashMap::new()),
            pings: Mutex::new(HashMap::new()),
            stats: Mutex::new(HashMap::new()),
            closed: AtomicBool::new(false),
        });
        let reader = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("flexsfu-wire-client".into())
                .spawn(move || reader_loop(reader_stream, &shared))
                .expect("spawn client reader thread")
        };
        Ok(Self {
            shared,
            writer: Mutex::new(writer),
            stream,
            // Request ids start at 1: the server uses req 0 for
            // connection-level protocol errors.
            next_req: AtomicU64::new(1),
            reader: Some(reader),
        })
    }

    /// Whether the connection has died (tickets already failed).
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::SeqCst)
    }

    /// Submits an f64 tensor for `func` and returns its ticket.
    ///
    /// # Errors
    ///
    /// [`WireError::ConnectionClosed`] or [`WireError::Io`] if the
    /// frame cannot be written; server-side rejections (unknown
    /// function, `RetryAfter`, draining…) surface on the *ticket*.
    pub fn submit_f64(&self, func: u32, data: Vec<f64>) -> Result<WireTicket, WireError> {
        self.submit_f64_traced(func, data, None)
    }

    /// Submits an f64 tensor carrying an optional distributed trace id.
    ///
    /// With `trace == None` the emitted frame is byte-identical to the
    /// legacy (v1) submit, so untraced traffic interoperates with old
    /// servers; a `Some` id appends the version-tolerant trace tail and
    /// requires a trace-aware peer only to *propagate* it (a v1 server
    /// would reject the longer body, so routers only stamp ids toward
    /// shards they own).
    ///
    /// # Errors
    ///
    /// As [`Self::submit_f64`].
    pub fn submit_f64_traced(
        &self,
        func: u32,
        data: Vec<f64>,
        trace: Option<u64>,
    ) -> Result<WireTicket, WireError> {
        let (req, rx, acked) = self.register()?;
        self.send(
            &Frame::SubmitF64 {
                req,
                func,
                data,
                trace,
            },
            req,
        )?;
        Ok(WireTicket { rx, acked })
    }

    /// Submits an f32 tensor for `func` and returns its ticket.
    ///
    /// # Errors
    ///
    /// As [`Self::submit_f64`].
    pub fn submit_f32(&self, func: u32, data: Vec<f32>) -> Result<WireTicketF32, WireError> {
        self.submit_f32_traced(func, data, None)
    }

    /// Submits an f32 tensor carrying an optional distributed trace id;
    /// see [`Self::submit_f64_traced`] for the interop contract.
    ///
    /// # Errors
    ///
    /// As [`Self::submit_f64`].
    pub fn submit_f32_traced(
        &self,
        func: u32,
        data: Vec<f32>,
        trace: Option<u64>,
    ) -> Result<WireTicketF32, WireError> {
        let (req, rx, acked) = self.register()?;
        self.send(
            &Frame::SubmitF32 {
                req,
                func,
                data,
                trace,
            },
            req,
        )?;
        Ok(WireTicketF32 { rx, acked })
    }

    /// Health-checks the server: sends a ping and waits up to `timeout`
    /// for the pong.
    ///
    /// # Errors
    ///
    /// [`WireError::Timeout`] if no pong arrives in time,
    /// [`WireError::ConnectionClosed`]/[`WireError::Io`] if the
    /// connection is gone.
    pub fn ping(&self, timeout: Duration) -> Result<Health, WireError> {
        if self.is_closed() {
            return Err(WireError::ConnectionClosed);
        }
        let nonce = self.next_req.fetch_add(1, Ordering::SeqCst);
        let (tx, rx) = oneshot::channel();
        self.shared.pings.lock().unwrap().insert(nonce, tx);
        if let Err(e) = self.write_frame(&Frame::Ping { nonce }) {
            self.shared.pings.lock().unwrap().remove(&nonce);
            return Err(e);
        }
        match rx.recv_timeout(timeout) {
            Ok(h) => Ok(h),
            Err(oneshot::RecvTimeoutError::Timeout) => {
                self.shared.pings.lock().unwrap().remove(&nonce);
                Err(WireError::Timeout)
            }
            Err(oneshot::RecvTimeoutError::Disconnected) => Err(WireError::ConnectionClosed),
        }
    }

    /// Scrapes the server's metrics: sends a [`Frame::StatsRequest`]
    /// and waits up to `timeout` for the decoded snapshot. A server
    /// running without observability answers an empty snapshot.
    ///
    /// # Errors
    ///
    /// [`WireError::Timeout`] if no stats frame arrives in time,
    /// [`WireError::BadSnapshot`] if the blob does not decode, and
    /// [`WireError::ConnectionClosed`]/[`WireError::Io`] if the
    /// connection is gone.
    pub fn scrape(&self, timeout: Duration) -> Result<MetricsSnapshot, WireError> {
        if self.is_closed() {
            return Err(WireError::ConnectionClosed);
        }
        let nonce = self.next_req.fetch_add(1, Ordering::SeqCst);
        let (tx, rx) = oneshot::channel();
        self.shared.stats.lock().unwrap().insert(nonce, tx);
        if let Err(e) = self.write_frame(&Frame::StatsRequest { nonce }) {
            self.shared.stats.lock().unwrap().remove(&nonce);
            return Err(e);
        }
        match rx.recv_timeout(timeout) {
            Ok(blob) => MetricsSnapshot::decode(&blob).map_err(|_| WireError::BadSnapshot),
            Err(oneshot::RecvTimeoutError::Timeout) => {
                self.shared.stats.lock().unwrap().remove(&nonce);
                Err(WireError::Timeout)
            }
            Err(oneshot::RecvTimeoutError::Disconnected) => Err(WireError::ConnectionClosed),
        }
    }

    /// Asks the server to start draining (fire-and-forget; observe the
    /// transition via [`Self::ping`]).
    ///
    /// # Errors
    ///
    /// [`WireError::ConnectionClosed`]/[`WireError::Io`] if the frame
    /// cannot be written.
    pub fn drain(&self) -> Result<(), WireError> {
        if self.is_closed() {
            return Err(WireError::ConnectionClosed);
        }
        self.write_frame(&Frame::Drain)
    }

    /// Allocates a request id and parks its completion slot.
    fn register(&self) -> Result<(u64, oneshot::Receiver<JobResult>, Arc<AtomicBool>), WireError> {
        if self.is_closed() {
            return Err(WireError::ConnectionClosed);
        }
        let req = self.next_req.fetch_add(1, Ordering::SeqCst);
        let (tx, rx) = oneshot::channel();
        let acked = Arc::new(AtomicBool::new(false));
        self.shared.pending.lock().unwrap().insert(
            req,
            PendingEntry {
                tx,
                acked: Arc::clone(&acked),
            },
        );
        Ok((req, rx, acked))
    }

    /// Writes a submit frame; on failure unparks the slot so the error
    /// is returned synchronously rather than via a dead ticket.
    fn send(&self, frame: &Frame, req: u64) -> Result<(), WireError> {
        if let Err(e) = self.write_frame(frame) {
            self.shared.pending.lock().unwrap().remove(&req);
            return Err(e);
        }
        Ok(())
    }

    fn write_frame(&self, frame: &Frame) -> Result<(), WireError> {
        let bytes = frame.encode();
        let mut w = self.writer.lock().unwrap();
        w.write_all(&bytes).map_err(WireError::from)
    }
}

impl Drop for WireClient {
    fn drop(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(t) = self.reader.take() {
            t.join().expect("wire client reader panicked");
        }
        self.shared.fail_all(&WireError::ConnectionClosed);
    }
}

/// Dispatches inbound frames until the connection dies, then fails
/// everything outstanding.
fn reader_loop(mut stream: TcpStream, shared: &ClientShared) {
    let mut frames = FrameReader::new();
    let mut chunk = [0u8; 64 * 1024];
    let terminal: WireError = loop {
        match stream.read(&mut chunk) {
            Ok(0) => break WireError::ConnectionClosed,
            Ok(n) => frames.feed(&chunk[..n]),
            Err(e) => break WireError::Io(e.kind()),
        }
        loop {
            match frames.next_frame() {
                Ok(Some(frame)) => dispatch(frame, shared),
                Ok(None) => break,
                // The server sent bytes we cannot decode; nothing after
                // them is trustworthy.
                Err(e) => {
                    shared.fail_all(&WireError::Protocol(e));
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
            }
        }
    };
    shared.fail_all(&terminal);
}

/// Routes one server frame to its ticket / ping slot. Unknown request
/// ids are ignored (a late reply after a local timeout/removal).
fn dispatch(frame: Frame, shared: &ClientShared) {
    match frame {
        Frame::Ack { req } => {
            if let Some(e) = shared.pending.lock().unwrap().get(&req) {
                e.acked.store(true, Ordering::SeqCst);
            }
        }
        Frame::ResultF64 { req, data } => complete(shared, req, Ok(Payload::F64(data))),
        Frame::ResultF32 { req, data } => complete(shared, req, Ok(Payload::F32(data))),
        Frame::Error { req, code, detail } => {
            let err = WireError::from_code(code, detail);
            if req == 0 {
                // Connection-scoped error (the server is about to close
                // on us): every outstanding request gets it.
                shared.fail_all(&err);
            } else {
                complete(shared, req, Err(err));
            }
        }
        Frame::Pong {
            nonce,
            draining,
            queued_elems,
            inflight,
            queued_jobs,
            flushes,
            eval_p99_us,
        } => {
            if let Some(tx) = shared.pings.lock().unwrap().remove(&nonce) {
                tx.send(Health {
                    draining,
                    queued_elems,
                    inflight,
                    queued_jobs,
                    flushes,
                    eval_p99_us,
                });
            }
        }
        Frame::Stats { nonce, snapshot } => {
            if let Some(tx) = shared.stats.lock().unwrap().remove(&nonce) {
                tx.send(snapshot);
            }
        }
        // Client-to-server frames arriving at the client are a server
        // bug; dropping them is the safest recovery (tickets they can't
        // complete will surface ConnectionClosed when the server's
        // confusion inevitably kills the stream).
        Frame::SubmitF64 { .. }
        | Frame::SubmitF32 { .. }
        | Frame::Ping { .. }
        | Frame::Drain
        | Frame::StatsRequest { .. } => {}
    }
}

fn complete(shared: &ClientShared, req: u64, result: JobResult) {
    if let Some(e) = shared.pending.lock().unwrap().remove(&req) {
        e.tx.send(result);
    }
}

/// A detachable view of one request's ack state, usable after the
/// ticket itself was consumed by `wait`. The server sends exactly one
/// of ack-then-result or a refusal error, in order on the stream — so
/// after a successful `wait` the probe reads `true`, and after a typed
/// refusal it reads `false`, without racing the reader thread.
pub struct AckProbe(Arc<AtomicBool>);

impl AckProbe {
    /// Whether the server's ack for the probed request has arrived.
    pub fn is_acked(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// An in-flight f64 request. Wait (bounded or not) for the result;
/// [`Self::was_acked`] reports whether the server accepted the job —
/// the resubmission-safety predicate.
pub struct WireTicket {
    rx: oneshot::Receiver<JobResult>,
    acked: Arc<AtomicBool>,
}

/// An in-flight f32 request; see [`WireTicket`].
pub struct WireTicketF32 {
    rx: oneshot::Receiver<JobResult>,
    acked: Arc<AtomicBool>,
}

impl WireTicket {
    /// Whether the server's ack for this job has arrived.
    pub fn was_acked(&self) -> bool {
        self.acked.load(Ordering::SeqCst)
    }

    /// A probe of this request's ack state that outlives the ticket.
    pub fn ack_probe(&self) -> AckProbe {
        AckProbe(Arc::clone(&self.acked))
    }

    /// Blocks until the result (or a typed error) arrives.
    ///
    /// # Errors
    ///
    /// The server-reported rejection, or
    /// [`WireError::ConnectionClosed`] if the connection died first.
    pub fn wait(self) -> Result<Vec<f64>, WireError> {
        match self.rx.recv() {
            Ok(Ok(Payload::F64(data))) => Ok(data),
            Ok(Ok(Payload::F32(_))) => Err(WireError::UnexpectedPayload),
            Ok(Err(e)) => Err(e),
            Err(oneshot::RecvError) => Err(WireError::ConnectionClosed),
        }
    }

    /// Blocks up to `timeout`; consumes the ticket either way (a timed
    /// out job keeps running server-side, but its reply slot is gone).
    ///
    /// # Errors
    ///
    /// As [`Self::wait`], plus [`WireError::Timeout`].
    pub fn wait_timeout(self, timeout: Duration) -> Result<Vec<f64>, WireError> {
        match self.rx.recv_timeout(timeout) {
            Ok(Ok(Payload::F64(data))) => Ok(data),
            Ok(Ok(Payload::F32(_))) => Err(WireError::UnexpectedPayload),
            Ok(Err(e)) => Err(e),
            Err(oneshot::RecvTimeoutError::Timeout) => Err(WireError::Timeout),
            Err(oneshot::RecvTimeoutError::Disconnected) => Err(WireError::ConnectionClosed),
        }
    }
}

impl WireTicketF32 {
    /// Whether the server's ack for this job has arrived.
    pub fn was_acked(&self) -> bool {
        self.acked.load(Ordering::SeqCst)
    }

    /// A probe of this request's ack state that outlives the ticket.
    pub fn ack_probe(&self) -> AckProbe {
        AckProbe(Arc::clone(&self.acked))
    }

    /// Blocks until the result (or a typed error) arrives.
    ///
    /// # Errors
    ///
    /// As [`WireTicket::wait`].
    pub fn wait(self) -> Result<Vec<f32>, WireError> {
        match self.rx.recv() {
            Ok(Ok(Payload::F32(data))) => Ok(data),
            Ok(Ok(Payload::F64(_))) => Err(WireError::UnexpectedPayload),
            Ok(Err(e)) => Err(e),
            Err(oneshot::RecvError) => Err(WireError::ConnectionClosed),
        }
    }

    /// Blocks up to `timeout`; consumes the ticket either way.
    ///
    /// # Errors
    ///
    /// As [`WireTicket::wait_timeout`].
    pub fn wait_timeout(self, timeout: Duration) -> Result<Vec<f32>, WireError> {
        match self.rx.recv_timeout(timeout) {
            Ok(Ok(Payload::F32(data))) => Ok(data),
            Ok(Ok(Payload::F64(_))) => Err(WireError::UnexpectedPayload),
            Ok(Err(e)) => Err(e),
            Err(oneshot::RecvTimeoutError::Timeout) => Err(WireError::Timeout),
            Err(oneshot::RecvTimeoutError::Disconnected) => Err(WireError::ConnectionClosed),
        }
    }
}
