//! The TCP serving front-end: a std-only listener that speaks the
//! [`crate::Frame`] protocol and forwards jobs into a
//! [`flexsfu_serve::ServeHandle`].
//!
//! # Connection anatomy
//!
//! Each accepted connection runs two threads:
//!
//! * a **reader** that reassembles frames ([`crate::FrameReader`]),
//!   admits submits through the serving handle's *non-blocking*
//!   `try_submit` (a full queue answers a typed
//!   [`crate::frame::ErrorCode::RetryAfter`] hint instead of stalling
//!   the whole connection), answers health pings, and replies
//!   [`crate::frame::ErrorCode::Protocol`] then closes on malformed
//!   bytes — torn frames and garbage never panic the server or leak the
//!   connection;
//! * a **completion pump** that polls every accepted job's ticket
//!   through a real [`std::task::Waker`] (the serve crate's oneshot
//!   stores it, so the pump sleeps until a result lands) and writes
//!   results back **in completion order** — responses are multiplexed
//!   by request id and may overtake each other, which is the point of
//!   per-connection request ids.
//!
//! A job is **accepted** exactly when its [`crate::Frame::Ack`] is
//! written; from then on the server answers it — with a result or a
//! typed error — even across [`WireServer::drain`]. The ack always
//! precedes the job's own result on the wire (writes are serialized per
//! connection), but carries no ordering relative to *other* requests.

use crate::frame::{ErrorCode, Frame, FrameReader};
use crate::obs::WireObsState;
use flexsfu_obs::{SpanCell, Stage};
use flexsfu_serve::{FunctionId, JobTicket, JobTicketF32, ServeError, ServeHandle, ServeObs};
use std::future::Future;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::thread::JoinHandle;
use std::time::Duration;

/// Knobs for [`WireServer::start`].
#[derive(Debug, Clone)]
pub struct WireConfig {
    /// The backoff hint served with [`ErrorCode::RetryAfter`] when the
    /// serving queue bounces a submit — pick the order of one flush
    /// interval, so a retrying client lands after the pressure flush.
    pub retry_after: Duration,
    /// How long blocking socket reads wait before re-checking the stop
    /// flag. Purely a shutdown-latency/CPU trade-off.
    pub poll_interval: Duration,
}

impl Default for WireConfig {
    fn default() -> Self {
        Self {
            retry_after: Duration::from_micros(500),
            poll_interval: Duration::from_millis(20),
        }
    }
}

/// Connection-count gauge with a condvar so shutdown (and leak tests)
/// can wait for it to reach zero instead of polling.
#[derive(Default)]
struct ConnGauge {
    count: Mutex<usize>,
    zero: Condvar,
}

impl ConnGauge {
    fn enter(&self) {
        *self.count.lock().unwrap() += 1;
    }

    fn exit(&self) {
        let mut c = self.count.lock().unwrap();
        *c -= 1;
        if *c == 0 {
            self.zero.notify_all();
        }
    }

    fn current(&self) -> usize {
        *self.count.lock().unwrap()
    }

    fn wait_zero(&self, timeout: Duration) -> bool {
        let (guard, res) = self
            .zero
            .wait_timeout_while(self.count.lock().unwrap(), timeout, |c| *c > 0)
            .unwrap();
        drop(guard);
        !res.timed_out()
    }
}

/// State shared by the listener and every connection.
struct ServerShared {
    handle: ServeHandle,
    config: WireConfig,
    stop: AtomicBool,
    draining: AtomicBool,
    /// Wire jobs accepted (acked) but not yet answered, server-wide —
    /// reported in pongs so a router can wait out a drain.
    inflight: AtomicU64,
    conns: ConnGauge,
    /// Pre-resolved telemetry handles; `None` runs the exact
    /// pre-observability hot path.
    obs: Option<Arc<WireObsState>>,
}

/// A running wire front-end over one [`flexsfu_serve::PwlServer`]'s
/// handle. Binds `127.0.0.1:0` by default (the sharded tier spawns
/// servers in-process and reads the port back via
/// [`WireServer::local_addr`]). Dropping the server shuts it down.
pub struct WireServer {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl WireServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections, forwarding jobs into `handle`'s server.
    ///
    /// # Errors
    ///
    /// The bind error, if the address is unavailable.
    pub fn start(
        handle: ServeHandle,
        addr: SocketAddr,
        config: WireConfig,
    ) -> std::io::Result<Self> {
        Self::start_inner(handle, addr, config, None)
    }

    /// [`Self::start`] with telemetry: frame/byte/error counters, the
    /// ack→answer histogram, pong telemetry tails, and
    /// [`Frame::StatsRequest`] answered with real snapshots. Pass the
    /// *same* [`ServeObs`] the serving engine was started with, so the
    /// pong tail and the stats snapshot report the engine behind this
    /// socket.
    ///
    /// # Errors
    ///
    /// As [`Self::start`].
    pub fn start_with_obs(
        handle: ServeHandle,
        addr: SocketAddr,
        config: WireConfig,
        obs: ServeObs,
    ) -> std::io::Result<Self> {
        Self::start_inner(
            handle,
            addr,
            config,
            Some(Arc::new(WireObsState::new(&obs))),
        )
    }

    /// [`Self::start_with_obs`] on `127.0.0.1:0`.
    ///
    /// # Errors
    ///
    /// As [`Self::start`].
    pub fn start_local_with_obs(
        handle: ServeHandle,
        config: WireConfig,
        obs: ServeObs,
    ) -> std::io::Result<Self> {
        Self::start_with_obs(handle, ([127, 0, 0, 1], 0).into(), config, obs)
    }

    fn start_inner(
        handle: ServeHandle,
        addr: SocketAddr,
        config: WireConfig,
        obs: Option<Arc<WireObsState>>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(ServerShared {
            handle,
            config,
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            inflight: AtomicU64::new(0),
            conns: ConnGauge::default(),
            obs,
        });
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let conn_threads = Arc::clone(&conn_threads);
            std::thread::Builder::new()
                .name("flexsfu-wire-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &conn_threads))
                .expect("spawn accept thread")
        };
        Ok(Self {
            shared,
            addr,
            accept: Some(accept),
            conn_threads,
        })
    }

    /// [`Self::start`] on `127.0.0.1:0` — the in-process deployment
    /// default.
    ///
    /// # Errors
    ///
    /// As [`Self::start`].
    pub fn start_local(handle: ServeHandle, config: WireConfig) -> std::io::Result<Self> {
        Self::start(handle, ([127, 0, 0, 1], 0).into(), config)
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Puts the server into draining mode: new submissions answer
    /// [`ErrorCode::Draining`], accepted jobs keep completing, health
    /// pongs advertise the state. Also triggered remotely by a
    /// [`Frame::Drain`] frame. Idempotent; there is no un-drain.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Whether the server is draining.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Wire jobs accepted but not yet answered (server-wide) — zero
    /// means a drain has fully settled.
    pub fn inflight(&self) -> u64 {
        self.shared.inflight.load(Ordering::SeqCst)
    }

    /// Currently open connections — the leak gauge the protocol suite
    /// checks after torn-frame and garbage-input cases.
    pub fn active_connections(&self) -> usize {
        self.shared.conns.current()
    }

    /// Stops accepting, closes every connection (accepted jobs are
    /// still answered first — the pump drains before closing), and
    /// joins all threads. Equivalent to drop, but explicit.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept.take() {
            t.join().expect("wire accept thread panicked");
        }
        let threads: Vec<_> = self.conn_threads.lock().unwrap().drain(..).collect();
        for t in threads {
            t.join().expect("wire connection thread panicked");
        }
        debug_assert!(self.shared.conns.wait_zero(Duration::from_secs(1)));
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Accepts until stopped. Non-blocking accept + sleep keeps this
/// std-only (no self-connect tricks); the poll interval bounds both
/// accept latency and shutdown latency.
fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<ServerShared>,
    conn_threads: &Mutex<Vec<JoinHandle<()>>>,
) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                shared.conns.enter();
                let t = std::thread::Builder::new()
                    .name("flexsfu-wire-conn".into())
                    .spawn(move || {
                        connection_loop(stream, &shared);
                        shared.conns.exit();
                    })
                    .expect("spawn connection thread");
                conn_threads.lock().unwrap().push(t);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            // Transient accept errors (peer vanished mid-handshake):
            // keep serving.
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// One accepted job awaiting its result in the pump.
struct PendingJob {
    req: u64,
    /// Clock read at the ack write (0 when the server runs without
    /// observability) — the start of the ack→answer histogram window.
    t_ack: u64,
    ticket: Ticket,
}

/// The parked ticket, either precision lane.
enum Ticket {
    F64(JobTicket),
    F32(JobTicketF32),
}

/// The pump's shared state: tickets parked for completion, plus the
/// wake/closed signals. One waker serves the whole connection — a
/// completion wakes the pump, which polls everything pending (the
/// pending set is small: it is one connection's in-flight window).
struct Pump {
    inner: Mutex<PumpInner>,
    cv: Condvar,
}

struct PumpInner {
    pending: Vec<PendingJob>,
    wake: bool,
    closed: bool,
}

impl Pump {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            inner: Mutex::new(PumpInner {
                pending: Vec::new(),
                wake: false,
                closed: false,
            }),
            cv: Condvar::new(),
        })
    }

    fn add(&self, job: PendingJob) {
        let mut g = self.inner.lock().unwrap();
        g.pending.push(job);
        g.wake = true;
        self.cv.notify_one();
    }

    fn close(&self) {
        let mut g = self.inner.lock().unwrap();
        g.closed = true;
        g.wake = true;
        self.cv.notify_one();
    }

    fn notify(&self) {
        let mut g = self.inner.lock().unwrap();
        g.wake = true;
        self.cv.notify_one();
    }
}

/// The pump's waker: oneshot completions land here.
struct PumpWaker(Arc<Pump>);

impl Wake for PumpWaker {
    fn wake(self: Arc<Self>) {
        self.0.notify();
    }
}

/// Serialized frame writes over one connection. Outbound telemetry
/// (frames, bytes, per-code errors) is counted here, at the single
/// choke point every reply funnels through.
struct ConnWriter {
    stream: Mutex<TcpStream>,
    obs: Option<Arc<WireObsState>>,
}

impl ConnWriter {
    /// Writes one frame; an `Err` means the connection is dead (the
    /// caller stops using it — the peer is gone, nothing to report).
    fn send(&self, frame: &Frame) -> std::io::Result<()> {
        let bytes = frame.encode();
        if let Some(o) = &self.obs {
            o.count_outbound(frame, bytes.len());
        }
        let mut s = self.stream.lock().unwrap();
        s.write_all(&bytes)
    }
}

/// The per-connection reader: frames in, admissions + control out.
/// Returns only when the peer closed, a protocol error desynced the
/// stream, or the server stopped — always after joining its pump, so a
/// returned reader means the connection is fully retired.
fn connection_loop(stream: TcpStream, shared: &Arc<ServerShared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let writer = Arc::new(ConnWriter {
        stream: match stream.try_clone() {
            Ok(s) => Mutex::new(s),
            Err(_) => return,
        },
        obs: shared.obs.clone(),
    });

    let pump = Pump::new();
    let pump_thread = {
        let pump = Arc::clone(&pump);
        let writer = Arc::clone(&writer);
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name("flexsfu-wire-pump".into())
            .spawn(move || pump_loop(&pump, &writer, &shared))
            .expect("spawn pump thread")
    };

    read_frames(stream, shared, &writer, &pump);

    // Reader done (peer gone, protocol error, or stop): let the pump
    // finish answering accepted jobs, then retire the connection.
    pump.close();
    pump_thread.join().expect("wire pump thread panicked");
}

/// The reader half of [`connection_loop`], separated so every exit path
/// funnels through the pump teardown above.
fn read_frames(
    mut stream: TcpStream,
    shared: &Arc<ServerShared>,
    writer: &ConnWriter,
    pump: &Arc<Pump>,
) {
    let mut reader = FrameReader::new();
    let mut chunk = [0u8; 64 * 1024];
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                if let Some(o) = &shared.obs {
                    o.bytes_in.add(n as u64);
                }
                reader.feed(&chunk[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
        loop {
            match reader.next_frame() {
                Ok(Some(frame)) => {
                    if let Some(o) = &shared.obs {
                        o.frames_in.inc();
                    }
                    if !handle_frame(frame, shared, writer, pump) {
                        return;
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // Malformed bytes: typed protocol reply, then close.
                    // The stream is desynced, so nothing else is safe.
                    let _ = writer.send(&Frame::Error {
                        req: 0,
                        code: ErrorCode::Protocol,
                        detail: 0,
                    });
                    return;
                }
            }
        }
    }
}

/// Dispatches one inbound frame; `false` closes the connection.
fn handle_frame(
    frame: Frame,
    shared: &Arc<ServerShared>,
    writer: &ConnWriter,
    pump: &Arc<Pump>,
) -> bool {
    match frame {
        Frame::SubmitF64 {
            req,
            func,
            data,
            trace,
        } => {
            if refuse_if_draining(req, shared, writer) {
                return true;
            }
            // The decoded trace tail rides into the serving tier so the
            // shard-side recorder adopts the router-minted id.
            match shared
                .handle
                .try_submit_traced(FunctionId(func), data, trace)
            {
                Ok(ticket) => accept(req, Ticket::F64(ticket), shared, writer, pump),
                Err(e) => writer.send(&submit_error(req, &e, shared)).is_ok(),
            }
        }
        Frame::SubmitF32 {
            req,
            func,
            data,
            trace,
        } => {
            if refuse_if_draining(req, shared, writer) {
                return true;
            }
            match shared
                .handle
                .try_submit_f32_traced(FunctionId(func), data, trace)
            {
                Ok(ticket) => accept(req, Ticket::F32(ticket), shared, writer, pump),
                Err(e) => writer.send(&submit_error(req, &e, shared)).is_ok(),
            }
        }
        Frame::Ping { nonce } => {
            let depth = shared.handle.queue_depth();
            // The telemetry tail reads the serving tier's own series —
            // zeros when the server runs without observability.
            let (flushes, eval_p99_us) = match &shared.obs {
                Some(o) => (o.flush_units.get(), o.eval_ns.snapshot().p99() / 1_000),
                None => (0, 0),
            };
            writer
                .send(&Frame::Pong {
                    nonce,
                    draining: shared.draining.load(Ordering::SeqCst),
                    queued_elems: depth.elems as u64,
                    inflight: shared.inflight.load(Ordering::SeqCst),
                    queued_jobs: depth.jobs as u64,
                    flushes,
                    eval_p99_us,
                })
                .is_ok()
        }
        Frame::StatsRequest { nonce } => {
            let snapshot = shared
                .obs
                .as_ref()
                .map(|o| o.metrics.snapshot())
                .unwrap_or_default();
            writer
                .send(&Frame::Stats {
                    nonce,
                    snapshot: snapshot.encode(),
                })
                .is_ok()
        }
        Frame::Drain => {
            shared.draining.store(true, Ordering::SeqCst);
            true
        }
        // Server-to-client frames arriving at the server are a protocol
        // violation: typed reply, close.
        Frame::Ack { .. }
        | Frame::ResultF64 { .. }
        | Frame::ResultF32 { .. }
        | Frame::Error { .. }
        | Frame::Pong { .. }
        | Frame::Stats { .. } => {
            let _ = writer.send(&Frame::Error {
                req: 0,
                code: ErrorCode::Protocol,
                detail: 0,
            });
            false
        }
    }
}

/// Answers a submit with [`ErrorCode::Draining`] when draining; returns
/// whether the submit was refused.
fn refuse_if_draining(req: u64, shared: &ServerShared, writer: &ConnWriter) -> bool {
    if shared.draining.load(Ordering::SeqCst) {
        let _ = writer.send(&Frame::Error {
            req,
            code: ErrorCode::Draining,
            detail: 0,
        });
        return true;
    }
    false
}

/// Acks an admitted job and parks its ticket in the pump. The ack is
/// written *before* the ticket is parked, so a job's ack always
/// precedes its result on the wire.
fn accept(
    req: u64,
    ticket: Ticket,
    shared: &ServerShared,
    writer: &ConnWriter,
    pump: &Pump,
) -> bool {
    if writer.send(&Frame::Ack { req }).is_err() {
        // Peer is gone before the ack: the job was never accepted from
        // the protocol's point of view; dropping the ticket abandons
        // the result harmlessly.
        return false;
    }
    let t_ack = shared.obs.as_ref().map_or(0, |o| o.now_ns());
    shared.inflight.fetch_add(1, Ordering::SeqCst);
    pump.add(PendingJob { req, t_ack, ticket });
    true
}

/// Maps a [`ServeError`] from admission onto its protocol reply.
fn submit_error(req: u64, e: &ServeError, shared: &ServerShared) -> Frame {
    let (code, detail) = match e {
        ServeError::QueueFull => {
            let micros = u32::try_from(shared.config.retry_after.as_micros()).unwrap_or(u32::MAX);
            (ErrorCode::RetryAfter, micros)
        }
        ServeError::UnknownFunction(id) => (ErrorCode::UnknownFunction, id.0),
        ServeError::PrecisionUnsupported(id) => (ErrorCode::PrecisionUnsupported, id.0),
        ServeError::ShuttingDown => (ErrorCode::ShuttingDown, 0),
        // Admission never returns LowerFailed/Disconnected; answer
        // Internal rather than unreachable!() so a future serve change
        // degrades to a typed error instead of a panicked connection.
        ServeError::LowerFailed(_) | ServeError::Disconnected => (ErrorCode::Internal, 0),
    };
    Frame::Error { req, code, detail }
}

/// The completion pump: polls parked tickets through the shared waker,
/// writes each completed job's result (or typed error) in completion
/// order, and exits once the reader closed the connection and nothing
/// is pending.
fn pump_loop(pump: &Arc<Pump>, writer: &ConnWriter, shared: &ServerShared) {
    let waker = Waker::from(Arc::new(PumpWaker(Arc::clone(pump))));
    let mut cx = Context::from_waker(&waker);
    loop {
        let mut batch = {
            let mut g = pump.inner.lock().unwrap();
            while !(g.wake || g.closed && g.pending.is_empty()) {
                // The timeout is a belt-and-braces tick; completions
                // arrive via the waker.
                g = pump
                    .cv
                    .wait_timeout(g, Duration::from_millis(100))
                    .unwrap()
                    .0;
            }
            if g.closed && g.pending.is_empty() {
                return;
            }
            g.wake = false;
            std::mem::take(&mut g.pending)
        };

        let mut still_pending = Vec::with_capacity(batch.len());
        for job in batch.drain(..) {
            match poll_job(job, &mut cx) {
                Ok((frame, t_ack, span)) => {
                    // A dead socket is fine — the peer stopped caring;
                    // the job itself completed and is no longer
                    // in flight either way.
                    let _ = writer.send(&frame);
                    if let Some(o) = &shared.obs {
                        let now = o.now_ns();
                        if t_ack != 0 {
                            o.ack_to_result_ns.record(now.saturating_sub(t_ack));
                        }
                        if let Some(cell) = &span {
                            cell.record(Stage::WireWrite, now);
                        }
                    }
                    shared.inflight.fetch_sub(1, Ordering::SeqCst);
                }
                Err(job) => still_pending.push(job),
            }
        }

        let mut g = pump.inner.lock().unwrap();
        // New arrivals were appended while we polled; keep both.
        still_pending.append(&mut g.pending);
        g.pending = still_pending;
    }
}

/// Polls one parked job: `Ok((reply frame, ack stamp, span))` when
/// complete, `Err(job)` to re-park. A `Disconnected` ticket (an
/// evaluation-side failure, e.g. the testkit's drop-before-reply
/// fault) answers [`ErrorCode::Internal`] — accepted jobs are always
/// answered.
#[allow(clippy::type_complexity)]
fn poll_job(
    job: PendingJob,
    cx: &mut Context<'_>,
) -> Result<(Frame, u64, Option<Arc<SpanCell>>), PendingJob> {
    let PendingJob { req, t_ack, ticket } = job;
    match ticket {
        Ticket::F64(mut ticket) => match std::pin::Pin::new(&mut ticket).poll(cx) {
            Poll::Ready(Ok(data)) => Ok((
                Frame::ResultF64 { req, data },
                t_ack,
                ticket.span().cloned(),
            )),
            Poll::Ready(Err(_)) => Ok((
                Frame::Error {
                    req,
                    code: ErrorCode::Internal,
                    detail: 0,
                },
                t_ack,
                ticket.span().cloned(),
            )),
            Poll::Pending => Err(PendingJob {
                req,
                t_ack,
                ticket: Ticket::F64(ticket),
            }),
        },
        Ticket::F32(mut ticket) => match std::pin::Pin::new(&mut ticket).poll(cx) {
            Poll::Ready(Ok(data)) => Ok((
                Frame::ResultF32 { req, data },
                t_ack,
                ticket.span().cloned(),
            )),
            Poll::Ready(Err(_)) => Ok((
                Frame::Error {
                    req,
                    code: ErrorCode::Internal,
                    detail: 0,
                },
                t_ack,
                ticket.span().cloned(),
            )),
            Poll::Pending => Err(PendingJob {
                req,
                t_ack,
                ticket: Ticket::F32(ticket),
            }),
        },
    }
}
