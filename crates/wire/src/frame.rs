//! The frame codec: a hand-rolled, length-prefixed binary encoding of
//! every message the serving tier speaks — no crates.io, same
//! discipline as the serve crate's hand-rolled oneshot.
//!
//! # Layout
//!
//! Every frame on the wire is
//!
//! ```text
//! +----------------+---------+------------------------+
//! | len: u32 LE    | kind:u8 | body (kind-specific)   |
//! +----------------+---------+------------------------+
//!                  |<------- len bytes ------------->|
//! ```
//!
//! `len` counts the payload (kind byte + body), not itself, and is
//! capped at [`MAX_PAYLOAD`]: a length prefix past the cap is rejected
//! *before* any allocation, so garbage (or hostile) prefixes cannot
//! balloon memory. All integers are little-endian; floats travel as
//! their IEEE-754 bit patterns ([`f64::to_bits`]/[`f32::to_bits`]), so
//! a value crosses the wire **bit-exactly** — including NaN payloads —
//! which is what lets the test battery demand bit-identity between
//! wire-served results and direct engine evaluation.
//!
//! Decoding is total: any byte sequence either yields a frame or a
//! typed [`FrameError`] — never a panic, never a partial read of
//! adjacent frames. [`FrameReader`] handles reassembly from an
//! arbitrary chunking of the byte stream (the codec property suite
//! feeds it one byte at a time).

/// Hard cap on a frame's payload (kind byte + body): 16 MiB. Large
/// enough for a 2M-element f64 tensor per request; small enough that a
/// garbage length prefix cannot commit meaningful memory.
pub const MAX_PAYLOAD: u32 = 1 << 24;

/// Bytes of framing overhead per frame (the `u32` length prefix).
pub const HEADER_LEN: usize = 4;

/// Typed protocol-level failure codes carried by [`Frame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The named function id is not registered on this server
    /// (`detail` = the offending id).
    UnknownFunction = 1,
    /// The function's backend has no lane for the submitted precision
    /// (`detail` = the function id).
    PrecisionUnsupported = 2,
    /// The server's admission queue bounced the job; retry after the
    /// hinted backoff (`detail` = suggested microseconds). This is
    /// [`flexsfu_serve::ServeError::QueueFull`] surfaced as protocol
    /// backpressure instead of a blocked connection.
    RetryAfter = 3,
    /// The server is draining: accepted jobs still complete, new
    /// submissions must go elsewhere (the shard router's handoff
    /// signal).
    Draining = 4,
    /// The serving back-end behind this server is shutting down.
    ShuttingDown = 5,
    /// The job was accepted but its result channel died (an evaluation
    /// worker failure). The submission may be retried.
    Internal = 6,
    /// The peer sent bytes that do not decode as a frame; the
    /// connection closes after this reply.
    Protocol = 7,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => Self::UnknownFunction,
            2 => Self::PrecisionUnsupported,
            3 => Self::RetryAfter,
            4 => Self::Draining,
            5 => Self::ShuttingDown,
            6 => Self::Internal,
            7 => Self::Protocol,
            _ => return None,
        })
    }
}

/// Everything that can travel over a serving connection, client → server
/// (`Submit*`, `Ping`, `Drain`) and server → client (`Ack`, `Result*`,
/// `Error`, `Pong`).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Submit `data` for evaluation by function `func`; all later frames
    /// about this job carry `req` (ids are per-connection, chosen by the
    /// client, and may complete out of order).
    SubmitF64 {
        /// Client-chosen request id.
        req: u64,
        /// Target function id in the server's registry.
        func: u32,
        /// The request tensor, bit-exact.
        data: Vec<f64>,
        /// Distributed trace id, as an optional body tail (the `Pong`
        /// tail pattern): `None` encodes the legacy v1 body exactly, so
        /// untraced submits stay byte-identical to what v1 peers send
        /// and accept; `Some` appends eight bytes that a v2 server
        /// adopts into its span ring. Only trace-originating callers
        /// (the shard router) set it.
        trace: Option<u64>,
    },
    /// The single-precision job lane's submit.
    SubmitF32 {
        /// Client-chosen request id.
        req: u64,
        /// Target function id.
        func: u32,
        /// The request tensor, bit-exact.
        data: Vec<f32>,
        /// Distributed trace id tail; see [`Frame::SubmitF64::trace`].
        trace: Option<u64>,
    },
    /// Health check; the server answers with [`Frame::Pong`].
    Ping {
        /// Echoed in the pong — the client's correlation id.
        nonce: u64,
    },
    /// Administrative: put the server into draining mode (accepted jobs
    /// finish, new submissions answer [`ErrorCode::Draining`]).
    Drain,
    /// The job was **accepted**: it now counts as an accepted job and
    /// will be answered — by a result or a typed error — even if the
    /// server drains. Always precedes the job's result on the wire.
    Ack {
        /// The accepted request.
        req: u64,
    },
    /// A completed f64 job's results, bit-exact.
    ResultF64 {
        /// The completed request.
        req: u64,
        /// Result tensor, same length as the submission.
        data: Vec<f64>,
    },
    /// A completed f32 job's results, bit-exact.
    ResultF32 {
        /// The completed request.
        req: u64,
        /// Result tensor, same length as the submission.
        data: Vec<f32>,
    },
    /// A typed failure. `req` names the failed request, or 0 for
    /// connection-level errors ([`ErrorCode::Protocol`]).
    Error {
        /// The failed request (0 = the connection itself).
        req: u64,
        /// What went wrong.
        code: ErrorCode,
        /// Code-specific detail (function id, retry hint…).
        detail: u32,
    },
    /// Health answer: the shard's drain state and queue load, plus a
    /// telemetry tail (queued jobs, flushes, eval p99) that older peers
    /// simply omit — the decoder accepts both the legacy 25-byte body
    /// (tail reads as zeros) and the current 49-byte one, so mixed
    /// protocol versions keep health-checking each other.
    Pong {
        /// The ping's nonce, echoed.
        nonce: u64,
        /// Whether the server is draining (no new admissions).
        draining: bool,
        /// Pending elements in the serving queue — the load signal.
        queued_elems: u64,
        /// Wire jobs accepted but not yet answered on this server.
        inflight: u64,
        /// Pending jobs (not elements) in the serving queue.
        queued_jobs: u64,
        /// Flush units dispatched since the server started (zero when
        /// the server runs without observability).
        flushes: u64,
        /// p99 backend evaluation time in microseconds (zero without
        /// observability).
        eval_p99_us: u64,
    },
    /// Ask the server for its full metrics snapshot; answered by
    /// [`Frame::Stats`].
    StatsRequest {
        /// Echoed in the stats reply — the client's correlation id.
        nonce: u64,
    },
    /// The server's metrics snapshot as an opaque, versioned
    /// `flexsfu-obs` blob ([`flexsfu_obs::MetricsSnapshot::encode`]) —
    /// the codec only frames it, so the snapshot format can evolve
    /// independently of the wire protocol.
    Stats {
        /// The request's nonce, echoed.
        nonce: u64,
        /// The encoded snapshot (empty snapshot when the server runs
        /// without observability).
        snapshot: Vec<u8>,
    },
}

mod kind {
    pub const SUBMIT_F64: u8 = 0x01;
    pub const SUBMIT_F32: u8 = 0x02;
    pub const PING: u8 = 0x03;
    pub const DRAIN: u8 = 0x04;
    pub const STATS_REQUEST: u8 = 0x05;
    pub const ACK: u8 = 0x81;
    pub const RESULT_F64: u8 = 0x82;
    pub const RESULT_F32: u8 = 0x83;
    pub const ERROR: u8 = 0x84;
    pub const PONG: u8 = 0x85;
    pub const STATS: u8 = 0x86;
}

/// Why a byte sequence failed to decode. Every variant is a clean,
/// typed rejection — malformed input never panics the codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds [`MAX_PAYLOAD`]; rejected before any
    /// allocation.
    Oversized {
        /// The claimed payload length.
        len: u32,
    },
    /// A zero-length payload (no kind byte).
    EmptyPayload,
    /// The kind byte names no known frame.
    UnknownKind(u8),
    /// The payload ended before the kind's fixed fields or declared
    /// element count were satisfied.
    Truncated {
        /// Kind of the truncated frame.
        kind: u8,
        /// Bytes the kind's fields required.
        need: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The payload carries bytes past the kind's declared end — a
    /// framing desync, rejected rather than silently ignored.
    TrailingBytes {
        /// Kind of the over-long frame.
        kind: u8,
        /// Surplus byte count.
        extra: usize,
    },
    /// An [`Frame::Error`] frame carried an unassigned code byte.
    BadErrorCode(u8),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Oversized { len } => {
                write!(f, "frame length {len} exceeds the {MAX_PAYLOAD}-byte cap")
            }
            Self::EmptyPayload => write!(f, "empty frame payload (no kind byte)"),
            Self::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            Self::Truncated { kind, need, got } => {
                write!(
                    f,
                    "kind {kind:#04x} frame truncated: need {need}, got {got}"
                )
            }
            Self::TrailingBytes { kind, extra } => {
                write!(f, "kind {kind:#04x} frame has {extra} trailing bytes")
            }
            Self::BadErrorCode(c) => write!(f, "unassigned error code {c}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Little-endian field writers over the output buffer.
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Little-endian field readers; `None` = not enough bytes.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }
}

impl Frame {
    /// Appends the length-prefixed encoding of `self` to `out`.
    ///
    /// # Panics
    ///
    /// Panics if the frame's payload would exceed [`MAX_PAYLOAD`] — the
    /// encoder's callers size tensors from real requests, which the
    /// serving bound already caps far below it.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let len_at = out.len();
        put_u32(out, 0); // patched below
        match self {
            Self::SubmitF64 {
                req,
                func,
                data,
                trace,
            } => {
                out.push(kind::SUBMIT_F64);
                put_u64(out, *req);
                put_u32(out, *func);
                put_u32(out, u32::try_from(data.len()).expect("tensor fits u32"));
                for v in data {
                    put_u64(out, v.to_bits());
                }
                if let Some(id) = trace {
                    put_u64(out, *id);
                }
            }
            Self::SubmitF32 {
                req,
                func,
                data,
                trace,
            } => {
                out.push(kind::SUBMIT_F32);
                put_u64(out, *req);
                put_u32(out, *func);
                put_u32(out, u32::try_from(data.len()).expect("tensor fits u32"));
                for v in data {
                    put_u32(out, v.to_bits());
                }
                if let Some(id) = trace {
                    put_u64(out, *id);
                }
            }
            Self::Ping { nonce } => {
                out.push(kind::PING);
                put_u64(out, *nonce);
            }
            Self::Drain => out.push(kind::DRAIN),
            Self::Ack { req } => {
                out.push(kind::ACK);
                put_u64(out, *req);
            }
            Self::ResultF64 { req, data } => {
                out.push(kind::RESULT_F64);
                put_u64(out, *req);
                put_u32(out, u32::try_from(data.len()).expect("tensor fits u32"));
                for v in data {
                    put_u64(out, v.to_bits());
                }
            }
            Self::ResultF32 { req, data } => {
                out.push(kind::RESULT_F32);
                put_u64(out, *req);
                put_u32(out, u32::try_from(data.len()).expect("tensor fits u32"));
                for v in data {
                    put_u32(out, v.to_bits());
                }
            }
            Self::Error { req, code, detail } => {
                out.push(kind::ERROR);
                put_u64(out, *req);
                out.push(*code as u8);
                put_u32(out, *detail);
            }
            Self::Pong {
                nonce,
                draining,
                queued_elems,
                inflight,
                queued_jobs,
                flushes,
                eval_p99_us,
            } => {
                out.push(kind::PONG);
                put_u64(out, *nonce);
                out.push(u8::from(*draining));
                put_u64(out, *queued_elems);
                put_u64(out, *inflight);
                put_u64(out, *queued_jobs);
                put_u64(out, *flushes);
                put_u64(out, *eval_p99_us);
            }
            Self::StatsRequest { nonce } => {
                out.push(kind::STATS_REQUEST);
                put_u64(out, *nonce);
            }
            Self::Stats { nonce, snapshot } => {
                out.push(kind::STATS);
                put_u64(out, *nonce);
                put_u32(
                    out,
                    u32::try_from(snapshot.len()).expect("snapshot fits u32"),
                );
                out.extend_from_slice(snapshot);
            }
        }
        let payload = u32::try_from(out.len() - len_at - HEADER_LEN).expect("payload fits u32");
        assert!(payload <= MAX_PAYLOAD, "frame exceeds MAX_PAYLOAD");
        out[len_at..len_at + HEADER_LEN].copy_from_slice(&payload.to_le_bytes());
    }

    /// The length-prefixed encoding of `self` as a fresh buffer.
    ///
    /// # Panics
    ///
    /// As [`Self::encode_into`].
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Decodes one frame's payload (the bytes after the length prefix).
    ///
    /// # Errors
    ///
    /// A typed [`FrameError`] for every malformed input — short fields,
    /// element counts disagreeing with the byte count, unknown kinds,
    /// unassigned error codes. Never panics.
    pub fn decode_payload(payload: &[u8]) -> Result<Self, FrameError> {
        let mut c = Cursor::new(payload);
        let Some(k) = c.u8() else {
            return Err(FrameError::EmptyPayload);
        };
        let truncated = |c: &Cursor<'_>, need: usize| FrameError::Truncated {
            kind: k,
            need: need + 1, // + the kind byte, so the message names payload bytes
            got: c.buf.len(),
        };
        let frame = match k {
            kind::SUBMIT_F64 | kind::SUBMIT_F32 => {
                let (Some(req), Some(func), Some(count)) = (c.u64(), c.u32(), c.u32()) else {
                    return Err(truncated(&c, 16));
                };
                let count = count as usize;
                let elem = if k == kind::SUBMIT_F64 { 8 } else { 4 };
                if c.remaining() < count * elem {
                    return Err(truncated(&c, 16 + count * elem));
                }
                let data64;
                let data32;
                if k == kind::SUBMIT_F64 {
                    data64 = Some(
                        (0..count)
                            .map(|_| f64::from_bits(c.u64().unwrap()))
                            .collect::<Vec<_>>(),
                    );
                    data32 = None;
                } else {
                    data64 = None;
                    data32 = Some(
                        (0..count)
                            .map(|_| f32::from_bits(c.u32().unwrap()))
                            .collect::<Vec<_>>(),
                    );
                }
                // Version tolerance (the `Pong` tail pattern): a v1
                // peer's submit body ends at the tensor; a tracing
                // peer appends one u64 trace id. A torn tail is still
                // truncated, surplus bytes still a desync.
                let trace = if c.remaining() == 0 {
                    None
                } else {
                    let Some(id) = c.u64() else {
                        return Err(truncated(&c, 16 + count * elem + 8));
                    };
                    Some(id)
                };
                match data64 {
                    Some(data) => Self::SubmitF64 {
                        req,
                        func,
                        data,
                        trace,
                    },
                    None => Self::SubmitF32 {
                        req,
                        func,
                        data: data32.expect("one lane is set"),
                        trace,
                    },
                }
            }
            kind::PING => {
                let Some(nonce) = c.u64() else {
                    return Err(truncated(&c, 8));
                };
                Self::Ping { nonce }
            }
            kind::DRAIN => Self::Drain,
            kind::ACK => {
                let Some(req) = c.u64() else {
                    return Err(truncated(&c, 8));
                };
                Self::Ack { req }
            }
            kind::RESULT_F64 | kind::RESULT_F32 => {
                let (Some(req), Some(count)) = (c.u64(), c.u32()) else {
                    return Err(truncated(&c, 12));
                };
                let count = count as usize;
                let elem = if k == kind::RESULT_F64 { 8 } else { 4 };
                if c.remaining() < count * elem {
                    return Err(truncated(&c, 12 + count * elem));
                }
                if k == kind::RESULT_F64 {
                    let data = (0..count)
                        .map(|_| f64::from_bits(c.u64().unwrap()))
                        .collect();
                    Self::ResultF64 { req, data }
                } else {
                    let data = (0..count)
                        .map(|_| f32::from_bits(c.u32().unwrap()))
                        .collect();
                    Self::ResultF32 { req, data }
                }
            }
            kind::ERROR => {
                let (Some(req), Some(code), Some(detail)) = (c.u64(), c.u8(), c.u32()) else {
                    return Err(truncated(&c, 13));
                };
                let code = ErrorCode::from_u8(code).ok_or(FrameError::BadErrorCode(code))?;
                Self::Error { req, code, detail }
            }
            kind::PONG => {
                let (Some(nonce), Some(draining), Some(queued_elems), Some(inflight)) =
                    (c.u64(), c.u8(), c.u64(), c.u64())
                else {
                    return Err(truncated(&c, 25));
                };
                // Version tolerance: a legacy peer's pong ends here; a
                // current peer appends the three telemetry u64s. Any
                // other length is still malformed (truncated tail here,
                // surplus bytes by the trailing check below).
                let (queued_jobs, flushes, eval_p99_us) = if c.remaining() == 0 {
                    (0, 0, 0)
                } else {
                    let (Some(j), Some(fl), Some(p)) = (c.u64(), c.u64(), c.u64()) else {
                        return Err(truncated(&c, 49));
                    };
                    (j, fl, p)
                };
                Self::Pong {
                    nonce,
                    draining: draining != 0,
                    queued_elems,
                    inflight,
                    queued_jobs,
                    flushes,
                    eval_p99_us,
                }
            }
            kind::STATS_REQUEST => {
                let Some(nonce) = c.u64() else {
                    return Err(truncated(&c, 8));
                };
                Self::StatsRequest { nonce }
            }
            kind::STATS => {
                let (Some(nonce), Some(len)) = (c.u64(), c.u32()) else {
                    return Err(truncated(&c, 12));
                };
                let len = len as usize;
                if c.remaining() < len {
                    return Err(truncated(&c, 12 + len));
                }
                let snapshot = c.take(len).unwrap().to_vec();
                Self::Stats { nonce, snapshot }
            }
            other => return Err(FrameError::UnknownKind(other)),
        };
        if c.remaining() > 0 {
            return Err(FrameError::TrailingBytes {
                kind: k,
                extra: c.remaining(),
            });
        }
        Ok(frame)
    }
}

/// Incremental frame reassembly over an arbitrarily chunked byte stream.
///
/// Feed whatever the socket produced with [`FrameReader::feed`] and
/// drain complete frames with [`FrameReader::next_frame`] — the reader
/// is correct under any split of the stream, down to one byte at a time
/// (pinned by the codec property suite). A length prefix past
/// [`MAX_PAYLOAD`] fails immediately, before buffering the claimed
/// bytes; after any error the stream is desynced and the connection
/// should close.
///
/// # Examples
///
/// ```
/// use flexsfu_wire::{Frame, FrameReader};
///
/// let frame = Frame::Ack { req: 7 };
/// let bytes = frame.encode();
/// let mut reader = FrameReader::new();
/// // Feed the encoding in two arbitrary chunks.
/// reader.feed(&bytes[..3]);
/// assert!(reader.next_frame().unwrap().is_none()); // header incomplete
/// reader.feed(&bytes[3..]);
/// assert_eq!(reader.next_frame().unwrap(), Some(frame));
/// ```
#[derive(Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw stream bytes for reassembly.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet drained as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete frame: `Ok(None)` while more bytes are
    /// needed, `Ok(Some(frame))` per completed frame (call in a loop —
    /// one `feed` can complete several).
    ///
    /// # Errors
    ///
    /// A typed [`FrameError`] on an oversized length prefix or a
    /// malformed payload; the stream is desynced afterwards and the
    /// connection should be closed.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..HEADER_LEN].try_into().unwrap());
        if len > MAX_PAYLOAD {
            return Err(FrameError::Oversized { len });
        }
        let total = HEADER_LEN + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let frame = Frame::decode_payload(&self.buf[HEADER_LEN..total])?;
        self.buf.drain(..total);
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::SubmitF64 {
                req: 1,
                func: 2,
                data: vec![0.5, -1.25, f64::NAN, f64::INFINITY],
                trace: None,
            },
            Frame::SubmitF64 {
                req: 8,
                func: 2,
                data: vec![2.5],
                trace: Some(4242),
            },
            Frame::SubmitF32 {
                req: u64::MAX,
                func: 0,
                data: vec![1.5f32, f32::NEG_INFINITY],
                trace: None,
            },
            Frame::SubmitF32 {
                req: 11,
                func: 1,
                data: vec![],
                trace: Some(u64::MAX),
            },
            Frame::Ping { nonce: 99 },
            Frame::Drain,
            Frame::Ack { req: 3 },
            Frame::ResultF64 {
                req: 1,
                data: vec![],
            },
            Frame::ResultF32 {
                req: 9,
                data: vec![-0.0f32],
            },
            Frame::Error {
                req: 4,
                code: ErrorCode::RetryAfter,
                detail: 250,
            },
            Frame::Pong {
                nonce: 99,
                draining: true,
                queued_elems: 1_000,
                inflight: 3,
                queued_jobs: 12,
                flushes: 77,
                eval_p99_us: 450,
            },
            Frame::StatsRequest { nonce: 41 },
            Frame::Stats {
                nonce: 41,
                snapshot: vec![0xDE, 0xAD, 0xBE, 0xEF],
            },
            Frame::Stats {
                nonce: 42,
                snapshot: vec![],
            },
        ]
    }

    /// Bitwise frame equality — `PartialEq` on floats would call NaN
    /// payloads unequal, and the codec's contract is bit-exactness.
    fn assert_frames_bitwise_eq(got: &Frame, want: &Frame) {
        match (got, want) {
            (
                Frame::SubmitF64 {
                    req: r1,
                    func: f1,
                    data: d1,
                    trace: t1,
                },
                Frame::SubmitF64 {
                    req: r2,
                    func: f2,
                    data: d2,
                    trace: t2,
                },
            ) => {
                assert_eq!((r1, f1, t1), (r2, f2, t2));
                assert_eq!(d1.len(), d2.len());
                assert!(d1.iter().zip(d2).all(|(a, b)| a.to_bits() == b.to_bits()));
            }
            (Frame::ResultF64 { req: r1, data: d1 }, Frame::ResultF64 { req: r2, data: d2 }) => {
                assert_eq!(r1, r2);
                assert!(d1.iter().zip(d2).all(|(a, b)| a.to_bits() == b.to_bits()));
            }
            _ => assert_eq!(got, want),
        }
    }

    #[test]
    fn every_kind_round_trips() {
        for frame in sample_frames() {
            let bytes = frame.encode();
            let mut r = FrameReader::new();
            r.feed(&bytes);
            let got = r.next_frame().unwrap().expect("complete frame");
            assert_frames_bitwise_eq(&got, &frame);
            assert_eq!(r.buffered(), 0);
            assert!(r.next_frame().unwrap().is_none());
        }
    }

    #[test]
    fn oversized_prefix_rejected_before_buffering() {
        let mut r = FrameReader::new();
        r.feed(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert_eq!(
            r.next_frame(),
            Err(FrameError::Oversized {
                len: MAX_PAYLOAD + 1
            })
        );
        let mut r = FrameReader::new();
        r.feed(&u32::MAX.to_le_bytes());
        assert!(matches!(r.next_frame(), Err(FrameError::Oversized { .. })));
    }

    #[test]
    fn malformed_payloads_fail_typed() {
        assert_eq!(Frame::decode_payload(&[]), Err(FrameError::EmptyPayload));
        assert_eq!(
            Frame::decode_payload(&[0x77]),
            Err(FrameError::UnknownKind(0x77))
        );
        // Ack with a short req field.
        assert!(matches!(
            Frame::decode_payload(&[kind::ACK, 1, 2]),
            Err(FrameError::Truncated { .. })
        ));
        // Ack with trailing garbage.
        let mut p = vec![kind::ACK];
        p.extend_from_slice(&7u64.to_le_bytes());
        p.push(0xFF);
        assert_eq!(
            Frame::decode_payload(&p),
            Err(FrameError::TrailingBytes {
                kind: kind::ACK,
                extra: 1
            })
        );
        // Error frame with an unassigned code.
        let mut p = vec![kind::ERROR];
        p.extend_from_slice(&0u64.to_le_bytes());
        p.push(200);
        p.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(
            Frame::decode_payload(&p),
            Err(FrameError::BadErrorCode(200))
        );
        // Submit whose element count outruns its bytes.
        let mut p = vec![kind::SUBMIT_F64];
        p.extend_from_slice(&1u64.to_le_bytes());
        p.extend_from_slice(&0u32.to_le_bytes());
        p.extend_from_slice(&1000u32.to_le_bytes());
        assert!(matches!(
            Frame::decode_payload(&p),
            Err(FrameError::Truncated { .. })
        ));
        // Stats whose declared blob length outruns its bytes.
        let mut p = vec![kind::STATS];
        p.extend_from_slice(&7u64.to_le_bytes());
        p.extend_from_slice(&100u32.to_le_bytes());
        p.push(0);
        assert!(matches!(
            Frame::decode_payload(&p),
            Err(FrameError::Truncated { .. })
        ));
    }

    /// The pre-telemetry 25-byte pong body must keep decoding (tail
    /// fields read as zero), while partially-present tails stay typed
    /// errors — the version-tolerance contract.
    #[test]
    fn legacy_pong_body_decodes_with_zero_tail() {
        let mut legacy = vec![kind::PONG];
        legacy.extend_from_slice(&9u64.to_le_bytes());
        legacy.push(1);
        legacy.extend_from_slice(&500u64.to_le_bytes());
        legacy.extend_from_slice(&2u64.to_le_bytes());
        assert_eq!(
            Frame::decode_payload(&legacy),
            Ok(Frame::Pong {
                nonce: 9,
                draining: true,
                queued_elems: 500,
                inflight: 2,
                queued_jobs: 0,
                flushes: 0,
                eval_p99_us: 0,
            })
        );
        // A torn telemetry tail is truncated, not silently zeroed.
        let mut torn = legacy.clone();
        torn.extend_from_slice(&3u64.to_le_bytes());
        assert!(matches!(
            Frame::decode_payload(&torn),
            Err(FrameError::Truncated { .. })
        ));
        // Surplus bytes past the full tail are still a desync.
        let full = Frame::Pong {
            nonce: 9,
            draining: true,
            queued_elems: 500,
            inflight: 2,
            queued_jobs: 3,
            flushes: 4,
            eval_p99_us: 5,
        }
        .encode();
        let mut surplus = full[HEADER_LEN..].to_vec();
        surplus.push(0xFF);
        assert!(matches!(
            Frame::decode_payload(&surplus),
            Err(FrameError::TrailingBytes { .. })
        ));
    }

    /// Mixed v1/v2 `Submit` interop, both directions.
    ///
    /// Old client → new server: a hand-built legacy body (no trace
    /// tail) decodes cleanly with `trace: None`. New client → old
    /// server: an *untraced* v2 submit encodes byte-identically to the
    /// v1 layout, so a v1 decoder (for which the tensor must consume
    /// the whole body) accepts it unchanged — no trace id, no error.
    #[test]
    fn submit_v1_v2_interop_decodes_cleanly() {
        // v1 body, by hand: req ‖ func ‖ count ‖ payload, no tail.
        for (k, elems) in [(kind::SUBMIT_F64, 8), (kind::SUBMIT_F32, 4)] {
            let mut legacy = vec![k];
            legacy.extend_from_slice(&21u64.to_le_bytes());
            legacy.extend_from_slice(&3u32.to_le_bytes());
            legacy.extend_from_slice(&2u32.to_le_bytes());
            legacy.extend_from_slice(&vec![0u8; 2 * elems]);
            match Frame::decode_payload(&legacy).expect("legacy submit decodes") {
                Frame::SubmitF64 {
                    req, func, trace, ..
                }
                | Frame::SubmitF32 {
                    req, func, trace, ..
                } => {
                    assert_eq!((req, func), (21, 3));
                    assert_eq!(trace, None, "v1 body must not invent a trace id");
                }
                other => panic!("wrong frame {other:?}"),
            }
        }
        // An untraced v2 submit is byte-identical to the v1 encoding —
        // the exact property that lets a v1 server accept it.
        let v2_untraced = Frame::SubmitF64 {
            req: 21,
            func: 3,
            data: vec![1.0, 2.0],
            trace: None,
        }
        .encode();
        let mut v1 = vec![kind::SUBMIT_F64];
        v1.extend_from_slice(&21u64.to_le_bytes());
        v1.extend_from_slice(&3u32.to_le_bytes());
        v1.extend_from_slice(&2u32.to_le_bytes());
        v1.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
        v1.extend_from_slice(&2.0f64.to_bits().to_le_bytes());
        assert_eq!(&v2_untraced[HEADER_LEN..], &v1[..]);

        // A torn trace tail is a typed truncation, not a silent None…
        let mut torn = v1.clone();
        torn.extend_from_slice(&[0xAA, 0xBB, 0xCC]);
        assert!(matches!(
            Frame::decode_payload(&torn),
            Err(FrameError::Truncated { .. })
        ));
        // …and surplus past a full tail is still a desync.
        let mut surplus = v1.clone();
        surplus.extend_from_slice(&7u64.to_le_bytes());
        surplus.push(0xFF);
        assert!(matches!(
            Frame::decode_payload(&surplus),
            Err(FrameError::TrailingBytes { .. })
        ));
    }

    /// `Frame::Stats` under torn/truncated delivery: every prefix of
    /// the encoding is either "need more bytes" at the reader layer or
    /// a typed truncation at the payload layer — never a panic, never
    /// a partial frame.
    #[test]
    fn stats_frame_survives_torn_delivery() {
        let frame = Frame::Stats {
            nonce: 77,
            snapshot: vec![1, 2, 3, 4, 5, 6, 7, 8, 9],
        };
        let bytes = frame.encode();
        // Reader: any torn prefix just waits for more bytes.
        for cut in 0..bytes.len() {
            let mut r = FrameReader::new();
            r.feed(&bytes[..cut]);
            assert_eq!(r.next_frame(), Ok(None), "cut {cut}");
            r.feed(&bytes[cut..]);
            assert_eq!(r.next_frame(), Ok(Some(frame.clone())), "resume {cut}");
        }
        // Payload decoder: every truncation point is a typed error.
        let payload = &bytes[HEADER_LEN..];
        for cut in 1..payload.len() {
            assert!(
                matches!(
                    Frame::decode_payload(&payload[..cut]),
                    Err(FrameError::Truncated { .. })
                ),
                "cut {cut}"
            );
        }
        // A blob length claiming more than the body delivers is torn…
        let mut short = vec![kind::STATS];
        short.extend_from_slice(&77u64.to_le_bytes());
        short.extend_from_slice(&9u32.to_le_bytes());
        short.extend_from_slice(&[1, 2, 3]);
        assert!(matches!(
            Frame::decode_payload(&short),
            Err(FrameError::Truncated { .. })
        ));
        // …and bytes past the declared blob are trailing.
        let mut long = bytes[HEADER_LEN..].to_vec();
        long.push(0);
        assert_eq!(
            Frame::decode_payload(&long),
            Err(FrameError::TrailingBytes {
                kind: kind::STATS,
                extra: 1
            })
        );
    }
}
