//! End-to-end telemetry over the wire: a server started with
//! observability must answer pings with a live telemetry tail, answer
//! stats requests with a decodable registry snapshot whose serving-tier
//! series match the traffic that was actually served, and stamp sampled
//! spans all the way to the wire write.
//!
//! Frame/byte counters are asserted as lower bounds only: the scrape
//! traffic that reads them is itself counted, so exact equality would
//! chase its own tail.

use flexsfu_core::init::uniform_pwl;
use flexsfu_funcs::Gelu;
use flexsfu_obs::{MetricsRegistry, MonotonicClock, SampleRate, SpanRecorder, Stage};
use flexsfu_serve::obs::{M_FLUSH_UNITS, M_SUBMITS};
use flexsfu_serve::testkit::with_watchdog;
use flexsfu_serve::{FunctionRegistry, PwlServer, ServeConfig, ServeObs};
use flexsfu_wire::obs::{M_ACK_TO_RESULT_NS, M_BYTES_IN, M_ERRORS, M_FRAMES_IN, M_FRAMES_OUT};
use flexsfu_wire::{WireClient, WireConfig, WireError, WireServer};
use std::sync::Arc;
use std::time::{Duration, Instant};

const JOBS: usize = 24;

#[test]
fn wire_telemetry_end_to_end() {
    with_watchdog(60, "wire_telemetry_end_to_end", || {
        let registry = Arc::new(FunctionRegistry::new());
        let gelu = registry.register("gelu", &uniform_pwl(&Gelu, 16, (-8.0, 8.0)));

        let metrics = Arc::new(MetricsRegistry::new());
        let spans = Arc::new(SpanRecorder::new(
            1024,
            SampleRate::ALL,
            Arc::new(MonotonicClock::new()),
        ));
        let obs = ServeObs::new(Arc::clone(&metrics), Arc::clone(&spans));

        let server =
            PwlServer::start_with_obs(Arc::clone(&registry), ServeConfig::default(), obs.clone());
        let wire = WireServer::start_local_with_obs(server.handle(), WireConfig::default(), obs)
            .expect("bind wire server");
        let client = WireClient::connect(wire.local_addr()).expect("connect");

        // Serve real traffic, then one typed refusal for the error series.
        let tickets: Vec<_> = (0..JOBS)
            .map(|i| {
                client
                    .submit_f64(gelu.0, vec![0.25 * i as f64; 16])
                    .expect("submit")
            })
            .collect();
        for t in tickets {
            assert_eq!(t.wait().expect("result").len(), 16);
        }
        assert_eq!(
            client.submit_f64(9_999, vec![1.0]).expect("write").wait(),
            Err(WireError::UnknownFunction(9_999))
        );

        // The pong telemetry tail reports the serving it fronted.
        let health = client.ping(Duration::from_secs(5)).expect("pong");
        assert!(!health.draining);
        assert!(
            health.flushes >= 1,
            "served traffic must have flushed at least once, got {}",
            health.flushes
        );

        // The scrape decodes and its serving-tier series match the
        // traffic: every submit counted, every accepted job's
        // ack->answer window recorded.
        let snap = client.scrape(Duration::from_secs(5)).expect("scrape");
        assert_eq!(snap.counter(M_SUBMITS), Some(JOBS as u64));
        assert!(snap.counter(M_FLUSH_UNITS).unwrap_or(0) >= 1);
        let ack_hist = snap
            .histogram(M_ACK_TO_RESULT_NS)
            .expect("ack->result histogram present");
        assert_eq!(ack_hist.count(), JOBS as u64);
        assert_eq!(
            snap.counter(&flexsfu_obs::labeled(
                M_ERRORS,
                &[("code", "unknown_function")]
            )),
            Some(1)
        );
        // Wire totals are lower bounds (the scrape itself is counted):
        // at least one inbound frame per submit plus the ping, and at
        // least ack+result out per job.
        assert!(snap.counter(M_FRAMES_IN).unwrap_or(0) > JOBS as u64);
        assert!(snap.counter(M_FRAMES_OUT).unwrap_or(0) >= 2 * JOBS as u64);
        assert!(snap.counter(M_BYTES_IN).unwrap_or(0) > 0);

        // Every span (sampling = ALL) runs submit -> wire write in
        // stage order. The wire-write stamp lands just after the result
        // frame is written, so give the pump a moment to finish.
        let deadline = Instant::now() + Duration::from_secs(10);
        let done = loop {
            let dump = spans.dump();
            if dump.len() >= JOBS && dump.iter().all(|s| s.stage(Stage::WireWrite).is_some()) {
                break dump;
            }
            assert!(Instant::now() < deadline, "spans never finished stamping");
            std::thread::sleep(Duration::from_millis(10));
        };
        for span in &done {
            let submit = span.stage(Stage::Submit).expect("submit stamped");
            let write = span.stage(Stage::WireWrite).expect("wire write stamped");
            assert!(submit <= write, "stages must be causally ordered");
            assert!(span.stage(Stage::BackendEval).is_some());
            assert!(span.stage(Stage::ScatterBack).is_some());
        }

        drop(client);
        wire.shutdown();
        server.shutdown();
    });
}

/// A server started *without* observability keeps the legacy behavior:
/// zero telemetry tail and an empty (but well-formed) stats snapshot.
#[test]
fn unobserved_server_answers_zero_telemetry() {
    with_watchdog(60, "unobserved_server_answers_zero_telemetry", || {
        let registry = Arc::new(FunctionRegistry::new());
        let gelu = registry.register("gelu", &uniform_pwl(&Gelu, 16, (-8.0, 8.0)));
        let server = PwlServer::start(Arc::clone(&registry), ServeConfig::default());
        let wire =
            WireServer::start_local(server.handle(), WireConfig::default()).expect("bind wire");
        let client = WireClient::connect(wire.local_addr()).expect("connect");

        let t = client.submit_f64(gelu.0, vec![0.5; 8]).expect("submit");
        assert_eq!(t.wait().expect("result").len(), 8);

        let health = client.ping(Duration::from_secs(5)).expect("pong");
        assert_eq!(health.flushes, 0);
        assert_eq!(health.eval_p99_us, 0);

        let snap = client.scrape(Duration::from_secs(5)).expect("scrape");
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());

        drop(client);
        wire.shutdown();
        server.shutdown();
    });
}
