//! Integration battery for the TCP wire tier: bit-identity over the
//! socket, out-of-order multiplexing, backpressure as `RetryAfter`,
//! fault-injected failure paths, torn-frame/garbage handling without
//! panics or connection leaks, and drain semantics.
//!
//! Every test runs under the serve testkit's watchdog so a protocol
//! deadlock aborts with a named test instead of hanging CI.

use flexsfu_core::init::uniform_pwl;
use flexsfu_core::PwlEvaluator;
use flexsfu_funcs::{Gelu, Tanh};
use flexsfu_serve::testkit::{with_watchdog, Faults};
use flexsfu_serve::{FlushPolicy, FunctionRegistry, PwlServer, ServeConfig};
use flexsfu_wire::{Frame, WireClient, WireConfig, WireError, WireServer};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One serving stack + wire front on an ephemeral port.
struct Stack {
    registry: Arc<FunctionRegistry>,
    server: PwlServer,
    wire: WireServer,
}

fn stack(config: &ServeConfig, faults: Option<Arc<Faults>>) -> Stack {
    let registry = Arc::new(FunctionRegistry::new());
    registry.register("gelu", &uniform_pwl(&Gelu, 24, (-8.0, 8.0)));
    registry.register("tanh", &uniform_pwl(&Tanh, 24, (-6.0, 6.0)));
    let server = match faults {
        Some(f) => PwlServer::start_with_faults(Arc::clone(&registry), config.clone(), f),
        None => PwlServer::start(Arc::clone(&registry), config.clone()),
    };
    let wire = WireServer::start_local(server.handle(), WireConfig::default())
        .expect("bind ephemeral wire server");
    Stack {
        registry,
        server,
        wire,
    }
}

/// A quick serving config: tiny flush deadline so tests are not gated
/// on the 500µs default times many round trips.
fn quick_config() -> ServeConfig {
    ServeConfig {
        flush_elements: 256,
        flush_interval: Duration::from_micros(200),
        queue_elements: 4096,
        eval_workers: 1,
    }
}

fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed | 1;
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

/// A request tensor mixing ordinary values with the adversarial floats
/// whose bit patterns the wire must not disturb.
fn request_f64(next: &mut impl FnMut() -> u64, len: usize) -> Vec<f64> {
    (0..len)
        .map(|_| match next() % 10 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => -0.0,
            _ => (next() % 2_000) as f64 / 100.0 - 10.0,
        })
        .collect()
}

#[test]
fn wire_results_bit_identical_to_direct_eval_both_precisions() {
    with_watchdog(
        60,
        "wire_results_bit_identical_to_direct_eval_both_precisions",
        || {
            let stack = stack(&quick_config(), None);
            let client = WireClient::connect(stack.wire.local_addr()).unwrap();
            let mut next = xorshift(0x5eed);

            for func in [0u32, 1u32] {
                let id = flexsfu_serve::FunctionId(func);
                // f64 lane.
                let xs = request_f64(&mut next, 97);
                let ticket = client.submit_f64(func, xs.clone()).unwrap();
                let ys = ticket.wait().unwrap();
                let direct = stack.registry.engine(id).unwrap().engine().eval_batch(&xs);
                assert_eq!(ys.len(), direct.len());
                for (a, b) in ys.iter().zip(&direct) {
                    assert_eq!(a.to_bits(), b.to_bits(), "f64 bit divergence over the wire");
                }
                // f32 lane.
                let xs32: Vec<f32> = xs.iter().map(|&x| x as f32).collect();
                let t32 = client.submit_f32(func, xs32.clone()).unwrap();
                let ys32 = t32.wait().unwrap();
                let direct32: Vec<f32> = stack
                    .registry
                    .engine_f32(id)
                    .unwrap()
                    .engine()
                    .eval_batch(&xs32);
                for (a, b) in ys32.iter().zip(&direct32) {
                    assert_eq!(a.to_bits(), b.to_bits(), "f32 bit divergence over the wire");
                }
            }
            drop(client);
            stack.wire.shutdown();
            stack.server.shutdown();
        },
    );
}

#[test]
fn responses_multiplex_out_of_order() {
    with_watchdog(60, "responses_multiplex_out_of_order", || {
        let stack = stack(&quick_config(), None);
        // Function 0 flushes only after a long deadline; function 1
        // flushes almost immediately — so a job on 0 submitted *first*
        // completes *after* a job on 1, and the connection must carry
        // the reordered responses.
        stack
            .registry
            .set_policy(
                flexsfu_serve::FunctionId(0),
                Some(FlushPolicy {
                    max_elems: 1_000_000,
                    deadline: Duration::from_millis(400),
                }),
            )
            .unwrap();
        let client = WireClient::connect(stack.wire.local_addr()).unwrap();

        let slow = client.submit_f64(0, vec![0.25; 8]).unwrap();
        let fast = client.submit_f64(1, vec![0.5; 8]).unwrap();

        let t0 = Instant::now();
        let fast_ys = fast.wait().unwrap();
        let fast_done = t0.elapsed();
        let slow_ys = slow.wait().unwrap();
        let slow_done = t0.elapsed();

        assert_eq!(fast_ys.len(), 8);
        assert_eq!(slow_ys.len(), 8);
        assert!(
            fast_done < slow_done,
            "fast response should overtake the earlier slow submission \
             (fast {fast_done:?}, slow {slow_done:?})"
        );
        // The slow flush really was deadline-gated, i.e. the fast one
        // genuinely overtook it rather than both racing out together.
        assert!(
            slow_done >= Duration::from_millis(300),
            "slow {slow_done:?}"
        );

        drop(client);
        stack.wire.shutdown();
        stack.server.shutdown();
    });
}

#[test]
fn queue_full_surfaces_retry_after_hint() {
    with_watchdog(60, "queue_full_surfaces_retry_after_hint", || {
        let faults = Faults::new();
        let stack = stack(&quick_config(), Some(Arc::clone(&faults)));
        let client = WireClient::connect(stack.wire.local_addr()).unwrap();

        faults.force_queue_full(1);
        let bounced = client.submit_f64(0, vec![0.5; 4]).unwrap();
        match bounced.wait() {
            Err(WireError::RetryAfter { hint }) => {
                assert_eq!(hint, WireConfig::default().retry_after);
            }
            other => panic!("expected RetryAfter, got {other:?}"),
        }

        // The hint is honest: an immediate resubmit succeeds (the fault
        // token is spent).
        let retry = client.submit_f64(0, vec![0.5; 4]).unwrap();
        assert_eq!(retry.wait().unwrap().len(), 4);

        drop(client);
        stack.wire.shutdown();
        stack.server.shutdown();
    });
}

#[test]
fn dropped_reply_answers_typed_internal_error() {
    with_watchdog(60, "dropped_reply_answers_typed_internal_error", || {
        let faults = Faults::new();
        let stack = stack(&quick_config(), Some(Arc::clone(&faults)));
        let client = WireClient::connect(stack.wire.local_addr()).unwrap();

        faults.drop_replies(1);
        let doomed = client.submit_f64(0, vec![0.5; 4]).unwrap();
        // The job was accepted — the server must still answer it, as a
        // typed internal error rather than silence.
        assert_eq!(doomed.wait(), Err(WireError::ServerInternal));
        // The gauge decrements just after the reply is written, so give
        // it a bounded moment to settle.
        let leftover = settle(Duration::from_secs(10), || stack.wire.inflight() as usize);
        assert_eq!(leftover, 0, "answered jobs leave the gauge");

        let fine = client.submit_f64(0, vec![0.5; 4]).unwrap();
        assert_eq!(fine.wait().unwrap().len(), 4);

        drop(client);
        stack.wire.shutdown();
        stack.server.shutdown();
    });
}

/// Polls a gauge down to an expected value — socket teardown is
/// asynchronous, so leak checks need a bounded settle loop (the
/// watchdog still bounds the whole test).
fn settle(deadline: Duration, mut read: impl FnMut() -> usize) -> usize {
    let end = Instant::now() + deadline;
    loop {
        let v = read();
        if v == 0 || Instant::now() >= end {
            return v;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn garbage_and_torn_frames_reject_typed_without_leaking_connections() {
    with_watchdog(
        60,
        "garbage_and_torn_frames_reject_typed_without_leaking_connections",
        || {
            let stack = stack(&quick_config(), None);
            let addr = stack.wire.local_addr();

            // Case 1: pure garbage. The server answers a typed protocol
            // error on req 0 and closes.
            let mut raw = TcpStream::connect(addr).unwrap();
            raw.write_all(&[0xDE; 64]).unwrap();
            let mut reply = Vec::new();
            raw.read_to_end(&mut reply).unwrap(); // EOF = server closed
            let mut reader = flexsfu_wire::FrameReader::new();
            reader.feed(&reply);
            match reader.next_frame().unwrap() {
                Some(Frame::Error { req: 0, code, .. }) => {
                    assert_eq!(code, flexsfu_wire::frame::ErrorCode::Protocol);
                }
                other => panic!("expected protocol error frame, got {other:?}"),
            }
            drop(raw);

            // Case 2: a torn frame — a valid header promising more bytes
            // than ever arrive, then the peer vanishes. No reply owed; the
            // server just retires the connection without panicking.
            let frame = Frame::SubmitF64 {
                req: 1,
                func: 0,
                data: vec![1.0; 64],
                trace: None,
            };
            let bytes = frame.encode();
            let mut torn = TcpStream::connect(addr).unwrap();
            torn.write_all(&bytes[..bytes.len() / 2]).unwrap();
            drop(torn);

            // Case 3: an oversized length prefix.
            let mut oversized = TcpStream::connect(addr).unwrap();
            oversized.write_all(&u32::MAX.to_le_bytes()).unwrap();
            let mut reply = Vec::new();
            oversized.read_to_end(&mut reply).unwrap();
            assert!(!reply.is_empty(), "oversized prefix earns a typed reply");
            drop(oversized);

            // No connection leaked: the gauge settles back to zero.
            let leaked = settle(Duration::from_secs(10), || stack.wire.active_connections());
            assert_eq!(leaked, 0, "connections leaked after malformed input");

            // And the server still serves.
            let client = WireClient::connect(addr).unwrap();
            let t = client.submit_f64(0, vec![0.5; 4]).unwrap();
            assert_eq!(t.wait().unwrap().len(), 4);
            drop(client);

            stack.wire.shutdown();
            stack.server.shutdown();
        },
    );
}

#[test]
fn drain_refuses_new_submits_and_answers_accepted_jobs() {
    with_watchdog(
        60,
        "drain_refuses_new_submits_and_answers_accepted_jobs",
        || {
            let faults = Faults::new();
            let stack = stack(&quick_config(), Some(Arc::clone(&faults)));
            let client = WireClient::connect(stack.wire.local_addr()).unwrap();

            // Hold results back long enough that the drain races real
            // in-flight work.
            faults.delay_flushes(Duration::from_millis(50));
            let inflight: Vec<_> = (0..8)
                .map(|_| client.submit_f64(0, vec![0.5; 16]).unwrap())
                .collect();

            // Drain over the wire (the protocol path, not the local call).
            client.drain().unwrap();
            let health = client.ping(Duration::from_secs(5)).unwrap();
            assert!(health.draining, "pong must advertise the drain");

            // New submissions bounce with the typed drain error.
            let refused = client.submit_f64(0, vec![0.5; 4]).unwrap();
            assert_eq!(refused.wait(), Err(WireError::Draining));

            // Every accepted job is still answered, correctly.
            for t in inflight {
                assert!(t.was_acked(), "accepted jobs were acked before drain");
                assert_eq!(t.wait().unwrap().len(), 16);
            }
            assert_eq!(
                settle(Duration::from_secs(10), || stack.wire.inflight() as usize),
                0
            );

            drop(client);
            stack.wire.shutdown();
            stack.server.shutdown();
        },
    );
}
