//! Property battery for the wire frame codec.
//!
//! The codec's contract, pinned here over sampled inputs:
//!
//! * **Round-trip identity** — any frame survives encode → decode with
//!   its bytes (and therefore its float bit patterns) intact.
//! * **Reassembly identity** — a stream of frames re-fed to a
//!   [`FrameReader`] in arbitrary chunks, down to one byte at a time,
//!   yields the same frames in the same order.
//! * **Totality** — oversized length prefixes, truncated payloads and
//!   arbitrary garbage all fail with a *typed* [`FrameError`], never a
//!   panic and never a runaway allocation.

use flexsfu_wire::frame::ErrorCode;
use flexsfu_wire::{Frame, FrameError, FrameReader, MAX_PAYLOAD};
use proptest::prelude::*;

/// Deterministically builds one frame of any kind from sampled raw
/// material. `sel` picks the kind; `bits` becomes the tensor (as raw
/// IEEE bit patterns, so NaNs and infinities appear organically).
fn build_frame(sel: u8, req: u64, func: u32, bits: &[u64]) -> Frame {
    let f64s = || bits.iter().map(|&b| f64::from_bits(b)).collect::<Vec<_>>();
    let f32s = || {
        bits.iter()
            .map(|&b| f32::from_bits(b as u32))
            .collect::<Vec<_>>()
    };
    const CODES: [ErrorCode; 7] = [
        ErrorCode::UnknownFunction,
        ErrorCode::PrecisionUnsupported,
        ErrorCode::RetryAfter,
        ErrorCode::Draining,
        ErrorCode::ShuttingDown,
        ErrorCode::Internal,
        ErrorCode::Protocol,
    ];
    match sel % 11 {
        // The trace tail is derived from the inputs so the roundtrip
        // property covers traced and untraced (v1-shaped) submits alike.
        0 => Frame::SubmitF64 {
            req,
            func,
            data: f64s(),
            trace: (func % 2 == 1).then_some(req ^ u64::from(func)),
        },
        1 => Frame::SubmitF32 {
            req,
            func,
            data: f32s(),
            trace: (req % 2 == 1).then_some(req.wrapping_add(u64::from(func))),
        },
        2 => Frame::Ping { nonce: req },
        3 => Frame::Drain,
        4 => Frame::Ack { req },
        5 => Frame::ResultF64 { req, data: f64s() },
        6 => Frame::ResultF32 { req, data: f32s() },
        7 => Frame::Error {
            req,
            code: CODES[(func % 7) as usize],
            detail: func,
        },
        8 => Frame::Pong {
            nonce: req,
            draining: func % 2 == 1,
            queued_elems: u64::from(func),
            inflight: req % 1024,
            queued_jobs: req % 64,
            flushes: u64::from(func / 3),
            eval_p99_us: req % 100_000,
        },
        9 => Frame::StatsRequest { nonce: req },
        _ => Frame::Stats {
            nonce: req,
            snapshot: bits.iter().map(|&b| b as u8).collect(),
        },
    }
}

proptest! {
    /// Encode → decode → re-encode is byte-identical, which subsumes
    /// bit-exactness of every field (floats travel as bit patterns, so
    /// equal bytes ⇒ equal NaN payloads).
    #[test]
    fn prop_roundtrip_any_frame(
        sel in 0u8..11,
        req in 0u64..=u64::MAX,
        func in 0u32..=u32::MAX,
        bits in proptest::collection::vec(0u64..=u64::MAX, 0..48),
    ) {
        let frame = build_frame(sel, req, func, &bits);
        let bytes = frame.encode();
        let mut reader = FrameReader::new();
        reader.feed(&bytes);
        let got = reader.next_frame().unwrap().expect("one complete frame");
        prop_assert_eq!(got.encode(), bytes);
        prop_assert_eq!(reader.buffered(), 0);
        prop_assert!(reader.next_frame().unwrap().is_none());
    }

    /// A multi-frame stream reassembles identically from any chunking —
    /// including the pathological one-byte-per-read socket.
    #[test]
    fn prop_chunked_reassembly_identity(
        sels in proptest::collection::vec(0u8..11, 1..6),
        req in 0u64..=u64::MAX,
        func in 0u32..=u32::MAX,
        bits in proptest::collection::vec(0u64..=u64::MAX, 0..16),
        chunk in 1usize..7,
    ) {
        let frames: Vec<Frame> = sels
            .iter()
            .enumerate()
            .map(|(i, &s)| build_frame(s, req.wrapping_add(i as u64), func, &bits))
            .collect();
        let stream: Vec<u8> = frames.iter().flat_map(Frame::encode).collect();

        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        for piece in stream.chunks(chunk) {
            reader.feed(piece);
            while let Some(frame) = reader.next_frame().unwrap() {
                got.push(frame);
            }
        }
        prop_assert_eq!(got.len(), frames.len());
        for (g, w) in got.iter().zip(&frames) {
            prop_assert_eq!(g.encode(), w.encode());
        }
        prop_assert_eq!(reader.buffered(), 0);
    }

    /// Any length prefix past the cap is rejected as soon as the header
    /// is readable — before the reader buffers (or allocates for) the
    /// claimed payload.
    #[test]
    fn prop_oversized_prefix_rejected(
        over in 1u32..=(u32::MAX - MAX_PAYLOAD),
        junk in proptest::collection::vec(0u8..=255, 0..32),
    ) {
        let len = MAX_PAYLOAD + over;
        let mut reader = FrameReader::new();
        reader.feed(&len.to_le_bytes());
        reader.feed(&junk);
        prop_assert_eq!(reader.next_frame(), Err(FrameError::Oversized { len }));
    }

    /// Every strict prefix of a valid payload fails to decode — no
    /// kind's fields can be satisfied early, so truncation is always a
    /// typed error, never a silently short tensor. The sanctioned
    /// exceptions are the version-tolerance contracts: a pong cut
    /// exactly at its legacy 25-byte body *is* a valid frame and must
    /// decode, and a traced submit cut exactly before its 8-byte trace
    /// tail is a valid v1 (untraced) submit.
    #[test]
    fn prop_truncated_payload_rejected(
        sel in 0u8..11,
        req in 0u64..=u64::MAX,
        func in 0u32..=u32::MAX,
        bits in proptest::collection::vec(0u64..=u64::MAX, 0..8),
        cut in 0.0f64..1.0,
    ) {
        let frame = build_frame(sel, req, func, &bits);
        let bytes = frame.encode();
        let payload = &bytes[4..];
        prop_assume!(!payload.is_empty());
        let keep = (cut * payload.len() as f64) as usize; // < len: strict prefix
        let legacy_pong = matches!(frame, Frame::Pong { .. }) && keep == 26;
        let v1_submit = matches!(
            frame,
            Frame::SubmitF64 { trace: Some(_), .. } | Frame::SubmitF32 { trace: Some(_), .. }
        ) && keep == payload.len() - 8;
        prop_assert_eq!(
            Frame::decode_payload(&payload[..keep]).is_ok(),
            legacy_pong || v1_submit
        );
        // And the full payload still decodes, so the prefix failure is
        // about the cut, not the frame.
        prop_assert!(Frame::decode_payload(payload).is_ok());
    }

    /// Arbitrary garbage never panics the reader: each call yields a
    /// frame, a need-more-bytes, or a typed error.
    #[test]
    fn prop_garbage_never_panics(
        bytes in proptest::collection::vec(0u8..=255, 0..256),
        chunk in 1usize..9,
    ) {
        let mut reader = FrameReader::new();
        let mut desynced = false;
        for piece in bytes.chunks(chunk) {
            reader.feed(piece);
            loop {
                match reader.next_frame() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(_) => {
                        desynced = true;
                        break;
                    }
                }
            }
            if desynced {
                break; // a real connection closes here
            }
        }
    }
}
